//! Minimal JSON (de)serialization over the vendored serde shim.
//!
//! Implements the call surface the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_vec_pretty`], [`from_str`], [`from_slice`],
//! and an [`Error`] that converts from the shim's error.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    out.push('\n');
    Ok(out)
}

/// Serializes a value to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string_pretty(value)?.into_bytes())
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(serde::from_value(v)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

// --- writer ---

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` prints integral floats without a fraction ("1"), which
                // is valid JSON and re-parses into any numeric target.
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline(out, indent, level);
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ---

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_string()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            _ => self.parse_number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {}, found '{}'",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".to_string()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid codepoint {code:#x}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error("truncated UTF-8 sequence".to_string()))?;
                    let s = std::str::from_utf8(chunk).map_err(|e| Error(e.to_string()))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if text.is_empty() || text == "-" {
            return Err(Error(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::I64)
                        .map_err(|e| Error(e.to_string()));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error(e.to_string()))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let r = 3u32..9u32;
        let json = to_string(&r).unwrap();
        assert_eq!(from_str::<std::ops::Range<u32>>(&json).unwrap(), r);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, String)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = "tile \"ω\" → naïve".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("[1,").is_err());
        assert!(from_str::<u32>("42 junk").is_err());
        assert!(from_str::<Vec<u32>>("{\"a\":1}").is_err());
    }
}
