//! Minimal, API-compatible subset of `serde`, vendored for offline builds.
//!
//! The full serde visitor architecture is replaced by a concrete
//! [`Value`] tree: serializers reduce any `Serialize` type to a `Value`,
//! deserializers reconstruct types from one. The trait *signatures* match
//! upstream serde closely enough that idiomatic call sites — derived impls,
//! `#[serde(with = "module")]` field adapters, `T: serde::Serialize`
//! bounds — compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing data tree: the intermediate representation every
/// (de)serialization passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// The single error type of the shim.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Destination of a serialization: consumes the final [`Value`].
pub trait Serializer: Sized {
    /// Success type.
    type Ok;
    /// Error type; every shim error converts into it.
    type Error: From<Error> + fmt::Debug + fmt::Display;

    /// Consumes the fully built value.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
}

/// Source of a deserialization: yields the input as a [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type; every shim error converts into it.
    type Error: From<Error> + fmt::Debug + fmt::Display;

    /// Consumes the deserializer, returning the underlying value.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be reduced to a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes an instance from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A [`Serializer`] producing the [`Value`] tree itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, v: Value) -> Result<Value, Error> {
        Ok(v)
    }
}

/// A [`Deserializer`] reading from an in-memory [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Reduces any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Reconstructs a type from a [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(value))
}

/// Fetches (cloning) a named field from derived-struct object pairs.
/// Missing fields surface as errors naming the field.
pub fn get_field(pairs: &[(String, Value)], name: &str) -> Result<Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| Error::msg(format!("missing field `{name}`")))
}

// --- Serialize impls for primitives and std containers ---

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                let value = if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) };
                serializer.serialize_value(value)
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (*self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(to_value(item).map_err(S::Error::from)?);
        }
        serializer.serialize_value(Value::Array(out))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let pair = vec![
            to_value(&self.0).map_err(S::Error::from)?,
            to_value(&self.1).map_err(S::Error::from)?,
        ];
        serializer.serialize_value(Value::Array(pair))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let triple = vec![
            to_value(&self.0).map_err(S::Error::from)?,
            to_value(&self.1).map_err(S::Error::from)?,
            to_value(&self.2).map_err(S::Error::from)?,
        ];
        serializer.serialize_value(Value::Array(triple))
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let obj = vec![
            (
                "start".to_string(),
                to_value(&self.start).map_err(S::Error::from)?,
            ),
            (
                "end".to_string(),
                to_value(&self.end).map_err(S::Error::from)?,
            ),
        ];
        serializer.serialize_value(Value::Object(obj))
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut obj = Vec::with_capacity(self.len());
        for (k, v) in self {
            obj.push((k.to_string(), to_value(v).map_err(S::Error::from)?));
        }
        serializer.serialize_value(Value::Object(obj))
    }
}

// --- Deserialize impls ---

fn int_from(v: &Value) -> Result<i128, Error> {
    match v {
        Value::U64(n) => Ok(*n as i128),
        Value::I64(n) => Ok(*n as i128),
        Value::F64(f) if f.fract() == 0.0 => Ok(*f as i128),
        other => Err(Error::msg(format!("expected integer, got {other:?}"))),
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.take_value()?;
                let n = int_from(&v).map_err(D::Error::from)?;
                <$t>::try_from(n).map_err(|_| {
                    D::Error::from(Error::msg(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    )))
                })
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => Err(D::Error::from(Error::msg(format!(
                "expected number, got {other:?}"
            )))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::from(Error::msg(format!(
                "expected bool, got {other:?}"
            )))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::from(Error::msg(format!(
                "expected string, got {other:?}"
            )))),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            v => Ok(Some(from_value(v).map_err(D::Error::from)?)),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(D::Error::from))
                .collect(),
            other => Err(D::Error::from(Error::msg(format!(
                "expected array, got {other:?}"
            )))),
        }
    }
}

impl<'de, A: for<'a> Deserialize<'a>, B: for<'a> Deserialize<'a>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Array(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = from_value(it.next().expect("len checked")).map_err(D::Error::from)?;
                let b = from_value(it.next().expect("len checked")).map_err(D::Error::from)?;
                Ok((a, b))
            }
            other => Err(D::Error::from(Error::msg(format!(
                "expected pair, got {other:?}"
            )))),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for std::ops::Range<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.take_value()?;
        let start = v
            .field("start")
            .cloned()
            .ok_or_else(|| D::Error::from(Error::msg("range missing `start`")))?;
        let end = v
            .field("end")
            .cloned()
            .ok_or_else(|| D::Error::from(Error::msg("range missing `end`")))?;
        Ok(from_value(start).map_err(D::Error::from)?..from_value(end).map_err(D::Error::from)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(to_value(&42u32).unwrap(), Value::U64(42));
        assert_eq!(to_value(&-3i32).unwrap(), Value::I64(-3));
        assert_eq!(from_value::<u32>(Value::U64(42)).unwrap(), 42);
        assert_eq!(from_value::<i64>(Value::I64(-3)).unwrap(), -3);
        assert_eq!(from_value::<f64>(Value::U64(5)).unwrap(), 5.0);
        let r: std::ops::Range<u32> = from_value(to_value(&(3u32..9u32)).unwrap()).unwrap();
        assert_eq!(r, 3..9);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(u32, String)> = from_value(to_value(&v).unwrap()).unwrap();
        assert_eq!(v, back);
        let opt: Option<u8> = from_value(Value::Null).unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(from_value::<u8>(Value::U64(300)).is_err());
        assert!(from_value::<u32>(Value::I64(-1)).is_err());
    }
}
