//! Minimal benchmark harness exposing the subset of the `criterion` API the
//! workspace's benches use, vendored for offline builds.
//!
//! Timing model: each benchmark runs a short warm-up, then `sample_size`
//! timed samples of a batch whose size is auto-tuned so one sample takes at
//! least ~2 ms. The median, minimum, and maximum per-iteration times are
//! printed. Set `CRITERION_SAMPLE_SIZE` to override sample counts globally
//! (e.g. `1` for a smoke pass in CI).

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup allocations (ignored by the shim
/// beyond API compatibility — every iteration runs its own setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation attached to a group (printed alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The measurement driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("CRITERION_SAMPLE_SIZE").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Attaches a throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timed loop.
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, batching iterations to reach a measurable duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.samples.push(t0.elapsed() / self.batch as u32);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.batch {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.samples.push(total / self.batch as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up + batch calibration: grow the batch until one sample takes
    // at least ~2 ms (or the batch reaches a cap, for very slow bodies).
    let mut batch = 1u64;
    loop {
        let mut b = Bencher {
            batch,
            samples: Vec::new(),
        };
        let t0 = Instant::now();
        f(&mut b);
        if t0.elapsed() >= Duration::from_millis(2) || batch >= 1 << 16 {
            break;
        }
        batch *= 4;
    }

    let mut b = Bencher {
        batch,
        samples: Vec::with_capacity(sample_size),
    };
    while b.samples.len() < sample_size {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    let rate = throughput
        .map(|t| match t {
            Throughput::Bytes(n) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            Throughput::Elements(n) => {
                format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
            }
        })
        .unwrap_or_default();
    println!(
        "{name:<44} time: [{} {} {}]{rate}",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares the benchmark entry list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, mirroring criterion's macro. Benches are built with
/// `harness = false`, so this is the real entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        std::env::set_var("CRITERION_SAMPLE_SIZE", "2");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.throughput(Throughput::Elements(64));
        g.bench_function("iter", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.bench_function("iter_batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
