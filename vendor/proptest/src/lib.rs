//! Minimal property-testing shim with a proptest-compatible API, vendored
//! for offline builds.
//!
//! Differences from upstream: cases are generated from a fixed seed (fully
//! deterministic runs) and failing cases are *not* shrunk — the panic
//! message carries the failing assertion only. The strategy combinators the
//! workspace uses are provided: numeric ranges, tuples, `prop_map`,
//! `collection::vec`, `array::uniform32`, and `any` for a few primitives.

use rand::rngs::StdRng;

/// Number of cases to run unless overridden via
/// `ProptestConfig::with_cases`.
pub const DEFAULT_CASES: u32 = 64;

/// Run configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// Sets the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rand::RngCore::next_u64(rng) as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rand::RngCore::next_u64(rng) as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Types generable from the full bit stream via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (rand::RngCore::next_u64(rng) >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::RngCore::next_u64(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy producing unconstrained values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// The unweighted boolean strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    /// `proptest::bool::ANY`: generates `true` and `false` evenly.
    pub const ANY: Any = Any;
}

/// `Option` strategies.
pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// The strategy behind [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            // Upstream defaults to 3:1 Some:None; mirror that weighting.
            if rand::RngCore::next_u64(rng).is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `proptest::option::of(strategy)`: `None` or a generated `Some`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for vectors with lengths drawn from `lens`.
    pub struct VecStrategy<S> {
        element: S,
        lens: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.lens.start + 1 >= self.lens.end {
                self.lens.start
            } else {
                self.lens.start
                    + (rand::RngCore::next_u64(rng) as usize) % (self.lens.end - self.lens.start)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, lens: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lens }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for `[S::Value; 32]`.
    pub struct Uniform32<S>(S);

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// `proptest::array::uniform32(strategy)`.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }
}

/// Everything a property-test module imports.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Runs `f` for each generated case with a deterministic generator.
pub fn run_cases<F: FnMut(&mut StdRng)>(cases: u32, seed: u64, mut f: F) {
    let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
    for _ in 0..cases {
        f(&mut rng);
    }
}

/// Deterministic per-test seed derived from the test name.
pub fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// `assert!` under proptest's name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `name(arg in strategy, ...)` block becomes
/// a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = ($cfg).cases;
                $crate::run_cases(__cases, $crate::seed_for(stringify!($name)), |__rng| {
                    $( let $arg = $crate::Strategy::generate(&($strat), __rng); )+
                    $body
                });
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 5u32..6).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..7, y in -5i32..=5, v in crate::collection::vec(0u8..4, 0..9)) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn combinators_compose(p in arb_pair(), a in any::<[u32; 4]>(), block in crate::array::uniform32(-2i32..=2)) {
            prop_assert!(p.0 < 10);
            prop_assert_eq!(p.1, 5);
            prop_assert_eq!(a.len(), 4);
            prop_assert!(block.iter().all(|&v| (-2..=2).contains(&v)));
        }
    }
}
