//! Minimal, API-compatible subset of the `bytes` crate, vendored so the
//! workspace builds without network access. Only the surface the codec uses
//! is implemented: [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`]
//! traits over little-endian integers and byte slices.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer (shared via `Arc`).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read cursor over a byte source.
///
/// # Panics
/// The `get_*` and `copy_to_slice` methods panic when fewer bytes remain
/// than requested, matching the upstream crate's contract.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// The current unread chunk.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies exactly `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }
}

/// Write sink for bytes.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16_le(0xbeef);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(0x0123_4567_89ab_cdef);
        w.put_slice(b"xy");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xbeef);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&c[..], &[1, 2, 3]);
    }
}
