//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Supports the shapes this workspace actually uses:
//!
//! * structs with named fields (honouring `#[serde(with = "module")]`);
//! * enums whose variants are unit (`ConstantQp`) or struct-like
//!   (`TargetRate { millibits_per_sample: u32 }`).
//!
//! The item is parsed directly from the token stream (no `syn`): only the
//! field/variant *names* and `serde` attributes matter, since generated
//! code goes through the shim's generic `to_value`/`from_value` helpers
//! and lets inference supply the field types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    with: Option<String>,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<(String, Vec<Field>)>,
    },
}

/// Splits off leading attribute groups (`#[...]`), returning any
/// `#[serde(with = "path")]` module path found among them.
fn take_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, Option<String>) {
    let mut with = None;
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let text = args.stream().to_string();
                    // Expect `with = "module::path"`.
                    if let Some(eq) = text.find('=') {
                        let (key, val) = text.split_at(eq);
                        if key.trim() == "with" {
                            let path = val[1..].trim().trim_matches('"').to_string();
                            with = Some(path);
                        } else {
                            panic!("unsupported serde attribute: {text}");
                        }
                    } else {
                        panic!("unsupported serde attribute: {text}");
                    }
                }
            }
        }
        i += 2;
    }
    (i, with)
}

/// Parses named fields from the tokens of a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, with) = take_attrs(&tokens, i);
        i = ni;
        if i >= tokens.len() {
            break;
        }
        // Optional visibility: `pub` or `pub(...)`.
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected field name, found {:?}", tokens[i].to_string());
        };
        let name = name.to_string();
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {}", other),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, with });
    }
    fields
}

/// Parses enum variants (unit or struct-like) from a brace group.
fn parse_variants(stream: TokenStream) -> Vec<(String, Vec<Field>)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, _) = take_attrs(&tokens, i);
        i = ni;
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected variant name, found {}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let mut fields = Vec::new();
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    fields = parse_named_fields(g.stream());
                    i += 1;
                }
                Delimiter::Parenthesis => {
                    panic!("tuple enum variants are not supported by the serde shim")
                }
                _ => {}
            }
        }
        // Optional discriminant or trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = take_attrs(&tokens, 0);
    // Optional visibility.
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the serde shim derive");
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("item `{name}` has no body (tuple structs unsupported)"),
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                let fname = &f.name;
                let expr = match &f.with {
                    Some(module) => format!(
                        "{module}::serialize(&self.{fname}, ::serde::ValueSerializer).map_err(S::Error::from)?"
                    ),
                    None => format!("::serde::to_value(&self.{fname}).map_err(S::Error::from)?"),
                };
                pushes.push_str(&format!("__obj.push((\"{fname}\".to_string(), {expr}));\n"));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::Serializer>(&self, serializer: S) -> ::core::result::Result<S::Ok, S::Error> {{\n\
                         let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         serializer.serialize_value(::serde::Value::Object(__obj))\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in &variants {
                if fields.is_empty() {
                    arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    ));
                } else {
                    let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                    let mut pushes = String::new();
                    for f in fields {
                        let fname = &f.name;
                        pushes.push_str(&format!(
                            "__fields.push((\"{fname}\".to_string(), ::serde::to_value({fname}).map_err(S::Error::from)?));\n"
                        ));
                    }
                    arms.push_str(&format!(
                        "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(__fields))])\n\
                         }},\n",
                        binds = binders.join(", ")
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::Serializer>(&self, serializer: S) -> ::core::result::Result<S::Ok, S::Error> {{\n\
                         let __v = match self {{\n{arms}}};\n\
                         serializer.serialize_value(__v)\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let fname = &f.name;
                let expr = match &f.with {
                    Some(module) => format!(
                        "{module}::deserialize(::serde::ValueDeserializer(::serde::get_field(&__obj, \"{fname}\").map_err(D::Error::from)?)).map_err(D::Error::from)?"
                    ),
                    None => format!(
                        "::serde::from_value(::serde::get_field(&__obj, \"{fname}\").map_err(D::Error::from)?).map_err(D::Error::from)?"
                    ),
                };
                inits.push_str(&format!("{fname}: {expr},\n"));
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) -> ::core::result::Result<Self, D::Error> {{\n\
                         let __obj = match deserializer.take_value()? {{\n\
                             ::serde::Value::Object(o) => o,\n\
                             other => return Err(D::Error::from(::serde::Error::msg(format!(\"expected object for {name}, got {{other:?}}\")))),\n\
                         }};\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut struct_arms = String::new();
            for (vname, fields) in &variants {
                if fields.is_empty() {
                    unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                } else {
                    let mut inits = String::new();
                    for f in fields {
                        let fname = &f.name;
                        inits.push_str(&format!(
                            "{fname}: ::serde::from_value(::serde::get_field(&__fields, \"{fname}\").map_err(D::Error::from)?).map_err(D::Error::from)?,\n"
                        ));
                    }
                    struct_arms.push_str(&format!(
                        "\"{vname}\" => {{\n\
                             let __fields = match __inner {{\n\
                                 ::serde::Value::Object(o) => o,\n\
                                 other => return Err(D::Error::from(::serde::Error::msg(format!(\"expected fields object, got {{other:?}}\")))),\n\
                             }};\n\
                             Ok({name}::{vname} {{\n{inits}}})\n\
                         }},\n"
                    ));
                }
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) -> ::core::result::Result<Self, D::Error> {{\n\
                         match deserializer.take_value()? {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(D::Error::from(::serde::Error::msg(format!(\"unknown {name} variant `{{other}}`\")))),\n\
                             }},\n\
                             ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                                 let (__tag, __inner) = __o.into_iter().next().expect(\"len checked\");\n\
                                 let _ = &__inner;\n\
                                 match __tag.as_str() {{\n\
                                     {struct_arms}\
                                     other => Err(D::Error::from(::serde::Error::msg(format!(\"unknown {name} variant `{{other}}`\")))),\n\
                                 }}\n\
                             }},\n\
                             other => Err(D::Error::from(::serde::Error::msg(format!(\"expected {name} variant, got {{other:?}}\")))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated Deserialize impl must parse")
}
