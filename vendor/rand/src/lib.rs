//! Minimal, API-compatible subset of `rand` 0.8, vendored for offline
//! builds. Provides [`rngs::StdRng`] (xoshiro256**), [`SeedableRng`], and
//! the [`Rng`] extension methods this workspace uses: `gen`, `gen_range`,
//! and `gen_bool`. Deterministic given a seed, as the workload generators
//! require; no cryptographic claims.

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the full bit stream (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via `rng.gen_range(lo..hi)`.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the spans used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

sample_range_uint!(u32, u64, usize);

impl SampleRange for Range<i32> {
    type Output = i32;

    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        (self.start as i64 + hi as i64) as i32
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the uniform bit stream.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<Sr: SampleRange>(&mut self, range: Sr) -> Sr::Output {
        range.sample_one(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64 (the upstream-recommended initialization).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn uniform_f64_covers_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples should reach both tails");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }
}
