//! The paper's running example (§1): an amber-alert application repeatedly
//! queries a traffic feed for vehicles, without knowing in advance *where*
//! they are. TASM's regret-based incremental tiling (§4.4) observes the
//! query stream, accumulates estimated improvements for candidate layouts,
//! and re-tiles the hot sections of the video once the improvement pays for
//! the transcode — exactly like database cracking, but for pixels.
//!
//! ```sh
//! cargo run --release -p tasm-suite --example amber_alert
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tasm_core::{run_workload, RunQuery, StorageConfig, Strategy, Tasm, TasmConfig};
use tasm_data::{Dataset, Zipf};
use tasm_detect::yolo::SimulatedYolo;
use tasm_index::MemoryIndex;
use tasm_video::FrameSource;

fn main() {
    let root = std::env::temp_dir().join("tasm-amber");
    std::fs::remove_dir_all(&root).ok();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 30,
            sot_frames: 30,
            ..Default::default()
        },
        ..Default::default()
    };

    // A simulated Visual-Road-style traffic camera: 4 seconds of video.
    let video = Dataset::VisualRoad2K.build(4, 2026);
    let truth = |f: u32| video.ground_truth(f);

    // The alert workload: one-second vehicle queries, biased toward the
    // most recent (= first, under Zipf) part of the feed.
    let zipf = Zipf::new(video.len() as usize, 1.0);
    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<RunQuery> = (0..40)
        .map(|_| {
            let start = (zipf.sample(&mut rng) as u32).min(video.len() - 30);
            RunQuery {
                label: "car".into(),
                frames: start..start + 30,
            }
        })
        .collect();

    for (label, strategy) in [
        ("not tiled          ", Strategy::NotTiled),
        ("incremental, regret", Strategy::IncrementalRegret),
    ] {
        let mut tasm = Tasm::open(
            root.join(label.trim()),
            Box::new(MemoryIndex::in_memory()),
            cfg.clone(),
        )
        .expect("open");
        tasm.ingest("feed", &video, 30).expect("ingest");
        let mut detector = SimulatedYolo::full(1);
        let report = run_workload(
            &mut tasm,
            "feed",
            &queries,
            strategy,
            &mut detector,
            &truth,
            None,
        )
        .expect("workload");
        let decode: f64 = report.records.iter().map(|r| r.decode_seconds).sum();
        let retile: f64 = report.records.iter().map(|r| r.retile_seconds).sum();
        println!(
            "{label}  decode {:7.1} ms   retile {:7.1} ms   re-tiles {}   final size {:.1} KiB",
            decode * 1e3,
            retile * 1e3,
            report.retile_ops,
            report.final_size_bytes as f64 / 1024.0,
        );
    }
    println!("\nThe regret strategy pays some transcode time early, then every");
    println!("subsequent vehicle query decodes only the tiles containing cars.");
}
