//! Spatiotemporal queries: region-of-interest, sampling, limits, and
//! aggregates against a synthetic traffic scene.
//!
//! ```sh
//! cargo run --release -p tasm-suite --example roi_query
//! ```
//!
//! The storage manager exists to accelerate *subframe, object-centric*
//! retrieval. This example shows the planner doing exactly that: the same
//! label predicate executed as a full scan and as progressively narrower
//! queries, with the plan statistics showing which tiles and GOPs were
//! never decoded.

use tasm_core::{LabelPredicate, Query, QueryMode, ScanResult, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_video::FrameSource;

fn report(what: &str, r: &ScanResult) {
    println!(
        "{what:<26} {:>4} matches | {:>9} samples decoded | tiles {:>2} decoded / {:>2} pruned | GOPs {:>2} decoded / {:>2} skipped",
        r.matched,
        r.stats.samples_decoded,
        r.plan.tiles_planned,
        r.plan.tiles_pruned,
        r.plan.gops_planned,
        r.plan.gops_skipped,
    );
}

fn main() {
    // 1. A storage manager with short GOPs (so temporal pruning has units
    //    to skip) over a four-second synthetic intersection.
    let root = std::env::temp_dir().join("tasm-roi-query");
    std::fs::remove_dir_all(&root).ok();
    let tasm = Tasm::open(
        &root,
        Box::new(MemoryIndex::in_memory()),
        TasmConfig {
            storage: StorageConfig {
                gop_len: 10,
                sot_frames: 30,
                ..Default::default()
            },
            // No decoded-GOP cache: every query below pays its plan's true
            // decode cost, so the reported savings are pure planner wins.
            cache_bytes: 0,
            ..Default::default()
        },
    )
    .expect("open storage manager");

    let video = SyntheticVideo::new(SceneSpec {
        width: 640,
        height: 352,
        frames: 120,
        ..SceneSpec::test_scene()
    });
    tasm.ingest("traffic", &video, 30).expect("ingest");
    for f in 0..video.len() {
        for (label, bbox) in video.ground_truth(f) {
            tasm.add_metadata("traffic", label, f, bbox)
                .expect("add metadata");
        }
    }

    // 2. Tile the layout around the detected objects, so spatial pruning
    //    has tiles to prune (KQKO, §4.2).
    tasm.kqko_retile_all("traffic", &["car".to_string(), "person".to_string()])
        .expect("retile");

    let cars = || Query::new(LabelPredicate::label("car")).frames(0..120);

    // 3. The baseline: every car, everywhere, every frame.
    let full = tasm.query("traffic", &cars()).expect("full query");
    report("all cars", &full);

    // 4. ROI: a watch zone around where the first car starts, covering
    //    under a quarter of the frame. Cars are retrieved only while they
    //    cross it; tiles whose cars never touch it are pruned from the
    //    decode plan entirely.
    let anchor = video.ground_truth_for(0, "car")[0];
    let zone = anchor.inflate(80, video.width(), video.height());
    println!(
        "watch zone {},{} {}x{} ({:.0}% of the frame)",
        zone.x,
        zone.y,
        zone.w,
        zone.h,
        100.0 * zone.area() as f64 / (video.width() * video.height()) as f64
    );
    let roi = tasm.query("traffic", &cars().roi(zone)).expect("roi query");
    report("cars in watch zone", &roi);

    // 5. ROI + sampling + limit: every 5th frame, stop after the first 4
    //    matching frames. GOPs outside the stride or past the satisfied
    //    limit are never decoded.
    let narrowed = tasm
        .query("traffic", &cars().roi(zone).stride(5).limit(4))
        .expect("narrowed query");
    report("  + stride 5, limit 4", &narrowed);

    // 6. Aggregates answer from the semantic index alone — no decode at
    //    all, useful as a cheap pre-flight before a pixel query.
    let count = tasm
        .query("traffic", &cars().roi(zone).mode(QueryMode::Count))
        .expect("count query");
    report("count only", &count);
    let exists = tasm
        .query("traffic", &cars().roi(zone).mode(QueryMode::Exists))
        .expect("exists query");
    println!(
        "exists? {} (decoded {} samples to answer)",
        exists.matched > 0,
        exists.stats.samples_decoded
    );

    let saved =
        100.0 * (1.0 - roi.stats.samples_decoded as f64 / full.stats.samples_decoded.max(1) as f64);
    println!("\nthe watch-zone query decoded {saved:.0}% fewer samples than the full scan,");
    println!("and its regions are bit-identical to filtering the full scan after the fact.");
}
