//! Edge tiling (§4.3): when the query classes are known up front (an
//! amber-alert system only ever asks about vehicles), the camera itself can
//! detect objects as frames are captured — at a sampled rate its embedded
//! GPU can sustain — and encode the video *with tiles from the start*. The
//! VDBMS then never pays a re-encode, and the camera can upload only the
//! tiles that contain objects.
//!
//! ```sh
//! cargo run --release -p tasm-suite --example edge_camera
//! ```

use tasm_core::{edge_ingest, EdgeConfig, LabelPredicate, StorageConfig, Tasm, TasmConfig};
use tasm_data::Dataset;
use tasm_detect::yolo::{Platform, SimulatedYolo};
use tasm_index::MemoryIndex;
use tasm_video::FrameSource;

fn main() {
    let root = std::env::temp_dir().join("tasm-edge");
    std::fs::remove_dir_all(&root).ok();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 30,
            sot_frames: 30,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut tasm = Tasm::open(&root, Box::new(MemoryIndex::in_memory()), cfg).expect("open");

    // 3 seconds from a traffic camera; the VDBMS announced O_Q = {car}.
    let video = Dataset::VisualRoad2K.build(3, 11);
    let truth = |f: u32| video.ground_truth(f);

    // Full YOLOv3 on the embedded GPU manages ~16 fps; capture is 30 fps,
    // so the camera detects every 5th frame (§5.2.4 finds this adequate).
    let mut detector = SimulatedYolo::full(3).on(Platform::EdgeGpu);
    let edge_cfg = EdgeConfig::new(&["car"]);
    let report = edge_ingest(
        &mut tasm,
        "cam0",
        &video,
        30,
        &edge_cfg,
        &mut detector,
        &truth,
    )
    .expect("edge ingest");

    println!(
        "camera processed {} of {} frames on-device",
        report.frames_processed,
        video.len()
    );
    println!(
        "simulated on-camera detection time: {:.2} s",
        report.detect_seconds
    );
    println!("SOTs tiled at capture time: {}", report.tiled_sots);
    println!(
        "upload: {:.1} KiB of object tiles vs {:.1} KiB full video ({:.0}% saved)",
        report.streamed_tile_bytes as f64 / 1024.0,
        report.full_video_bytes as f64 / 1024.0,
        report.bandwidth_saving() * 100.0
    );

    // First query arrives: the video is already tiled, the semantic index
    // already populated — no detection, no re-encode, minimal decode.
    let r = tasm
        .scan("cam0", &LabelPredicate::label("car"), 0..30)
        .expect("scan");
    println!(
        "\nfirst query: {} regions, {} samples decoded, {:.2} ms — no re-encode needed",
        r.regions.len(),
        r.stats.samples_decoded,
        r.seconds() * 1e3
    );
}
