//! Quickstart: ingest a video, register detections, and scan for objects.
//!
//! ```sh
//! cargo run --release -p tasm-suite --example quickstart
//! ```

use tasm_core::{LabelPredicate, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_video::FrameSource;

fn main() {
    // 1. Open a storage manager: a tile store on disk plus a semantic index.
    let root = std::env::temp_dir().join("tasm-quickstart");
    std::fs::remove_dir_all(&root).ok();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 30,
            sot_frames: 30,
            ..Default::default()
        },
        ..Default::default()
    };
    let tasm =
        Tasm::open(&root, Box::new(MemoryIndex::in_memory()), cfg).expect("open storage manager");

    // 2. A two-second synthetic traffic video (cars + pedestrians), rendered
    //    on demand. In a real deployment this is the camera feed.
    let video = SyntheticVideo::new(SceneSpec {
        width: 640,
        height: 352,
        frames: 60,
        ..SceneSpec::test_scene()
    });
    tasm.ingest("traffic", &video, 30).expect("ingest");
    println!(
        "ingested 'traffic': {} frames at {}x{}",
        video.len(),
        video.width(),
        video.height()
    );

    // 3. As the query processor detects objects, it feeds the semantic
    //    index through AddMetadata (here: perfect ground-truth detections).
    for f in 0..video.len() {
        for (label, bbox) in video.ground_truth(f) {
            tasm.add_metadata("traffic", label, f, bbox)
                .expect("add metadata");
        }
    }

    // 4. Scan for cars on an untiled video: whole frames decode.
    let before = tasm
        .scan("traffic", &LabelPredicate::label("car"), 0..60)
        .expect("scan");
    println!(
        "untiled scan:   {:>10} samples decoded, {:>4} tile-chunks, {:.1} ms",
        before.stats.samples_decoded,
        before.stats.tile_chunks_decoded,
        before.seconds() * 1e3,
    );

    // 5. Let TASM optimize the physical layout around cars (KQKO, §4.2)...
    tasm.kqko_retile_all("traffic", &["car".to_string()])
        .expect("retile");

    // 6. ...and scan again: only the tiles containing cars decode.
    let after = tasm
        .scan("traffic", &LabelPredicate::label("car"), 0..60)
        .expect("scan");
    println!(
        "tiled scan:     {:>10} samples decoded, {:>4} tile-chunks, {:.1} ms",
        after.stats.samples_decoded,
        after.stats.tile_chunks_decoded,
        after.seconds() * 1e3,
    );
    let saved =
        100.0 * (1.0 - after.stats.samples_decoded as f64 / before.stats.samples_decoded as f64);
    println!(
        "tiling saved {saved:.0}% of decoded samples; {} regions returned",
        after.regions.len()
    );

    // 7. Repeat the query: the parallel execution pipeline serves it from
    //    the decoded-GOP cache (see TasmConfig::workers / cache_bytes for
    //    the knobs — worker count and cache byte budget).
    let warm = tasm
        .scan("traffic", &LabelPredicate::label("car"), 0..60)
        .expect("scan");
    println!(
        "warm scan:      {:>10} samples decoded, {} GOP cache hits ({} samples reused), {:.1} ms",
        warm.stats.samples_decoded,
        warm.cache.hits,
        warm.cache.samples_reused,
        warm.seconds() * 1e3,
    );
}
