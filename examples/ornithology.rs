//! The ornithology scenario from the paper's introduction: a researcher
//! explores a nature video with *ad-hoc* queries — birds, then people, then
//! birds again — never declaring a workload up front. This example shows
//! CNF predicates on the Scan API (§3.1) and how the incremental-more
//! policy adapts the layout to whichever classes have been queried.
//!
//! ```sh
//! cargo run --release -p tasm-suite --example ornithology
//! ```

use tasm_core::{LabelPredicate, StorageConfig, Tasm, TasmConfig};
use tasm_data::Dataset;
use tasm_index::MemoryIndex;
use tasm_video::FrameSource;

fn main() {
    let root = std::env::temp_dir().join("tasm-ornithology");
    std::fs::remove_dir_all(&root).ok();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 30,
            sot_frames: 30,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut tasm = Tasm::open(&root, Box::new(MemoryIndex::in_memory()), cfg).expect("open");

    // A Netflix-public-style nature clip: birds and a person.
    let video = Dataset::NetflixPublic.build(3, 77);
    tasm.ingest("nature", &video, 30).expect("ingest");
    for f in 0..video.len() {
        for (label, bbox) in video.ground_truth(f) {
            tasm.add_metadata("nature", label, f, bbox)
                .expect("metadata");
        }
    }

    fn run(tasm: &mut Tasm, what: &str, pred: &LabelPredicate, frames: std::ops::Range<u32>) {
        let r = tasm.scan("nature", pred, frames).expect("scan");
        println!(
            "{what:<34} {:>4} regions, {:>9} samples, {:>6.2} ms",
            r.regions.len(),
            r.stats.samples_decoded,
            r.seconds() * 1e3
        );
    }

    println!("-- exploratory session on the untiled video --");
    run(
        &mut tasm,
        "birds, first second",
        &LabelPredicate::label("bird"),
        0..30,
    );
    run(
        &mut tasm,
        "birds OR people, whole video",
        &LabelPredicate::any_of(&["bird", "person"]),
        0..90,
    );
    run(
        &mut tasm,
        "birds AND people (co-occurring)",
        &LabelPredicate::label("bird").and(&["person"]),
        0..90,
    );

    // The session keeps returning to birds: adapt the layout.
    for _ in 0..3 {
        tasm.observe_more("nature", "bird", 0..90).expect("observe");
    }
    println!("\n-- after incremental tiling around the queried class --");
    run(
        &mut tasm,
        "birds, first second",
        &LabelPredicate::label("bird"),
        0..30,
    );
    run(
        &mut tasm,
        "birds OR people, whole video",
        &LabelPredicate::any_of(&["bird", "person"]),
        0..90,
    );

    let m = tasm.manifest("nature").expect("manifest");
    let tiled = m.sots.iter().filter(|s| !s.layout.is_untiled()).count();
    println!(
        "\n{}/{} sections of the video are now tiled around birds",
        tiled,
        m.sots.len()
    );
}
