//! Correctness of the spatiotemporal query planner.
//!
//! The contract under test, from two sides:
//!
//! 1. **Equivalence** — for any ROI/stride/limit combination,
//!    `Tasm::query` returns regions bit-identical to running the unpruned
//!    `Tasm::scan` and filtering its output post-hoc (`post_filter` in
//!    `tasm_suite` is the reference semantics).
//! 2. **Pruning** — the planner provably decodes less: tiles whose boxes
//!    miss the ROI and GOPs outside the stride / past a satisfied limit are
//!    never decoded, the savings are reported in `ScanResult::plan`, and
//!    those counters are identical at any cache state (a pruned GOP served
//!    from the decoded-GOP cache must not change or double-count anything).

use std::sync::Arc;
use tasm_core::{
    LabelPredicate, PartitionConfig, Query, QueryMode, StorageConfig, Tasm, TasmConfig,
};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_suite::{assert_regions_identical, post_filter};
use tasm_video::{FrameSource, Rect};

const W: u32 = 256;
const H: u32 = 160;
const FRAMES: u32 = 40;

fn scene() -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: W,
        height: H,
        frames: FRAMES,
        seed: 33,
        ..SceneSpec::test_scene()
    })
}

/// A tiled instance (4×4 uniform layout → 64×40 tiles) with short GOPs so
/// both spatial and temporal pruning have units to cut.
fn tasm_with(tag: &str, cfg_mut: impl FnOnce(&mut TasmConfig)) -> Arc<Tasm> {
    let dir = std::env::temp_dir().join(format!("tasm-qplan-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 5,
            sot_frames: 10,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        workers: 1,
        cache_bytes: 0,
        ..Default::default()
    };
    cfg_mut(&mut cfg);
    let tasm = Arc::new(Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap());
    let video = scene();
    tasm.ingest("v", &video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
        tasm.mark_processed("v", f).unwrap();
    }
    for sot_idx in 0..tasm.manifest("v").unwrap().sots.len() {
        tasm.retile(
            "v",
            sot_idx,
            tasm_codec::TileLayout::uniform(W, H, 4, 4).unwrap(),
        )
        .unwrap();
    }
    tasm
}

/// An ROI over the top-left corner: under 25% of the frame area.
fn corner_roi() -> Rect {
    Rect::new(0, 0, W / 2 - 16, H / 2 - 16)
}

#[test]
fn roi_query_prunes_tiles_and_matches_postfiltered_scan() {
    let tasm = tasm_with("roi", |_| {});
    let pred = LabelPredicate::label("car");
    let full = tasm.scan("v", &pred, 0..FRAMES).unwrap();
    assert!(full.matched > 0, "scene must contain cars");

    let q = Query::new(pred.clone()).frames(0..FRAMES).roi(corner_roi());
    let result = tasm.query("v", &q).unwrap();

    let expected = post_filter(&full, &q, 0);
    assert_regions_identical(&expected, &result.regions, "roi query");
    assert_eq!(result.matched, result.regions.len() as u64);

    // The acceptance bar: an ROI under 25% of the frame must prune tiles
    // and decode measurably fewer GOPs than the full scan.
    assert!(
        result.plan.tiles_pruned > 0,
        "corner ROI must prune tiles: {:?}",
        result.plan
    );
    assert!(
        result.plan.gops_planned < full.plan.gops_planned,
        "ROI plan must decode fewer GOPs: {} vs {}",
        result.plan.gops_planned,
        full.plan.gops_planned
    );
    assert!(
        result.stats.samples_decoded < full.stats.samples_decoded,
        "ROI plan must decode fewer samples: {} vs {}",
        result.stats.samples_decoded,
        full.stats.samples_decoded
    );
}

#[test]
fn stride_skips_gops_and_matches_postfiltered_scan() {
    let tasm = tasm_with("stride", |_| {});
    let pred = LabelPredicate::label("car");
    let full = tasm.scan("v", &pred, 0..FRAMES).unwrap();

    // gop_len = 5: a stride of 10 samples at most one frame per GOP and
    // leaves every other GOP without a sampled frame.
    let q = Query::new(pred.clone()).frames(0..FRAMES).stride(10);
    let result = tasm.query("v", &q).unwrap();

    let expected = post_filter(&full, &q, 0);
    assert_regions_identical(&expected, &result.regions, "strided query");
    assert!(
        result.plan.gops_skipped > 0,
        "stride 2×gop_len must skip GOPs: {:?}",
        result.plan
    );
    assert!(result.stats.samples_decoded < full.stats.samples_decoded);
    assert!(result.plan.frames_sampled < full.plan.frames_sampled);
}

#[test]
fn limit_stops_after_first_k_matching_frames() {
    let tasm = tasm_with("limit", |_| {});
    let pred = LabelPredicate::label("car");
    let full = tasm.scan("v", &pred, 0..FRAMES).unwrap();

    let q = Query::new(pred.clone()).frames(0..FRAMES).limit(3);
    let result = tasm.query("v", &q).unwrap();

    let expected = post_filter(&full, &q, 0);
    assert_regions_identical(&expected, &result.regions, "limited query");
    assert_eq!(result.plan.frames_sampled, 3, "first 3 matching frames");
    assert!(
        result.stats.samples_decoded < full.stats.samples_decoded,
        "GOPs past the satisfied limit must never decode"
    );
}

#[test]
fn combined_roi_stride_limit_matches_postfiltered_scan() {
    let tasm = tasm_with("combined", |_| {});
    let pred = LabelPredicate::any_of(&["car", "person"]);
    let window = 3..FRAMES - 2;
    let full = tasm.scan("v", &pred, window.clone()).unwrap();

    let q = Query::new(pred.clone())
        .frames(window.clone())
        .roi(Rect::new(32, 16, 160, 112))
        .stride(3)
        .limit(4);
    let result = tasm.query("v", &q).unwrap();
    let expected = post_filter(&full, &q, window.start);
    assert_regions_identical(&expected, &result.regions, "combined predicates");
}

#[test]
fn plain_query_is_bit_identical_to_scan() {
    let tasm = tasm_with("plain", |_| {});
    let pred = LabelPredicate::label("person");
    for window in [0..FRAMES, 7..23, 12..13] {
        let full = tasm.scan("v", &pred, window.clone()).unwrap();
        let result = tasm
            .query("v", &Query::new(pred.clone()).frames(window.clone()))
            .unwrap();
        let expected: Vec<_> = full.regions.iter().collect();
        assert_regions_identical(&expected, &result.regions, &format!("window {window:?}"));
        // The per-tile planner never decodes more than the scan planner.
        assert!(result.stats.samples_decoded <= full.stats.samples_decoded);
    }
}

#[test]
fn aggregate_modes_skip_decode_entirely() {
    let tasm = tasm_with("aggregate", |_| {});
    let pred = LabelPredicate::label("car");
    let pixels = tasm
        .query("v", &Query::new(pred.clone()).frames(0..FRAMES))
        .unwrap();

    let count = tasm
        .query(
            "v",
            &Query::new(pred.clone())
                .frames(0..FRAMES)
                .mode(QueryMode::Count),
        )
        .unwrap();
    assert_eq!(
        count.matched, pixels.matched,
        "count must equal the pixel-mode match count"
    );
    assert!(count.regions.is_empty());
    assert_eq!(count.stats.samples_decoded, 0, "Count must not decode");
    assert_eq!(count.stats.frames_decoded, 0);
    assert_eq!(count.cache.misses, 0, "Count must not even touch the cache");
    assert!(
        count.plan.tiles_pruned > 0,
        "the whole baseline plan is cut"
    );
    assert_eq!(count.plan.tiles_planned, 0);

    let exists = tasm
        .query(
            "v",
            &Query::new(pred.clone())
                .frames(0..FRAMES)
                .mode(QueryMode::Exists),
        )
        .unwrap();
    assert!(exists.matched > 0);
    assert_eq!(exists.stats.samples_decoded, 0);

    // A label with no detections exists() to false, still without decode.
    let none = tasm
        .query(
            "v",
            &Query::new(LabelPredicate::label("unicorn"))
                .frames(0..FRAMES)
                .mode(QueryMode::Exists),
        )
        .unwrap();
    assert_eq!(none.matched, 0);
    assert_eq!(none.stats.samples_decoded, 0);
}

/// The satellite fix under test: plan counters are computed at plan time
/// from the index alone, so a pruned GOP later served by the decoded-GOP
/// cache (or joined from another query's in-flight decode) must change
/// neither the plan counters nor the owned/joined accounting's total.
#[test]
fn plan_counters_are_identical_across_cache_states() {
    let tasm = tasm_with("cache-consistency", |c| c.cache_bytes = 64 << 20);
    let q = Query::new(LabelPredicate::label("car"))
        .frames(0..FRAMES)
        .roi(corner_roi())
        .stride(2);

    let cold = tasm.query("v", &q).unwrap();
    let warm = tasm.query("v", &q).unwrap();

    assert_eq!(
        cold.plan, warm.plan,
        "plan stats must not depend on cache state"
    );
    assert_eq!(cold.matched, warm.matched);
    assert!(warm.cache.hits > 0, "second run must hit the cache");
    assert_eq!(warm.stats.samples_decoded, 0, "fully warm: no decode work");

    // No double counting: every planned GOP is accounted exactly once per
    // run — either decoded by this query (owned) or served by the cache
    // (hits, which include joins of other queries' decodes).
    for (r, what) in [(&cold, "cold"), (&warm, "warm")] {
        assert_eq!(
            r.shared.owned + r.cache.hits,
            r.plan.gops_planned,
            "{what}: owned + cache hits must equal planned GOPs"
        );
        assert_eq!(r.shared.joined, 0, "single-threaded runs never join");
    }

    // And the pixels are bit-identical either way.
    let expected: Vec<_> = cold.regions.iter().collect();
    assert_regions_identical(&expected, &warm.regions, "cold vs warm");
}

/// Pruned decode plans populate the cache with exactly the prefixes they
/// decode; a later *wider* query must extend them, never trust them too far.
#[test]
fn wider_query_after_pruned_query_stays_correct() {
    let tasm = tasm_with("prefix-extend", |c| c.cache_bytes = 64 << 20);
    let pred = LabelPredicate::label("car");

    // Strided query first: caches short GOP prefixes.
    let strided = Query::new(pred.clone()).frames(0..FRAMES).stride(10);
    tasm.query("v", &strided).unwrap();

    // Full query second: must extend the cached prefixes bit-exactly.
    let reference = tasm_with("prefix-ref", |_| {});
    let expected = reference.scan("v", &pred, 0..FRAMES).unwrap();
    let got = tasm
        .query("v", &Query::new(pred.clone()).frames(0..FRAMES))
        .unwrap();
    let expected_regions: Vec<_> = expected.regions.iter().collect();
    assert_regions_identical(&expected_regions, &got.regions, "prefix extension");
}

/// Worker count must not change pixels or plan counters for pruned plans.
#[test]
fn pruned_plans_are_worker_count_invariant() {
    let serial = tasm_with("workers-1", |c| c.workers = 1);
    let parallel = tasm_with("workers-8", |c| c.workers = 8);
    let q = Query::new(LabelPredicate::any_of(&["car", "person"]))
        .frames(0..FRAMES)
        .roi(Rect::new(16, 16, 128, 96))
        .stride(2)
        .limit(6);
    let a = serial.query("v", &q).unwrap();
    let b = parallel.query("v", &q).unwrap();
    let expected: Vec<_> = a.regions.iter().collect();
    assert_regions_identical(&expected, &b.regions, "worker invariance");
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.matched, b.matched);
    assert_eq!(a.stats.samples_decoded, b.stats.samples_decoded);
}
