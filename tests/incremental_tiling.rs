//! Integration tests of the incremental tiling strategies (§4.4 / §5.3)
//! over real synthetic video, exercising regret accumulation, the α safety
//! rule, and the workload runner.

use tasm_core::{
    run_workload, LabelPredicate, PartitionConfig, RunQuery, StorageConfig, Strategy, Tasm,
    TasmConfig,
};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_detect::yolo::SimulatedYolo;
use tasm_index::MemoryIndex;
use tasm_video::FrameSource;

fn scene(frames: u32, seed: u64) -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames,
        seed,
        ..SceneSpec::test_scene()
    })
}

fn small_tasm(tag: &str) -> Tasm {
    let dir = std::env::temp_dir().join(format!("tasm-inc-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            parallel_encode: true,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        ..Default::default()
    };
    Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap()
}

fn repeated_queries(label: &str, windows: &[(u32, u32)], repeats: usize) -> Vec<RunQuery> {
    let mut out = Vec::new();
    for _ in 0..repeats {
        for &(a, b) in windows {
            out.push(RunQuery {
                label: label.to_string(),
                frames: a..b,
            });
        }
    }
    out
}

/// Repeated queries over the same section accumulate regret and re-tile
/// only that section, leaving unqueried SOTs untouched (database-cracking
/// behaviour).
#[test]
fn regret_retiles_only_queried_sections() {
    let video = scene(40, 3);
    let mut tasm = small_tasm("cracking");
    tasm.ingest("v", &video, 30).unwrap();
    let truth = |f: u32| video.ground_truth(f);
    let queries = repeated_queries("car", &[(0, 10)], 30);
    let mut det = SimulatedYolo::full(1);
    let report = run_workload(
        &mut tasm,
        "v",
        &queries,
        Strategy::IncrementalRegret,
        &mut det,
        &truth,
        None,
    )
    .unwrap();
    assert!(
        report.retile_ops > 0,
        "hot section should have been re-tiled"
    );

    let manifest = tasm.manifest("v").unwrap();
    assert!(
        !manifest.sots[0].layout.is_untiled(),
        "queried SOT should be tiled"
    );
    for (i, sot) in manifest.sots.iter().enumerate().skip(1) {
        assert!(
            sot.layout.is_untiled(),
            "unqueried SOT {i} must remain untiled"
        );
    }
}

/// The same SOT evolves through multiple layouts as the query mix changes
/// ("TASM may even tile the same SOT multiple times", §4.4).
#[test]
fn layout_evolves_with_query_mix() {
    let video = scene(20, 5);
    let mut tasm = small_tasm("evolve");
    tasm.ingest("v", &video, 30).unwrap();
    let truth = |f: u32| video.ground_truth(f);
    let mut det = SimulatedYolo::full(1);

    // Phase 1: hammer with car queries until it tiles around cars.
    let phase1 = repeated_queries("car", &[(0, 10)], 25);
    run_workload(
        &mut tasm,
        "v",
        &phase1,
        Strategy::IncrementalRegret,
        &mut det,
        &truth,
        None,
    )
    .unwrap();
    let l1 = tasm.manifest("v").unwrap().sots[0].layout.clone();
    assert!(!l1.is_untiled());

    // Phase 2: switch to person queries; the layout should change again.
    let phase2 = repeated_queries("person", &[(0, 10)], 40);
    let report2 = run_workload(
        &mut tasm,
        "v",
        &phase2,
        Strategy::IncrementalRegret,
        &mut det,
        &truth,
        None,
    )
    .unwrap();
    let l2 = tasm.manifest("v").unwrap().sots[0].layout.clone();
    assert!(
        report2.retile_ops > 0,
        "new object class should trigger re-tiling"
    );
    assert_ne!(l1, l2, "layout should evolve for the new query mix");
}

/// η = 0 re-tiles immediately on the first query; η = 1 waits for regret to
/// amortize the encode cost (§4.4's discussion of the threshold).
#[test]
fn eta_controls_retiling_eagerness() {
    let video = scene(20, 9);
    let truth = |f: u32| video.ground_truth(f);

    let count_retiles = |eta: f64, tag: &str| {
        let dir = std::env::temp_dir().join(format!("tasm-eta-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = TasmConfig {
            eta,
            storage: StorageConfig {
                gop_len: 10,
                sot_frames: 10,
                parallel_encode: true,
                ..Default::default()
            },
            partition: PartitionConfig {
                min_tile_width: 32,
                min_tile_height: 32,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut tasm = Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap();
        tasm.ingest("v", &video, 30).unwrap();
        let queries = repeated_queries("car", &[(0, 10)], 6);
        let mut det = SimulatedYolo::full(1);
        let report = run_workload(
            &mut tasm,
            "v",
            &queries,
            Strategy::IncrementalRegret,
            &mut det,
            &truth,
            None,
        )
        .unwrap();
        // Which query index first paid a retile?
        report
            .records
            .iter()
            .position(|r| r.retile_seconds > 1e-5)
            .map(|p| p as i64)
            .unwrap_or(i64::MAX)
    };

    let eager = count_retiles(0.0, "zero");
    let patient = count_retiles(1.0, "one");
    assert!(
        eager <= patient,
        "η=0 (first retile at {eager}) should act no later than η=1 (at {patient})"
    );
    assert_eq!(eager, 0, "η=0 must re-tile on the very first query");
}

/// The not-tiled baseline never re-tiles, and its per-query decode cost is
/// stable (the flat diagonal of Figure 11).
#[test]
fn not_tiled_baseline_is_stable() {
    let video = scene(20, 11);
    let mut tasm = small_tasm("baseline");
    tasm.ingest("v", &video, 30).unwrap();
    let truth = |f: u32| video.ground_truth(f);
    let queries = repeated_queries("car", &[(0, 10), (10, 20)], 5);
    let mut det = SimulatedYolo::full(1);
    let report = run_workload(
        &mut tasm,
        "v",
        &queries,
        Strategy::NotTiled,
        &mut det,
        &truth,
        None,
    )
    .unwrap();
    assert_eq!(report.retile_ops, 0);
    // Same window -> identical samples touched every time. With the
    // decoded-GOP cache, repeats shift work from decode to reuse, but the
    // total stays flat (the flat diagonal of Figure 11).
    let samples: Vec<u64> = report.records.iter().map(|r| r.samples_touched()).collect();
    assert_eq!(samples[0], samples[2]);
    assert_eq!(samples[1], samples[3]);
    // The repeats themselves are served from the cache.
    assert!(
        report.cache_hits > 0,
        "repeated windows should hit the cache"
    );
    assert!(report.records[2].samples_decoded < report.records[0].samples_decoded.max(1));
}

/// After the regret policy re-tiles, scans still return exactly the same
/// regions (correctness is preserved across physical reorganization).
#[test]
fn results_stable_across_retiling() {
    let video = scene(20, 13);
    let tasm = small_tasm("stable");
    tasm.ingest("v", &video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
        tasm.mark_processed("v", f).unwrap();
    }
    let before = tasm
        .scan("v", &LabelPredicate::label("car"), 0..20)
        .unwrap();
    // Drive regret until a re-tile happens.
    let mut retiled = false;
    for _ in 0..40 {
        let s = tasm.observe_regret("v", "car", 0..10).unwrap();
        if s.encode.bytes_produced > 0 {
            retiled = true;
            break;
        }
    }
    assert!(retiled, "regret should re-tile under repeated queries");
    let after = tasm
        .scan("v", &LabelPredicate::label("car"), 0..20)
        .unwrap();
    assert_eq!(before.regions.len(), after.regions.len());
    for (a, b) in before.regions.iter().zip(&after.regions) {
        assert_eq!((a.frame, a.rect), (b.frame, b.rect));
    }
}
