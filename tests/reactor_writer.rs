//! Partial-write resumption of the reactor's frame writer.
//!
//! The contract under test: `tasm_proto::nio::FrameQueue` driven against a
//! sink that accepts arbitrary 1..N-byte slices — with `WouldBlock`
//! interleaved between them — emits a byte stream identical to a single
//! contiguous write of the same frames, for every `Message` variant the
//! protocol defines. This is the property the reactor's write-readiness
//! loop depends on: a session parked mid-frame at any byte offset must
//! resume exactly where it stopped, never duplicating, dropping, or
//! reordering a byte.

use std::io::{self, Write};

use proptest::collection::vec;
use proptest::prelude::*;
use tasm_core::{LabelPredicate, PlanStats, Query, QueryMode, RegionPixels};
use tasm_proto::nio::{FrameQueue, FrameReader, ReadProgress, WriteProgress};
use tasm_proto::{
    encode_region, ErrorCode, Message, QueryTrace, ReplicatedDetection, ReplicationRecord,
    ResultSummary, VERSION,
};
use tasm_service::ServiceStats;
use tasm_video::{Frame, Rect};

/// One encoded frame per protocol message variant (plus the borrowed-region
/// fast path, which bypasses `Message::encode` entirely), so the resumption
/// property is exercised across every frame shape the reactor can emit or
/// relay: empty-payload singletons, nested structs, and pixel planes.
fn all_frame_kinds() -> Vec<Vec<u8>> {
    let rect = Rect { x: 4, y: 8, w: 16, h: 12 };
    let region = RegionPixels {
        frame: 7,
        rect,
        pixels: Frame::filled(16, 12, 120, 90, 160),
    };
    let query = Query::new(LabelPredicate::label("car"))
        .frames(3..40)
        .roi(rect)
        .stride(2)
        .limit(5)
        .mode(QueryMode::Pixels);
    let detection = ReplicatedDetection { label: "van".into(), frame: 9, rect };
    let messages = vec![
        Message::ClientHello { version: VERSION },
        Message::ServerHello { version: VERSION, max_inflight: 8 },
        Message::Query {
            id: 42,
            video: "v".into(),
            query: query.clone(),
            trace_id: Some(0xfeed_beef),
        },
        Message::ResultHeader {
            id: 42,
            matched: 3,
            regions: 2,
            plan: PlanStats { tiles_planned: 6, tiles_pruned: 10, ..PlanStats::default() },
            epoch: 1,
        },
        Message::Region { id: 42, region: region.clone() },
        Message::ResultDone {
            id: 42,
            summary: ResultSummary { samples_decoded: 12, ..ResultSummary::default() },
            trace: Some(QueryTrace::default()),
        },
        Message::StatsRequest,
        Message::StatsReply { stats: Box::new(ServiceStats::default()) },
        Message::Error { id: Some(7), code: ErrorCode::Busy, message: "queue full".into() },
        Message::Goodbye,
        Message::ShutdownServer,
        Message::Replicate {
            seq: 1,
            record: ReplicationRecord::StageSot {
                video: "v".into(),
                sot_idx: 0,
                tiles: vec![vec![1, 2, 3], vec![4]],
            },
        },
        Message::Replicate {
            seq: 2,
            record: ReplicationRecord::CommitVideo {
                epoch: 3,
                video: "v".into(),
                manifest: b"{}".to_vec(),
            },
        },
        Message::Replicate {
            seq: 3,
            record: ReplicationRecord::CommitSot {
                epoch: 4,
                video: "v".into(),
                sot_idx: 1,
                manifest: b"{}".to_vec(),
            },
        },
        Message::Replicate {
            seq: 4,
            record: ReplicationRecord::IndexState {
                video: "v".into(),
                detections: vec![detection],
                processed: vec![0, 10, 20],
            },
        },
        Message::ReplicateAck { seq: 4 },
        Message::ManifestRequest { video: "v".into() },
        Message::ManifestReply { video: "v".into(), manifest: b"{\"sots\":[]}".to_vec() },
        Message::PushVideo { seq: 5, video: "v".into(), target: "127.0.0.1:9".into() },
        Message::RemoveVideo { seq: 6, video: "v".into() },
    ];
    let mut frames: Vec<Vec<u8>> = messages.iter().map(Message::encode).collect();
    frames.push(encode_region(42, &region));
    frames
}

/// A sink that accepts bytes according to a script: each entry is either
/// `WouldBlock` (0) or a cap on how many bytes the next `write` may take.
/// Once the script runs out the sink accepts everything, so the drive loop
/// always terminates.
struct ChunkSink {
    accepted: Vec<u8>,
    script: Vec<usize>,
    step: usize,
}

impl Write for ChunkSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let cap = self.script.get(self.step).copied();
        self.step += 1;
        match cap {
            Some(0) => Err(io::ErrorKind::WouldBlock.into()),
            Some(n) => {
                let n = n.min(buf.len());
                self.accepted.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            None => {
                self.accepted.extend_from_slice(buf);
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Drives `queue` into `sink` the way the reactor does: one `write_to` per
/// "readiness event", resuming after every `Blocked` until flushed.
fn drive(queue: &mut FrameQueue, sink: &mut ChunkSink) -> usize {
    let mut passes = 0;
    loop {
        passes += 1;
        assert!(passes < 1_000_000, "writer failed to make progress");
        match queue.write_to(sink).expect("scripted sink never hard-fails") {
            WriteProgress::Flushed => return passes,
            WriteProgress::Blocked { .. } => continue,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every frame type, under arbitrary slice sizes and WouldBlock
    /// interleavings, the accepted byte stream equals the contiguous
    /// concatenation — and re-framing it recovers the exact frames.
    #[test]
    fn resumed_writes_match_contiguous(
        // Per-write byte caps; 0 = WouldBlock. Heavy on tiny slices so
        // length prefixes and frame boundaries are split mid-u32.
        script in vec(0usize..7, 0..600),
        // Rotate which frame goes first so boundary splits land on
        // different variants across cases.
        rotate in 0usize..32,
    ) {
        let mut frames = all_frame_kinds();
        let r = rotate % frames.len();
        frames.rotate_left(r);
        let contiguous: Vec<u8> = frames.concat();

        let mut queue = FrameQueue::new();
        for f in &frames {
            queue.push(f.clone());
        }
        prop_assert_eq!(queue.queued_bytes(), contiguous.len());

        let mut sink = ChunkSink { accepted: Vec::new(), script, step: 0 };
        drive(&mut queue, &mut sink);

        prop_assert!(queue.is_empty());
        prop_assert_eq!(queue.queued_bytes(), 0);
        prop_assert_eq!(&sink.accepted, &contiguous);

        // Round-trip: the resumed stream must re-frame into exactly the
        // original payloads, each of which still decodes.
        let mut src = io::Cursor::new(&sink.accepted);
        let mut reader = FrameReader::new();
        let mut recovered = Vec::new();
        loop {
            match reader.fill_from(&mut src).expect("stream re-frames cleanly") {
                ReadProgress::Frame(payload) => recovered.push(payload),
                ReadProgress::Closed => break,
                ReadProgress::NeedMore => unreachable!("cursor never blocks"),
            }
        }
        prop_assert_eq!(recovered.len(), frames.len());
        for (payload, frame) in recovered.iter().zip(&frames) {
            prop_assert_eq!(payload.as_slice(), &frame[4..]);
            prop_assert!(Message::decode_payload(payload).is_ok());
        }
    }
}

/// A queue interleaved with new pushes mid-stall keeps strict FIFO order:
/// frames queued while the front frame is parked at a byte offset do not
/// reorder ahead of it.
#[test]
fn push_while_blocked_preserves_order() {
    let frames = all_frame_kinds();
    let contiguous: Vec<u8> = frames.concat();

    let mut queue = FrameQueue::new();
    let mut sink = ChunkSink {
        accepted: Vec::new(),
        // Accept 3 bytes then stall forever (until the script is spent).
        script: vec![3, 0, 0, 5, 0, 1, 0, 2],
        step: 0,
    };
    let mut pending = frames.clone().into_iter();
    queue.push(pending.next().unwrap());
    loop {
        match queue.write_to(&mut sink).unwrap() {
            WriteProgress::Blocked { .. } => {
                if let Some(f) = pending.next() {
                    queue.push(f);
                }
            }
            WriteProgress::Flushed => {
                if let Some(f) = pending.next() {
                    queue.push(f);
                } else {
                    break;
                }
            }
        }
    }
    assert!(queue.is_empty());
    assert_eq!(sink.accepted, contiguous);
}
