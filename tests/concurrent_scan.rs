//! Concurrency correctness of the query service.
//!
//! The contract under test: scans executed concurrently through
//! `QueryService` — at any concurrency, queue depth, or cache state, and
//! even while the background retile daemon re-tiles mid-workload — return
//! `ScanResult`s bit-identical to a serial execution against the layout
//! epoch each scan observed. Shared-scan dedup (single-flight GOP decodes)
//! must be invisible in the pixels and visible only in the accounting.

use std::sync::{Arc, OnceLock};
use tasm_core::{LabelPredicate, PartitionConfig, ScanResult, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_service::{QueryRequest, QueryService, RetilePolicy, ServiceConfig};
use tasm_video::{FrameSource, Plane};

fn scene(frames: u32) -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 256,
        height: 160,
        frames,
        seed: 33,
        ..SceneSpec::test_scene()
    })
}

fn tasm_with(tag: &str, cfg_mut: impl FnOnce(&mut TasmConfig)) -> Arc<Tasm> {
    let dir = std::env::temp_dir().join(format!("tasm-conc-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        workers: 1,
        cache_bytes: 64 << 20,
        ..Default::default()
    };
    cfg_mut(&mut cfg);
    Arc::new(Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap())
}

fn ingest(tasm: &Tasm, video: &SyntheticVideo) {
    tasm.ingest("v", video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
        tasm.mark_processed("v", f).unwrap();
    }
}

fn assert_scans_equal(a: &ScanResult, b: &ScanResult, what: &str) {
    assert_eq!(a.regions.len(), b.regions.len(), "{what}: region count");
    for (ra, rb) in a.regions.iter().zip(&b.regions) {
        assert_eq!(ra.frame, rb.frame, "{what}: frame order");
        assert_eq!(ra.rect, rb.rect, "{what}: rects");
        for plane in Plane::ALL {
            assert_eq!(
                ra.pixels.plane(plane),
                rb.pixels.plane(plane),
                "{what}: pixels of frame {} plane {plane:?}",
                ra.frame
            );
        }
    }
}

fn scans_equal(a: &ScanResult, b: &ScanResult) -> bool {
    a.regions.len() == b.regions.len()
        && a.regions.iter().zip(&b.regions).all(|(ra, rb)| {
            ra.frame == rb.frame
                && ra.rect == rb.rect
                && Plane::ALL
                    .iter()
                    .all(|&p| ra.pixels.plane(p) == rb.pixels.plane(p))
        })
}

/// Debug builds keep the stress affordable; release (the CI stress job)
/// runs the full width.
fn stress_scale() -> (usize, usize) {
    if cfg!(debug_assertions) {
        (4, 24) // (service workers, queries)
    } else {
        (16, 96)
    }
}

#[test]
fn concurrent_scans_bit_identical_to_serial() {
    let video = scene(40);
    let (workers, queries) = stress_scale();

    // Serial reference: uncached, single-threaded, separate store.
    let serial = tasm_with("serial-ref", |c| {
        c.cache_bytes = 0;
        c.workers = 1;
    });
    ingest(&serial, &video);
    serial.kqko_retile_all("v", &["car".to_string()]).unwrap();

    // Concurrent instance: shared cache + dedup, same deterministic content.
    let conc = tasm_with("concurrent", |_| {});
    ingest(&conc, &video);
    conc.kqko_retile_all("v", &["car".to_string()]).unwrap();

    let windows = [0..40u32, 0..10, 5..17, 12..13, 20..40, 8..32];
    let preds = [
        LabelPredicate::label("car"),
        LabelPredicate::label("person"),
        LabelPredicate::any_of(&["car", "person"]),
    ];
    let references: Vec<Vec<ScanResult>> = preds
        .iter()
        .map(|p| {
            windows
                .iter()
                .map(|w| serial.scan("v", p, w.clone()).unwrap())
                .collect()
        })
        .collect();

    let service = QueryService::start(
        Arc::clone(&conc),
        ServiceConfig {
            workers,
            queue_depth: 8, // smaller than the workload: exercises backpressure
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..queries)
        .map(|i| {
            let p = i % preds.len();
            let w = (i * 7 + 3) % windows.len();
            let h = service
                .submit(QueryRequest {
                    video: "v".to_string(),
                    predicate: preds[p].clone(),
                    frames: windows[w].clone(),
                })
                .unwrap();
            (p, w, h)
        })
        .collect();
    for (p, w, h) in handles {
        let outcome = h.wait().unwrap();
        assert_scans_equal(
            &references[p][w],
            &outcome.result,
            &format!(
                "predicate {p} window {:?} at concurrency {workers}",
                windows[w]
            ),
        );
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, queries as u64);
    assert_eq!(stats.failed, 0);
}

/// With the regret daemon firing mid-workload, every concurrent scan must
/// still be bit-identical to a *serial* execution at the layout epoch it
/// observed: either the pre-retile state or the post-retile state, never a
/// torn mix. A twin instance driven serially provides both references and
/// the expected final layout.
#[test]
fn retile_daemon_mid_workload_keeps_scans_bit_exact() {
    let frames = 20u32;
    let video = scene(frames);
    let (workers, queries) = stress_scale();
    // One SOT spanning the whole video: exactly two layout epochs exist
    // (untiled at ingest, object-tiled after the single regret re-tile).
    let single_sot = move |c: &mut TasmConfig| {
        c.storage.gop_len = 10;
        c.storage.sot_frames = 20;
        c.eta = 0.05; // regret crosses the threshold after a few queries
    };

    let window = 0..frames;
    let pred = LabelPredicate::label("car");

    // Twin driven serially: reference results for both epochs.
    let twin = tasm_with("twin", single_sot);
    ingest(&twin, &video);
    let ref_pre = twin.scan("v", &pred, window.clone()).unwrap();
    let mut retiled_after = None;
    for i in 0..queries {
        let cost = twin.observe_regret("v", "car", window.clone()).unwrap();
        if cost.encode.bytes_produced > 0 {
            retiled_after = Some(i + 1);
            break;
        }
    }
    let retiled_after = retiled_after.expect("the regret policy must re-tile within the workload");
    assert!(
        retiled_after <= queries / 2,
        "retile must land mid-workload, not at the end ({retiled_after}/{queries})"
    );
    let ref_post = twin.scan("v", &pred, window.clone()).unwrap();
    assert!(
        !scans_equal(&ref_pre, &ref_post),
        "re-encode must change pixels, or the test cannot detect torn scans"
    );
    let expected_layout = twin.manifest("v").unwrap().sots[0].layout.clone();
    assert!(!expected_layout.is_untiled());

    // Concurrent run with the daemon enabled.
    let conc = tasm_with("daemon-stress", single_sot);
    ingest(&conc, &video);
    let service = QueryService::start(
        Arc::clone(&conc),
        ServiceConfig {
            workers,
            queue_depth: 16,
            retile: RetilePolicy::Regret,
            retile_interval: std::time::Duration::from_millis(1),
        },
    );
    let handles: Vec<_> = (0..queries)
        .map(|_| {
            service
                .submit(QueryRequest {
                    video: "v".to_string(),
                    predicate: pred.clone(),
                    frames: window.clone(),
                })
                .unwrap()
        })
        .collect();
    let mut pre = 0usize;
    let mut post = 0usize;
    for h in handles {
        let outcome = h.wait().unwrap();
        if scans_equal(&outcome.result, &ref_pre) {
            pre += 1;
        } else if scans_equal(&outcome.result, &ref_post) {
            post += 1;
        } else {
            panic!(
                "concurrent scan matches neither the pre- nor the post-retile \
                 serial reference: torn or nondeterministic execution"
            );
        }
    }
    let stats = service.shutdown();
    assert_eq!(pre + post, queries);
    assert_eq!(stats.failed, 0);
    // The daemon processed every observation by shutdown: the layout must
    // have converged to the same state the serial twin reached.
    assert!(stats.retile_ops > 0, "the daemon must have re-tiled");
    assert_eq!(
        conc.manifest("v").unwrap().sots[0].layout,
        expected_layout,
        "concurrent regret must converge to the serial layout"
    );
}

/// Shared-scan dedup must actually dedup: flood the service with identical
/// cold-cache queries and observe joined GOP decodes. Thread scheduling can
/// in principle serialize a whole attempt, so a few fresh attempts are
/// allowed before declaring failure.
#[test]
fn overlapping_queries_join_inflight_decodes() {
    let video = scene(20);
    for attempt in 0..5 {
        let tasm = tasm_with(&format!("join-{attempt}"), |_| {});
        ingest(&tasm, &video);
        let service = QueryService::start(
            Arc::clone(&tasm),
            ServiceConfig {
                workers: 8,
                queue_depth: 32,
                ..Default::default()
            },
        );
        let handles: Vec<_> = (0..16)
            .map(|_| {
                service
                    .submit(QueryRequest {
                        video: "v".to_string(),
                        predicate: LabelPredicate::label("car"),
                        frames: 0..20,
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        let stats = service.shutdown();
        assert!(stats.shared.owned > 0, "someone must decode");
        if stats.shared.joined > 0 {
            return; // dedup observed
        }
    }
    panic!("16 identical cold queries on 8 workers never joined an in-flight decode");
}

// ---------------------------------------------------------------------
// Property: shared-scan dedup never changes decoded pixels.
// ---------------------------------------------------------------------

struct PropSetup {
    service: QueryService,
    serial: Arc<Tasm>,
}

fn prop_setup() -> &'static PropSetup {
    static SETUP: OnceLock<PropSetup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let video = scene(30);
        let serial = tasm_with("prop-serial", |c| {
            c.cache_bytes = 0;
            c.workers = 1;
        });
        ingest(&serial, &video);
        let conc = tasm_with("prop-conc", |_| {});
        ingest(&conc, &video);
        let service = QueryService::start(
            Arc::clone(&conc),
            ServiceConfig {
                workers: 4,
                queue_depth: 32,
                ..Default::default()
            },
        );
        PropSetup { service, serial }
    })
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn dedup_never_changes_pixels(
            start in 0u32..30,
            len in 1u32..20,
            label_pick in 0usize..3,
            fanout in 2usize..6,
        ) {
            let setup = prop_setup();
            let label = ["car", "person", "bicycle"][label_pick];
            let frames = start..(start + len).min(30);
            let pred = LabelPredicate::label(label);
            let reference = setup.serial.scan("v", &pred, frames.clone()).unwrap();
            // Several copies of the query race through the shared cache;
            // some join each other's decodes, all must match the uncached
            // serial reference bit for bit.
            let handles: Vec<_> = (0..fanout)
                .map(|_| {
                    setup
                        .service
                        .submit(QueryRequest {
                            video: "v".to_string(),
                            predicate: pred.clone(),
                            frames: frames.clone(),
                        })
                        .unwrap()
                })
                .collect();
            for h in handles {
                let outcome = h.wait().unwrap();
                assert_scans_equal(
                    &reference,
                    &outcome.result,
                    &format!("label {label} frames {frames:?}"),
                );
            }
        }
    }
}
