//! Concurrency correctness of the query service.
//!
//! The contract under test: scans executed concurrently through
//! `QueryService` — at any concurrency, queue depth, or cache state, and
//! even while the background retile daemon re-tiles mid-workload — return
//! `ScanResult`s bit-identical to a serial execution against the layout
//! epoch each scan observed. Shared-scan dedup (single-flight GOP decodes)
//! must be invisible in the pixels and visible only in the accounting.

use std::sync::{Arc, OnceLock};
use tasm_core::{
    LabelPredicate, PartitionConfig, Query, RegionPixels, ScanResult, StorageConfig, Tasm,
    TasmConfig,
};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_service::{QueryRequest, QueryService, RetilePolicy, ServiceConfig, Shutdown};
use tasm_suite::{assert_regions_identical, post_filter, regions_identical};
use tasm_video::{FrameSource, Plane, Rect};

fn scene(frames: u32) -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 256,
        height: 160,
        frames,
        seed: 33,
        ..SceneSpec::test_scene()
    })
}

fn tasm_with(tag: &str, cfg_mut: impl FnOnce(&mut TasmConfig)) -> Arc<Tasm> {
    let dir = std::env::temp_dir().join(format!("tasm-conc-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        workers: 1,
        cache_bytes: 64 << 20,
        ..Default::default()
    };
    cfg_mut(&mut cfg);
    Arc::new(Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap())
}

fn ingest(tasm: &Tasm, video: &SyntheticVideo) {
    tasm.ingest("v", video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
        tasm.mark_processed("v", f).unwrap();
    }
}

fn assert_scans_equal(a: &ScanResult, b: &ScanResult, what: &str) {
    let expected: Vec<&RegionPixels> = a.regions.iter().collect();
    assert_regions_identical(&expected, &b.regions, what);
}

fn scans_equal(a: &ScanResult, b: &ScanResult) -> bool {
    let expected: Vec<&RegionPixels> = a.regions.iter().collect();
    regions_identical(&expected, &b.regions)
}

/// Debug builds keep the stress affordable; release (the CI stress job)
/// runs the full width.
fn stress_scale() -> (usize, usize) {
    if cfg!(debug_assertions) {
        (4, 24) // (service workers, queries)
    } else {
        (16, 96)
    }
}

#[test]
fn concurrent_scans_bit_identical_to_serial() {
    let video = scene(40);
    let (workers, queries) = stress_scale();

    // Serial reference: uncached, single-threaded, separate store.
    let serial = tasm_with("serial-ref", |c| {
        c.cache_bytes = 0;
        c.workers = 1;
    });
    ingest(&serial, &video);
    serial.kqko_retile_all("v", &["car".to_string()]).unwrap();

    // Concurrent instance: shared cache + dedup, same deterministic content.
    let conc = tasm_with("concurrent", |_| {});
    ingest(&conc, &video);
    conc.kqko_retile_all("v", &["car".to_string()]).unwrap();

    let windows = [0..40u32, 0..10, 5..17, 12..13, 20..40, 8..32];
    let preds = [
        LabelPredicate::label("car"),
        LabelPredicate::label("person"),
        LabelPredicate::any_of(&["car", "person"]),
    ];
    let references: Vec<Vec<ScanResult>> = preds
        .iter()
        .map(|p| {
            windows
                .iter()
                .map(|w| serial.scan("v", p, w.clone()).unwrap())
                .collect()
        })
        .collect();

    let service = QueryService::start(
        Arc::clone(&conc),
        ServiceConfig {
            workers,
            queue_depth: 8, // smaller than the workload: exercises backpressure
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..queries)
        .map(|i| {
            let p = i % preds.len();
            let w = (i * 7 + 3) % windows.len();
            let h = service
                .submit(QueryRequest::scan(
                    "v",
                    preds[p].clone(),
                    windows[w].clone(),
                ))
                .unwrap();
            (p, w, h)
        })
        .collect();
    for (p, w, h) in handles {
        let outcome = h.wait().unwrap();
        assert_scans_equal(
            &references[p][w],
            &outcome.result,
            &format!(
                "predicate {p} window {:?} at concurrency {workers}",
                windows[w]
            ),
        );
    }
    let stats = service.shutdown(Shutdown::Drain).stats;
    assert_eq!(stats.completed, queries as u64);
    assert_eq!(stats.failed, 0);
}

/// With the regret daemon firing mid-workload, every concurrent scan must
/// still be bit-identical to a *serial* execution at the layout epoch it
/// observed: either the pre-retile state or the post-retile state, never a
/// torn mix. A twin instance driven serially provides both references and
/// the expected final layout.
#[test]
fn retile_daemon_mid_workload_keeps_scans_bit_exact() {
    let frames = 20u32;
    let video = scene(frames);
    let (workers, queries) = stress_scale();
    // One SOT spanning the whole video: exactly two layout epochs exist
    // (untiled at ingest, object-tiled after the single regret re-tile).
    let single_sot = move |c: &mut TasmConfig| {
        c.storage.gop_len = 10;
        c.storage.sot_frames = 20;
        c.eta = 0.05; // regret crosses the threshold after a few queries
    };

    let window = 0..frames;
    let pred = LabelPredicate::label("car");

    // Twin driven serially: reference results for both epochs.
    let twin = tasm_with("twin", single_sot);
    ingest(&twin, &video);
    let ref_pre = twin.scan("v", &pred, window.clone()).unwrap();
    let mut retiled_after = None;
    for i in 0..queries {
        let cost = twin.observe_regret("v", "car", window.clone()).unwrap();
        if cost.encode.bytes_produced > 0 {
            retiled_after = Some(i + 1);
            break;
        }
    }
    let retiled_after = retiled_after.expect("the regret policy must re-tile within the workload");
    assert!(
        retiled_after <= queries / 2,
        "retile must land mid-workload, not at the end ({retiled_after}/{queries})"
    );
    let ref_post = twin.scan("v", &pred, window.clone()).unwrap();
    assert!(
        !scans_equal(&ref_pre, &ref_post),
        "re-encode must change pixels, or the test cannot detect torn scans"
    );
    let expected_layout = twin.manifest("v").unwrap().sots[0].layout.clone();
    assert!(!expected_layout.is_untiled());

    // Concurrent run with the daemon enabled.
    let conc = tasm_with("daemon-stress", single_sot);
    ingest(&conc, &video);
    let service = QueryService::start(
        Arc::clone(&conc),
        ServiceConfig {
            workers,
            queue_depth: 16,
            retile: RetilePolicy::Regret,
            retile_interval: std::time::Duration::from_millis(1),
            slow_query: None,
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..queries)
        .map(|_| {
            service
                .submit(QueryRequest::scan("v", pred.clone(), window.clone()))
                .unwrap()
        })
        .collect();
    let mut pre = 0usize;
    let mut post = 0usize;
    for h in handles {
        let outcome = h.wait().unwrap();
        if scans_equal(&outcome.result, &ref_pre) {
            pre += 1;
        } else if scans_equal(&outcome.result, &ref_post) {
            post += 1;
        } else {
            panic!(
                "concurrent scan matches neither the pre- nor the post-retile \
                 serial reference: torn or nondeterministic execution"
            );
        }
    }
    let stats = service.shutdown(Shutdown::Drain).stats;
    assert_eq!(pre + post, queries);
    assert_eq!(stats.failed, 0);
    // The daemon processed every observation by shutdown: the layout must
    // have converged to the same state the serial twin reached.
    assert!(stats.retile_ops > 0, "the daemon must have re-tiled");
    assert_eq!(
        conc.manifest("v").unwrap().sots[0].layout,
        expected_layout,
        "concurrent regret must converge to the serial layout"
    );
}

/// The spatiotemporal planner under concurrent re-tiling: ROI + stride
/// queries racing the regret daemon must each return exactly the
/// post-filtered serial scan of *one* layout epoch — pruning tiles and GOPs
/// must never let a query observe a torn mix of layouts.
#[test]
fn roi_queries_bit_exact_across_concurrent_retile() {
    let frames = 20u32;
    let video = scene(frames);
    let (workers, queries) = stress_scale();
    let single_sot = move |c: &mut TasmConfig| {
        c.storage.gop_len = 10;
        c.storage.sot_frames = 20;
        c.eta = 0.05;
    };

    let window = 0..frames;
    let pred = LabelPredicate::label("car");
    let query = Query::new(pred.clone())
        .frames(window.clone())
        .roi(Rect::new(0, 0, 192, 160)) // most of the frame: keeps matches in both epochs
        .stride(2);

    // Twin driven serially: post-filtered references for both epochs.
    let twin = tasm_with("roi-twin", single_sot);
    ingest(&twin, &video);
    let scan_pre = twin.scan("v", &pred, window.clone()).unwrap();
    let mut retiled = false;
    for _ in 0..queries {
        if twin
            .observe_regret("v", "car", window.clone())
            .unwrap()
            .encode
            .bytes_produced
            > 0
        {
            retiled = true;
            break;
        }
    }
    assert!(
        retiled,
        "the regret policy must re-tile within the workload"
    );
    let scan_post = twin.scan("v", &pred, window.clone()).unwrap();
    let ref_pre = post_filter(&scan_pre, &query, window.start);
    let ref_post = post_filter(&scan_post, &query, window.start);
    let refs_differ = ref_pre.len() != ref_post.len()
        || ref_pre.iter().zip(&ref_post).any(|(a, b)| {
            Plane::ALL
                .iter()
                .any(|&p| a.pixels.plane(p) != b.pixels.plane(p))
        });
    assert!(
        !ref_pre.is_empty() && refs_differ,
        "references must be distinguishable for the test to mean anything"
    );

    // Concurrent run with the daemon enabled, submitting full Query values.
    let conc = tasm_with("roi-daemon", single_sot);
    ingest(&conc, &video);
    let service = QueryService::start(
        Arc::clone(&conc),
        ServiceConfig {
            workers,
            queue_depth: 16,
            retile: RetilePolicy::Regret,
            retile_interval: std::time::Duration::from_millis(1),
            slow_query: None,
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..queries)
        .map(|_| {
            service
                .submit(QueryRequest::new("v", query.clone()))
                .unwrap()
        })
        .collect();
    for h in handles {
        let outcome = h.wait().unwrap();
        let r = &outcome.result;
        assert!(
            regions_identical(&ref_pre, &r.regions) || regions_identical(&ref_post, &r.regions),
            "ROI query matches neither epoch's post-filtered serial reference: \
             torn or nondeterministic pruned execution"
        );
        // Plan counters are epoch-dependent only through the layout; they
        // must always balance against execution accounting.
        assert_eq!(
            r.shared.owned + r.cache.hits,
            r.plan.gops_planned,
            "planned GOPs must each be decoded or served exactly once"
        );
    }
    let stats = service.shutdown(Shutdown::Drain).stats;
    assert_eq!(stats.failed, 0);
    assert!(stats.plan.frames_sampled > 0);
}

/// Shared-scan dedup must actually dedup: flood the service with identical
/// cold-cache queries and observe joined GOP decodes. Thread scheduling can
/// in principle serialize a whole attempt, so a few fresh attempts are
/// allowed before declaring failure.
#[test]
fn overlapping_queries_join_inflight_decodes() {
    let video = scene(20);
    for attempt in 0..5 {
        let tasm = tasm_with(&format!("join-{attempt}"), |_| {});
        ingest(&tasm, &video);
        let service = QueryService::start(
            Arc::clone(&tasm),
            ServiceConfig {
                workers: 8,
                queue_depth: 32,
                ..Default::default()
            },
        );
        let handles: Vec<_> = (0..16)
            .map(|_| {
                service
                    .submit(QueryRequest::scan("v", LabelPredicate::label("car"), 0..20))
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        let stats = service.shutdown(Shutdown::Drain).stats;
        assert!(stats.shared.owned > 0, "someone must decode");
        if stats.shared.joined > 0 {
            return; // dedup observed
        }
    }
    panic!("16 identical cold queries on 8 workers never joined an in-flight decode");
}

// ---------------------------------------------------------------------
// Property: shared-scan dedup never changes decoded pixels.
// ---------------------------------------------------------------------

struct PropSetup {
    service: QueryService,
    serial: Arc<Tasm>,
}

fn prop_setup() -> &'static PropSetup {
    static SETUP: OnceLock<PropSetup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let video = scene(30);
        let serial = tasm_with("prop-serial", |c| {
            c.cache_bytes = 0;
            c.workers = 1;
        });
        ingest(&serial, &video);
        let conc = tasm_with("prop-conc", |_| {});
        ingest(&conc, &video);
        let service = QueryService::start(
            Arc::clone(&conc),
            ServiceConfig {
                workers: 4,
                queue_depth: 32,
                ..Default::default()
            },
        );
        PropSetup { service, serial }
    })
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn dedup_never_changes_pixels(
            start in 0u32..30,
            len in 1u32..20,
            label_pick in 0usize..3,
            fanout in 2usize..6,
        ) {
            let setup = prop_setup();
            let label = ["car", "person", "bicycle"][label_pick];
            let frames = start..(start + len).min(30);
            let pred = LabelPredicate::label(label);
            let reference = setup.serial.scan("v", &pred, frames.clone()).unwrap();
            // Several copies of the query race through the shared cache;
            // some join each other's decodes, all must match the uncached
            // serial reference bit for bit.
            let handles: Vec<_> = (0..fanout)
                .map(|_| {
                    setup
                        .service
                        .submit(QueryRequest::scan("v", pred.clone(), frames.clone()))
                        .unwrap()
                })
                .collect();
            for h in handles {
                let outcome = h.wait().unwrap();
                assert_scans_equal(
                    &reference,
                    &outcome.result,
                    &format!("label {label} frames {frames:?}"),
                );
            }
        }

        /// The planner equivalence contract, exercised through the
        /// concurrent service with the shared decoded-GOP cache: a query
        /// with arbitrary ROI/stride/limit returns exactly the uncached
        /// serial scan's output filtered post-hoc — bit for bit — and its
        /// fanned-out copies (racing each other through the dedup machinery)
        /// all agree.
        #[test]
        fn query_equals_postfiltered_scan(
            start in 0u32..30,
            len in 1u32..20,
            label_pick in 0usize..3,
            roi in (0u32..200, 0u32..120, 16u32..256, 16u32..160)
                .prop_map(|(x, y, w, h)| Rect::new(x, y, w, h)),
            use_roi in proptest::bool::ANY,
            stride in 1u32..8,
            limit in proptest::option::of(1u32..6),
            fanout in 1usize..4,
        ) {
            let setup = prop_setup();
            let label = ["car", "person", "bicycle"][label_pick];
            let frames = start..(start + len).min(30);
            let mut query = Query::new(LabelPredicate::label(label))
                .frames(frames.clone())
                .stride(stride);
            if use_roi {
                query = query.roi(roi);
            }
            if let Some(k) = limit {
                query = query.limit(k);
            }
            let scan = setup.serial.scan("v", &LabelPredicate::label(label), frames.clone()).unwrap();
            let expected = post_filter(&scan, &query, frames.start);
            let handles: Vec<_> = (0..fanout)
                .map(|_| {
                    setup
                        .service
                        .submit(QueryRequest::new("v", query.clone()))
                        .unwrap()
                })
                .collect();
            for h in handles {
                let outcome = h.wait().unwrap();
                assert_regions_identical(
                    &expected,
                    &outcome.result.regions,
                    &format!("label {label} frames {frames:?} roi {use_roi} stride {stride} limit {limit:?}"),
                );
                prop_assert_eq!(outcome.result.matched, expected.len() as u64);
            }
        }
    }
}
