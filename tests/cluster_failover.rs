//! Cluster-layer acceptance tests: failover and rebalancing are invisible
//! to correctness.
//!
//! The contract under test (the PR's acceptance criterion): with R=2
//! replication, `kill -9` of a shard primary mid-workload — while its
//! regret daemon is re-tiling live — makes the router fail over, and every
//! subsequent query is **bit-identical** to a single-node twin at the same
//! layout epoch. Likewise, `rebalance` moving a video between shards
//! mid-workload never changes a single result byte, and `fsck` is clean on
//! every node afterwards.
//!
//! The primary runs in a *child process* (this same test binary re-invoked
//! with `--exact child_shard_server` and env vars set) so the kill is a
//! real SIGKILL — no destructors, no flushed buffers, exactly the failure
//! replication has to survive. Bit-exactness across the failover rests on
//! the ack-before-durable rule: the retile daemon's hook ships the new
//! layout (raw tile bytes, verbatim) to the backup and only counts the
//! re-tile in `retile_ops` once the backup acked, so `retile_ops > 0`
//! observed through the router guarantees the backup can answer at the
//! post-re-tile epoch.

use std::path::{Path, PathBuf};
use std::process::Stdio;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tasm_client::Connection;
use tasm_cluster::{NodeInfo, Router, RouterConfig, ShardMap};
use tasm_core::{
    LabelPredicate, PartitionConfig, Query, QueryMode, StorageConfig, Tasm, TasmConfig,
};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_server::{ServerConfig, TasmServer};
use tasm_service::{RetileHook, RetilePolicy, ServiceConfig};
use tasm_suite::regions_identical;
use tasm_video::{FrameSource, Rect};

const FRAMES: u32 = 60;

const CHILD_STORE_ENV: &str = "TASM_CLUSTER_CHILD_STORE";
const CHILD_BACKUP_ENV: &str = "TASM_CLUSTER_CHILD_BACKUP";
const CHILD_ADDR_FILE_ENV: &str = "TASM_CLUSTER_CHILD_ADDR_FILE";

/// [`regions_identical`] over two owned region lists.
fn regions_match(a: &[tasm_core::RegionPixels], b: &[tasm_core::RegionPixels]) -> bool {
    let refs: Vec<_> = a.iter().collect();
    regions_identical(&refs, b)
}

fn scene() -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 256,
        height: 160,
        frames: FRAMES,
        seed: 47,
        ..SceneSpec::test_scene()
    })
}

/// One SOT spanning the whole video and a hair-trigger regret threshold:
/// exactly two layout epochs, with the re-tile landing mid-workload (the
/// same tuning `remote_query.rs` uses for its epoch-exactness test). Twin,
/// primary, and backup must share this config bit for bit — the re-tile's
/// encode is deterministic given the config and the observed layout.
fn tuned_cfg() -> TasmConfig {
    TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: FRAMES,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        workers: 1,
        cache_bytes: 64 << 20,
        eta: 0.05,
        ..Default::default()
    }
}

/// The rebalance test's config: standard SOT granularity, no regret tuning
/// (it runs with the daemon off — one layout epoch, one reference).
fn plain_cfg() -> TasmConfig {
    TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        workers: 1,
        cache_bytes: 64 << 20,
        ..Default::default()
    }
}

/// A fresh scratch directory for one test.
fn base_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tasm-cluster-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Opens a disk-backed store (tiered index) the way the CLI lays one out,
/// so a child process can reopen it by path.
fn open_store(dir: &Path, cfg: TasmConfig) -> Arc<Tasm> {
    Arc::new(Tasm::open_tiered(dir.join("videos"), &dir.join("index"), cfg).unwrap())
}

/// An ephemeral in-process store (memory index).
fn open_mem(dir: PathBuf, cfg: TasmConfig) -> Arc<Tasm> {
    Arc::new(Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap())
}

fn ingest(tasm: &Tasm, video: &SyntheticVideo) {
    tasm.ingest("v", video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
        tasm.mark_processed("v", f).unwrap();
    }
}

/// All-car query mix (windows/ROI/stride/limit vary): with one SOT and one
/// label the regret policy converges on one alternative layout, so a
/// serially-driven twin reproduces the primary's second epoch.
fn mix() -> Vec<Query> {
    (0..4u32)
        .flat_map(|client| {
            let start = client * 5;
            vec![
                Query::new(LabelPredicate::label("car")).frames(start..start + 40),
                Query::new(LabelPredicate::label("car"))
                    .frames(start..start + 50)
                    .roi(Rect::new(0, 0, 128, 80))
                    .stride(2),
                Query::new(LabelPredicate::label("car"))
                    .frames(start..start + 30)
                    .limit(4),
                Query::new(LabelPredicate::label("car"))
                    .frames(0..FRAMES)
                    .mode(QueryMode::Count),
            ]
        })
        .collect()
}

/// Not a test: the shard-primary *process* for the failover test below.
/// The parent spawns this test binary with `--exact child_shard_server`
/// and the `TASM_CLUSTER_CHILD_*` env vars set; in a normal test run the
/// env is absent and this is a no-op. The child attaches the store the
/// parent ingested, full-syncs the backup, and serves with the regret
/// daemon re-tiling live — then waits to be killed.
#[test]
fn child_shard_server() {
    let (Ok(store), Ok(backup), Ok(addr_file)) = (
        std::env::var(CHILD_STORE_ENV),
        std::env::var(CHILD_BACKUP_ENV),
        std::env::var(CHILD_ADDR_FILE_ENV),
    ) else {
        return;
    };
    let tasm = open_store(Path::new(&store), tuned_cfg());
    tasm.attach("v").expect("attach ingested video");
    let hook =
        tasm_cluster::ReplicatorHook::bootstrap(Arc::clone(&tasm), std::slice::from_ref(&backup))
            .expect("full-sync backup");
    let server = TasmServer::bind_with_hook(
        tasm,
        ServiceConfig {
            workers: 2,
            queue_depth: 32,
            retile: RetilePolicy::Regret,
            retile_interval: Duration::from_millis(1),
            slow_query: None,
            ..Default::default()
        },
        ServerConfig::default(),
        "127.0.0.1:0",
        Some(Arc::new(hook)),
    )
    .expect("bind shard primary");
    // Publish the bound address atomically (write + rename) for the parent.
    let tmp = format!("{addr_file}.tmp");
    std::fs::write(&tmp, server.local_addr().to_string()).unwrap();
    std::fs::rename(&tmp, &addr_file).unwrap();
    // Serve until the parent SIGKILLs this process.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Regression: the replication hook must ack the delta of a re-tile that
/// committed as a deferred-GC MVCC layout epoch on a disk-backed store —
/// the exact path the kill-9 test's child primary runs, reproduced
/// in-process so a failure surfaces the hook's actual error instead of a
/// `retile_ops` flatline through the router.
#[test]
fn replication_hook_acks_the_delta_of_a_live_retile() {
    let video = scene();
    let base = base_dir("hook-delta");
    let primary = open_store(&base.join("primary"), tuned_cfg());
    ingest(&primary, &video);
    let backup_tasm = open_store(&base.join("backup"), tuned_cfg());
    let backup = TasmServer::bind(
        Arc::clone(&backup_tasm),
        ServiceConfig {
            workers: 1,
            queue_depth: 16,
            ..Default::default()
        },
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind backup shard");
    let backup_addr = backup.local_addr().to_string();
    let hook = tasm_cluster::ReplicatorHook::bootstrap(
        Arc::clone(&primary),
        std::slice::from_ref(&backup_addr),
    )
    .expect("full-sync bootstrap");

    let mut retiled = false;
    for _ in 0..64 {
        if primary
            .observe_regret("v", "car", 0..FRAMES)
            .unwrap()
            .encode
            .bytes_produced
            > 0
        {
            retiled = true;
            break;
        }
    }
    assert!(
        retiled,
        "the regret policy must re-tile the disk-backed primary"
    );
    hook.retiled("v")
        .expect("the hook must replicate the re-tile delta");

    // The backup answers bit-identically to the primary at the new epoch.
    let epoch = primary.current_epoch("v").unwrap();
    assert!(epoch > 0, "the re-tile must advance the layout epoch");
    assert_eq!(
        backup_tasm.current_epoch("v").unwrap(),
        epoch,
        "the backup must sit at the primary's layout epoch after the ack"
    );
    let mut conn = Connection::connect(backup.local_addr()).expect("connect backup");
    for (qi, q) in mix().iter().enumerate() {
        let local = primary.query("v", q).unwrap();
        let remote = conn.query("v", q).expect("backup query");
        assert_eq!(remote.matched, local.matched, "query {qi}: matched");
        assert!(
            regions_match(&local.regions, &remote.regions),
            "query {qi}: backup bytes diverge from the primary"
        );
    }
}

/// R=2 failover: `kill -9` the primary mid-workload (regret daemon
/// re-tiling live) and every subsequent query through the router is
/// bit-identical to a single-node twin at the replicated layout epoch.
#[test]
fn kill9_failover_stays_bit_identical_at_a_replicated_epoch() {
    let video = scene();
    let base = base_dir("failover");
    let mix = mix();

    // In-process references for both epochs, from a serially-driven twin.
    let twin = open_mem(base.join("twin"), tuned_cfg());
    ingest(&twin, &video);
    let ref_pre: Vec<_> = mix.iter().map(|q| twin.query("v", q).unwrap()).collect();
    let mut retiled = false;
    for _ in 0..64 {
        if twin
            .observe_regret("v", "car", 0..FRAMES)
            .unwrap()
            .encode
            .bytes_produced
            > 0
        {
            retiled = true;
            break;
        }
    }
    assert!(retiled, "the twin's regret policy must re-tile");
    let ref_post: Vec<_> = mix.iter().map(|q| twin.query("v", q).unwrap()).collect();
    assert!(
        mix.iter().enumerate().any(|(i, q)| {
            q.query_mode() == QueryMode::Pixels
                && !regions_match(&ref_pre[i].regions, &ref_post[i].regions)
        }),
        "the re-tile must change pixels, or epoch tearing would be invisible"
    );

    // The primary's store on disk — detections in the tiered index — so
    // the child process can attach and serve it.
    {
        let primary = open_store(&base.join("primary"), tuned_cfg());
        ingest(&primary, &video);
        primary.with_index(|ix| ix.flush()).unwrap();
    }

    // The backup shard lives in this process (we fsck it at the end).
    let backup_tasm = open_store(&base.join("backup"), tuned_cfg());
    let backup = TasmServer::bind(
        Arc::clone(&backup_tasm),
        ServiceConfig {
            workers: 2,
            queue_depth: 32,
            ..Default::default()
        },
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind backup shard");
    let backup_addr = backup.local_addr().to_string();

    // The primary shard in a child process, so the kill is a real SIGKILL.
    let addr_file = base.join("child.addr");
    let mut child = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "child_shard_server", "--nocapture"])
        .env(CHILD_STORE_ENV, base.join("primary"))
        .env(CHILD_BACKUP_ENV, &backup_addr)
        .env(CHILD_ADDR_FILE_ENV, &addr_file)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn child shard primary");
    let child_addr = {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if let Ok(addr) = std::fs::read_to_string(&addr_file) {
                break addr;
            }
            assert!(
                Instant::now() < deadline,
                "child shard never published its address"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    // Shard map: R=2, the child pinned primary, the in-process backup
    // second.
    let map_path = base.join("cluster.json");
    let mut map = ShardMap::new(
        vec![
            NodeInfo {
                id: "n1".to_string(),
                addr: child_addr,
            },
            NodeInfo {
                id: "n2".to_string(),
                addr: backup_addr,
            },
        ],
        2,
    )
    .unwrap();
    map.pin("v", vec!["n1".to_string(), "n2".to_string()]);
    map.save(&map_path).unwrap();

    let router = Router::bind(
        RouterConfig {
            map_path,
            shard_io_timeout: Duration::from_secs(5),
            health_interval: Duration::from_millis(100),
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind router");
    let mut conn = Connection::connect(router.local_addr()).expect("connect to router");

    // Pre-kill workload through the router: every result epoch-exact, and
    // keep going until the primary's re-tile has committed *and
    // replicated* — the hook acks before `retile_ops` counts the op, so
    // the merged stats reading it as nonzero proves the backup holds the
    // post-re-tile layout.
    // The retile point is deterministic in *observations* (the regret sums
    // are additive), but the daemon consumes its backlog asynchronously —
    // on a loaded machine it can trail this loop by many passes. So the
    // bound is wall-clock, not pass count: keep the workload flowing until
    // the daemon catches up and the hook acks.
    let mut replicated = false;
    let drive_deadline = Instant::now() + Duration::from_secs(120);
    let mut pass = 0u32;
    while Instant::now() < drive_deadline {
        for (qi, query) in mix.iter().enumerate() {
            let remote = conn.query("v", query).expect("routed query");
            let what = format!("pre-kill pass {pass} query {qi}");
            assert_eq!(remote.matched, ref_pre[qi].matched, "{what}: matched");
            assert!(
                regions_match(&ref_pre[qi].regions, &remote.regions)
                    || regions_match(&ref_post[qi].regions, &remote.regions),
                "{what}: result matches neither epoch's in-process reference"
            );
        }
        pass += 1;
        if conn.stats().expect("router stats fan-out").retile_ops > 0 {
            replicated = true;
            break;
        }
    }
    assert!(
        replicated,
        "the primary's regret daemon must re-tile (and replicate) within \
         {pass} workload passes / 120 s"
    );

    // kill -9 the primary while a workload thread is querying.
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let workload = scope.spawn(|| {
            let mut conn = Connection::connect(router.local_addr()).expect("connect");
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for (qi, query) in mix.iter().enumerate() {
                    let remote = conn.query("v", query).expect("query across the failover");
                    assert_eq!(remote.matched, ref_pre[qi].matched);
                    assert!(
                        regions_match(&ref_pre[qi].regions, &remote.regions)
                            || regions_match(&ref_post[qi].regions, &remote.regions),
                        "mid-failover query {qi} torn: matches neither epoch"
                    );
                    served += 1;
                }
            }
            served
        });
        std::thread::sleep(Duration::from_millis(50));
        child.kill().expect("SIGKILL the primary");
        child.wait().ok();
        // Let the workload straddle the kill: failures on the dead primary
        // retry onto the backup inside the router, invisible to the client.
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        let served = workload.join().expect("workload thread");
        assert!(served > 0, "the workload must have queried across the kill");
    });

    // Every query now lands on the promoted backup, which replication left
    // at the post-re-tile epoch — results must be bit-identical to the
    // twin's post-epoch references, not merely "either epoch".
    for (qi, query) in mix.iter().enumerate() {
        let remote = conn.query("v", query).expect("post-failover query");
        assert_eq!(remote.matched, ref_pre[qi].matched, "query {qi}: matched");
        assert!(
            regions_match(&ref_post[qi].regions, &remote.regions),
            "post-failover query {qi} is not bit-identical to the twin at \
             the replicated epoch"
        );
    }

    let stats = router.stats();
    assert!(stats.retries >= 1, "failover implies replica retries");
    assert!(
        stats.failovers >= 1 && stats.down.contains(&"n1".to_string()),
        "the dead primary must be marked down: {stats:?}"
    );

    // The survivor's store is intact, and the killed store recovers clean
    // on reopen (startup recovery rolls the interrupted state consistent).
    assert!(
        backup_tasm.fsck().unwrap().is_clean(),
        "backup fsck must be clean after serving the failover"
    );
    drop(conn);
    router.shutdown(false);
    backup.shutdown();
    let revived = open_store(&base.join("primary"), tuned_cfg());
    revived.attach("v").expect("reattach after kill");
    assert!(
        revived.fsck().unwrap().is_clean(),
        "the killed primary's store must recover to a clean fsck"
    );
    drop(revived);
    std::fs::remove_dir_all(&base).ok();
}

/// Rebalancing a video between shards mid-workload is invisible: every
/// query through the router — before, during, and after the copy → verify
/// → flip → GC sequence — is bit-identical to the single reference, the
/// source's copy is garbage-collected, and fsck is clean on every node.
#[test]
fn rebalance_mid_workload_is_bit_exact_and_gcs_the_source() {
    let video = scene();
    let base = base_dir("rebalance");
    let mix = mix();

    // Single-epoch reference (daemon off everywhere).
    let twin = open_mem(base.join("twin"), plain_cfg());
    ingest(&twin, &video);
    let reference: Vec<_> = mix.iter().map(|q| twin.query("v", q).unwrap()).collect();

    // Three in-process shards; the video starts on [n1, n2].
    let shard = |tag: &str| {
        let tasm = open_mem(base.join(tag), plain_cfg());
        let server = TasmServer::bind(
            Arc::clone(&tasm),
            ServiceConfig {
                workers: 2,
                queue_depth: 32,
                ..Default::default()
            },
            ServerConfig::default(),
            "127.0.0.1:0",
        )
        .expect("bind shard");
        (tasm, server)
    };
    let (n1_tasm, n1) = shard("n1");
    let (n2_tasm, n2) = shard("n2");
    let (n3_tasm, n3) = shard("n3");
    ingest(&n1_tasm, &video);
    // Seed the R=2 replica on n2 through the wire, as `serve --backup`
    // would.
    let mut seed = Connection::connect(n1.local_addr()).expect("connect n1");
    seed.push_video("v", &n2.local_addr().to_string())
        .expect("seed replica on n2");
    drop(seed);

    let map_path = base.join("cluster.json");
    let mut map = ShardMap::new(
        vec![
            NodeInfo {
                id: "n1".to_string(),
                addr: n1.local_addr().to_string(),
            },
            NodeInfo {
                id: "n2".to_string(),
                addr: n2.local_addr().to_string(),
            },
            NodeInfo {
                id: "n3".to_string(),
                addr: n3.local_addr().to_string(),
            },
        ],
        2,
    )
    .unwrap();
    map.pin("v", vec!["n1".to_string(), "n2".to_string()]);
    map.save(&map_path).unwrap();
    let epoch0 = ShardMap::load(&map_path).unwrap().epoch;

    let router = Router::bind(
        RouterConfig {
            map_path: map_path.clone(),
            health_interval: Duration::from_millis(50),
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind router");

    // Queries flow while the rebalance runs; the flip must never tear or
    // change a result.
    let stop = AtomicBool::new(false);
    let mut report = None;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (mix, reference, stop) = (&mix, &reference, &stop);
                let addr = router.local_addr();
                scope.spawn(move || {
                    let mut conn = Connection::connect(addr).expect("connect");
                    let mut served = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for (qi, query) in mix.iter().enumerate() {
                            let remote = conn
                                .query("v", query)
                                .expect("routed query across rebalance");
                            assert_eq!(remote.matched, reference[qi].matched);
                            assert!(
                                regions_match(&reference[qi].regions, &remote.regions),
                                "query {qi} changed during the rebalance"
                            );
                            served += 1;
                        }
                    }
                    served
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(100));
        report = Some(
            tasm_cluster::rebalance(&map_path, "v", "n3", Duration::from_secs(10))
                .expect("rebalance"),
        );
        // Keep querying across the epoch flip, the router's map reload,
        // and the source GC.
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            let served = w.join().expect("workload thread");
            assert!(served > 0, "workload must straddle the rebalance");
        }
    });
    let report = report.unwrap();
    assert_eq!(report.from.first().map(String::as_str), Some("n1"));
    assert_eq!(report.to.first().map(String::as_str), Some("n3"));
    assert!(report.removed.contains(&"n1".to_string()));

    // The flip is durable and the router routes the new epoch.
    let flipped = ShardMap::load(&map_path).unwrap();
    assert!(flipped.epoch > epoch0, "the flip must bump the map epoch");
    let placed: Vec<_> = flipped
        .placement("v", &Default::default())
        .into_iter()
        .map(|n| n.id.clone())
        .collect();
    assert_eq!(placed, ["n3".to_string(), "n2".to_string()]);
    let deadline = Instant::now() + Duration::from_secs(5);
    while router.stats().map_epoch < flipped.epoch {
        assert!(
            Instant::now() < deadline,
            "router never reloaded the flipped map"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Post-flip queries: still bit-exact, now served by the new primary.
    let mut conn = Connection::connect(router.local_addr()).expect("connect");
    for (qi, query) in mix.iter().enumerate() {
        let remote = conn.query("v", query).expect("post-flip query");
        assert_eq!(remote.matched, reference[qi].matched, "query {qi}: matched");
        assert!(
            regions_match(&reference[qi].regions, &remote.regions),
            "post-flip query {qi} differs from the reference"
        );
    }
    drop(conn);

    // The source's copy is unreferenced after the flip and was GC'd; the
    // target's manifest is byte-identical to the surviving replica's; and
    // every node's store passes fsck.
    assert!(
        n1_tasm.video_names().is_empty(),
        "the source must have GC'd its copy"
    );
    assert_eq!(
        tasm_cluster::manifest_json(&n3_tasm, "v").unwrap(),
        tasm_cluster::manifest_json(&n2_tasm, "v").unwrap(),
        "target and surviving replica must hold byte-identical manifests"
    );
    for (tag, tasm) in [("n1", &n1_tasm), ("n2", &n2_tasm), ("n3", &n3_tasm)] {
        assert!(tasm.fsck().unwrap().is_clean(), "{tag}: fsck must be clean");
    }

    router.shutdown(false);
    n1.shutdown();
    n2.shutdown();
    n3.shutdown();
    std::fs::remove_dir_all(&base).ok();
}
