//! Property tests of the wire protocol: every message type round-trips
//! bit-exactly, and no input — truncated, corrupted, or oversized — can
//! make the decoder panic.

use proptest::run_cases;
use rand::rngs::StdRng;
use rand::Rng;
use tasm_core::{LabelPredicate, PlanStats, Query, QueryMode, RegionPixels, SharedScanStats};
use tasm_proto::{
    ErrorCode, Message, ProtoError, ReplicatedDetection, ReplicationRecord, ResultSummary,
    MAX_FRAME_LEN, VERSION,
};
use tasm_service::{LatencyHistogram, ServiceStats};
use tasm_video::{Frame, Rect};

const CASES: u32 = 96;

fn arb_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| char::from(rng.gen_range(32u32..127) as u8))
        .collect()
}

fn arb_label(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1usize..12);
    (0..len)
        .map(|_| char::from(rng.gen_range(97u32..123) as u8))
        .collect()
}

fn arb_rect(rng: &mut StdRng) -> Rect {
    Rect::new(
        rng.gen_range(0u32..4096),
        rng.gen_range(0u32..4096),
        rng.gen_range(0u32..512),
        rng.gen_range(0u32..512),
    )
}

fn arb_query(rng: &mut StdRng) -> Query {
    let mut predicate: Option<LabelPredicate> = None;
    for _ in 0..rng.gen_range(1usize..4) {
        let labels: Vec<String> = (0..rng.gen_range(1usize..4))
            .map(|_| arb_label(rng))
            .collect();
        let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
        predicate = Some(match predicate {
            None => LabelPredicate::any_of(&refs),
            Some(p) => p.and(&refs),
        });
    }
    let start = rng.gen_range(0u32..10_000);
    let mut q = Query::new(predicate.expect("at least one clause"))
        .frames(start..start + rng.gen_range(1u32..5_000))
        .stride(rng.gen_range(1u32..30))
        .mode(match rng.gen_range(0u32..3) {
            0 => QueryMode::Pixels,
            1 => QueryMode::Count,
            _ => QueryMode::Exists,
        });
    if rng.gen_bool(0.5) {
        q = q.roi(arb_rect(rng));
    }
    if rng.gen_bool(0.5) {
        q = q.limit(rng.gen_range(0u32..100));
    }
    if rng.gen_bool(0.5) {
        q = q.as_of(rng.gen_range(0u64..1_000));
    }
    q
}

fn arb_plan(rng: &mut StdRng) -> PlanStats {
    PlanStats {
        tiles_planned: rng.gen_range(0u64..1_000),
        tiles_pruned: rng.gen_range(0u64..1_000),
        gops_planned: rng.gen_range(0u64..1_000),
        gops_skipped: rng.gen_range(0u64..1_000),
        frames_sampled: rng.gen_range(0u64..1_000),
    }
}

fn arb_region(rng: &mut StdRng) -> RegionPixels {
    let w = rng.gen_range(1u32..16) * 2;
    let h = rng.gen_range(1u32..16) * 2;
    let luma = (w * h) as usize;
    let plane =
        |rng: &mut StdRng, n: usize| (0..n).map(|_| rng.gen_range(0u32..256) as u8).collect();
    let y = plane(rng, luma);
    let u = plane(rng, luma / 4);
    let v = plane(rng, luma / 4);
    RegionPixels {
        frame: rng.gen_range(0u32..100_000),
        rect: arb_rect(rng),
        pixels: Frame::from_planes(w, h, y, u, v).expect("even dims and exact plane lengths"),
    }
}

fn arb_stats(rng: &mut StdRng) -> ServiceStats {
    let mut latency = LatencyHistogram::default();
    for _ in 0..rng.gen_range(0usize..50) {
        latency.record(std::time::Duration::from_micros(
            rng.gen_range(0u64..10_000_000),
        ));
    }
    ServiceStats {
        submitted: rng.gen_range(0u64..1_000_000),
        completed: rng.gen_range(0u64..1_000_000),
        failed: rng.gen_range(0u64..1_000),
        samples_decoded: rng.gen_range(0u64..u32::MAX as u64),
        samples_reused: rng.gen_range(0u64..u32::MAX as u64),
        cache_hits: rng.gen_range(0u64..100_000),
        cache_misses: rng.gen_range(0u64..100_000),
        shared: SharedScanStats {
            owned: rng.gen_range(0u64..100_000),
            joined: rng.gen_range(0u64..100_000),
        },
        plan: arb_plan(rng),
        retile_ops: rng.gen_range(0u64..1_000),
        retile_errors: rng.gen_range(0u64..10),
        queue_peak: rng.gen_range(0u64..512),
        latency,
    }
}

fn arb_error_code(rng: &mut StdRng) -> ErrorCode {
    [
        ErrorCode::Busy,
        ErrorCode::TooManyInflight,
        ErrorCode::TooManyConnections,
        ErrorCode::ShuttingDown,
        ErrorCode::VersionMismatch,
        ErrorCode::Malformed,
        ErrorCode::UnknownVideo,
        ErrorCode::Internal,
        ErrorCode::EpochNotLive,
    ][rng.gen_range(0usize..9)]
}

fn arb_blob(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len + 1);
    (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
}

fn arb_record(rng: &mut StdRng) -> ReplicationRecord {
    match rng.gen_range(0u32..4) {
        0 => ReplicationRecord::StageSot {
            video: arb_label(rng),
            sot_idx: rng.gen_range(0u32..64),
            tiles: (0..rng.gen_range(0usize..5))
                .map(|_| arb_blob(rng, 96))
                .collect(),
        },
        1 => ReplicationRecord::CommitVideo {
            epoch: rng.gen_range(0u64..u32::MAX as u64),
            video: arb_label(rng),
            manifest: arb_blob(rng, 256),
        },
        2 => ReplicationRecord::CommitSot {
            epoch: rng.gen_range(0u64..u32::MAX as u64),
            video: arb_label(rng),
            sot_idx: rng.gen_range(0u32..64),
            manifest: arb_blob(rng, 256),
        },
        _ => ReplicationRecord::IndexState {
            video: arb_label(rng),
            detections: (0..rng.gen_range(0usize..9))
                .map(|_| ReplicatedDetection {
                    label: arb_label(rng),
                    frame: rng.gen_range(0u32..10_000),
                    rect: arb_rect(rng),
                })
                .collect(),
            processed: (0..rng.gen_range(0usize..17))
                .map(|_| rng.gen_range(0u32..10_000))
                .collect(),
        },
    }
}

fn arb_trace(rng: &mut StdRng) -> tasm_proto::QueryTrace {
    tasm_proto::QueryTrace {
        trace_id: rng.gen_range(0u64..u64::MAX),
        instance: arb_string(rng, 32),
        epoch: rng.gen_range(0u64..1_000),
        queue_micros: rng.gen_range(0u64..10_000_000),
        plan_micros: rng.gen_range(0u64..10_000_000),
        decode_micros: rng.gen_range(0u64..10_000_000),
        stream_micros: rng.gen_range(0u64..10_000_000),
        total_micros: rng.gen_range(0u64..40_000_000),
    }
}

/// One arbitrary message, cycling through every variant by case index.
fn arb_message(rng: &mut StdRng, variant: u32) -> Message {
    match variant % 17 {
        0 => Message::ClientHello {
            version: rng.gen_range(0u32..u16::MAX as u32 + 1) as u16,
        },
        1 => Message::ServerHello {
            version: VERSION,
            max_inflight: rng.gen_range(1u32..1_000),
        },
        2 => Message::Query {
            id: rng.gen_range(0u64..u64::MAX),
            video: arb_label(rng),
            query: arb_query(rng),
            trace_id: rng.gen_bool(0.5).then(|| rng.gen_range(0u64..u64::MAX)),
        },
        3 => Message::ResultHeader {
            id: rng.gen_range(0u64..u64::MAX),
            matched: rng.gen_range(0u64..1_000_000),
            regions: rng.gen_range(0u32..100_000),
            plan: arb_plan(rng),
            epoch: rng.gen_range(0u64..1_000),
        },
        4 => Message::Region {
            id: rng.gen_range(0u64..u64::MAX),
            region: arb_region(rng),
        },
        5 => Message::ResultDone {
            id: rng.gen_range(0u64..u64::MAX),
            summary: ResultSummary {
                samples_decoded: rng.gen_range(0u64..u32::MAX as u64),
                samples_reused: rng.gen_range(0u64..u32::MAX as u64),
                cache_hits: rng.gen_range(0u64..100_000),
                cache_misses: rng.gen_range(0u64..100_000),
                shared: SharedScanStats {
                    owned: rng.gen_range(0u64..100_000),
                    joined: rng.gen_range(0u64..100_000),
                },
                lookup_micros: rng.gen_range(0u64..10_000_000),
                exec_micros: rng.gen_range(0u64..10_000_000),
            },
            trace: rng.gen_bool(0.5).then(|| arb_trace(rng)),
        },
        6 => Message::StatsRequest,
        7 => Message::StatsReply {
            stats: Box::new(arb_stats(rng)),
        },
        8 => Message::Error {
            id: rng.gen_bool(0.5).then(|| rng.gen_range(0u64..u64::MAX)),
            code: arb_error_code(rng),
            message: arb_string(rng, 80),
        },
        9 => Message::Goodbye,
        10 => Message::ShutdownServer,
        11 => Message::Replicate {
            seq: rng.gen_range(0u64..u64::MAX),
            record: arb_record(rng),
        },
        12 => Message::ReplicateAck {
            seq: rng.gen_range(0u64..u64::MAX),
        },
        13 => Message::ManifestRequest {
            video: arb_label(rng),
        },
        14 => Message::ManifestReply {
            video: arb_label(rng),
            manifest: arb_blob(rng, 256),
        },
        15 => Message::PushVideo {
            seq: rng.gen_range(0u64..u64::MAX),
            video: arb_label(rng),
            target: arb_string(rng, 24),
        },
        _ => Message::RemoveVideo {
            seq: rng.gen_range(0u64..u64::MAX),
            video: arb_label(rng),
        },
    }
}

/// Round trip: decode(encode(m)) re-encodes to the identical bytes, for
/// every message variant. (Byte equality is the strongest identity the
/// protocol offers and sidesteps `PartialEq` on pixel buffers.)
#[test]
fn every_message_round_trips_bit_exactly() {
    let mut variant = 0u32;
    run_cases(CASES, proptest::seed_for("roundtrip"), |rng| {
        let msg = arb_message(rng, variant);
        variant += 1;
        let payload = msg.encode_payload();
        let decoded = Message::decode_payload(&payload)
            .unwrap_or_else(|e| panic!("decode failed for {msg:?}: {e}"));
        assert_eq!(
            decoded.encode_payload(),
            payload,
            "re-encode diverged for {msg:?}"
        );
    });
}

/// The full frame path (length prefix included) round-trips through a
/// byte stream.
#[test]
fn framed_io_round_trips() {
    let mut variant = 0u32;
    run_cases(CASES, proptest::seed_for("framed"), |rng| {
        let msg = arb_message(rng, variant);
        variant += 1;
        let mut wire = Vec::new();
        msg.write_to(&mut wire).expect("write to Vec");
        let mut cursor = std::io::Cursor::new(wire);
        let decoded = Message::read_from(&mut cursor).expect("read back");
        assert_eq!(decoded.encode_payload(), msg.encode_payload());
    });
}

/// Every strict prefix of every valid payload decodes to a typed error —
/// never a panic, never a silent success.
#[test]
fn truncated_payloads_fail_with_typed_errors() {
    let mut variant = 0u32;
    run_cases(CASES, proptest::seed_for("truncate"), |rng| {
        let msg = arb_message(rng, variant);
        variant += 1;
        let payload = msg.encode_payload();
        // Exhaustive for small payloads, sampled for pixel-bearing ones.
        let cuts: Vec<usize> = if payload.len() <= 64 {
            (0..payload.len()).collect()
        } else {
            (0..64)
                .map(|_| rng.gen_range(0usize..payload.len()))
                .collect()
        };
        for cut in cuts {
            assert!(
                Message::decode_payload(&payload[..cut]).is_err(),
                "prefix of len {cut}/{} decoded for {msg:?}",
                payload.len()
            );
        }
    });
}

/// Arbitrary byte flips never panic the decoder: they decode to some
/// message or fail with a typed error.
#[test]
fn corrupted_payloads_never_panic() {
    let mut variant = 0u32;
    run_cases(CASES, proptest::seed_for("corrupt"), |rng| {
        let msg = arb_message(rng, variant);
        variant += 1;
        let mut payload = msg.encode_payload();
        for _ in 0..8 {
            let at = rng.gen_range(0usize..payload.len());
            payload[at] ^= rng.gen_range(1u32..256) as u8;
        }
        let _ = Message::decode_payload(&payload); // must not panic
    });
}

/// Garbage streams fail the frame reader with typed errors, including the
/// oversized-length guard that bounds what a corrupt prefix can allocate.
#[test]
fn garbage_streams_are_rejected() {
    run_cases(CASES, proptest::seed_for("garbage"), |rng| {
        let len = rng.gen_range(0usize..64);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let mut cursor = std::io::Cursor::new(garbage);
        let _ = Message::read_from(&mut cursor); // must not panic
    });
    // A length prefix past the cap is refused before allocation.
    let huge = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    let mut cursor = std::io::Cursor::new(huge);
    assert!(matches!(
        Message::read_from(&mut cursor),
        Err(ProtoError::Oversized(_))
    ));
}

/// Unknown message tags are typed errors.
#[test]
fn unknown_tags_are_typed_errors() {
    for bad_tag in [0x00u8, 0x12, 0x7f, 0xff] {
        assert!(matches!(
            Message::decode_payload(&[bad_tag]),
            Err(ProtoError::UnknownMessage(_))
        ));
    }
}

/// Semantic spot checks: the decoded query preserves every clause of the
/// surface the planner sees.
#[test]
fn query_fields_survive_the_wire() {
    let query = Query::new(LabelPredicate::any_of(&["car", "bus"]).and(&["red"]))
        .frames(30..900)
        .roi(Rect::new(10, 20, 300, 200))
        .stride(7)
        .limit(12)
        .mode(QueryMode::Count)
        .as_of(3);
    let msg = Message::Query {
        id: 42,
        video: "traffic".to_string(),
        query: query.clone(),
        trace_id: Some(0xFEED_F00D),
    };
    let Message::Query {
        id,
        video,
        query: decoded,
        trace_id,
    } = Message::decode_payload(&msg.encode_payload()).expect("decode")
    else {
        panic!("wrong variant");
    };
    assert_eq!(id, 42);
    assert_eq!(video, "traffic");
    assert_eq!(decoded, query);
    assert_eq!(trace_id, Some(0xFEED_F00D));
}

/// The per-query trace attached to ResultDone — id, instance tag, epoch,
/// and every phase duration — survives the wire bit-exactly, with and
/// without the optional field present.
#[test]
fn query_traces_survive_the_wire() {
    run_cases(CASES, proptest::seed_for("traces"), |rng| {
        let trace = rng.gen_bool(0.75).then(|| arb_trace(rng));
        let msg = Message::ResultDone {
            id: rng.gen_range(0u64..u64::MAX),
            summary: ResultSummary::default(),
            trace: trace.clone(),
        };
        let Message::ResultDone { trace: decoded, .. } =
            Message::decode_payload(&msg.encode_payload()).expect("decode")
        else {
            panic!("wrong variant");
        };
        assert_eq!(decoded, trace);
    });
}

/// Malformed query bodies (empty predicate) are refused, matching the
/// builder's own invariants.
#[test]
fn empty_predicates_are_refused() {
    // Hand-build a query frame with zero clauses.
    let mut w = tasm_proto::Writer::new();
    w.u8(0x03); // query tag
    w.u64(1);
    w.str("v");
    w.u16(0); // zero clauses
    assert!(matches!(
        Message::decode_payload(&w.into_bytes()),
        Err(ProtoError::Malformed(_))
    ));
}

/// The stats snapshot — histogram included — survives the wire with its
/// percentiles intact.
#[test]
fn stats_percentiles_survive_the_wire() {
    run_cases(16, proptest::seed_for("stats"), |rng| {
        let stats = arb_stats(rng);
        let msg = Message::StatsReply {
            stats: Box::new(stats),
        };
        let Message::StatsReply { stats: decoded } =
            Message::decode_payload(&msg.encode_payload()).expect("decode")
        else {
            panic!("wrong variant");
        };
        assert_eq!(decoded.latency, stats.latency);
        assert_eq!(decoded.latency.p50(), stats.latency.p50());
        assert_eq!(decoded.latency.p99(), stats.latency.p99());
        assert_eq!(decoded.completed, stats.completed);
    });
}
