//! Crash-safety tests of the storage layer: the deterministic crash-point
//! sweep over the re-tile commit protocol, torn-write regressions for the
//! manifest, ingest cleanup, fsck, and kill-and-reattach under a live
//! query service.
//!
//! The sweep is the core property: for *every* injectable fault point in a
//! re-tile (fail-stop and torn-write at each mutating I/O operation),
//! reopening the store must recover to a state **bit-identical to exactly
//! one of the two layout epochs** — wholly pre-retile or wholly
//! post-retile, never a mix — and `fsck` must report it clean.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use tasm_codec::TileLayout;
use tasm_core::durable::{FaultIo, FaultKind};
use tasm_core::{
    LabelPredicate, PartitionConfig, RecoveryAction, StorageConfig, StoreError, Tasm, TasmConfig,
    VideoStore,
};
use tasm_index::MemoryIndex;
use tasm_service::{QueryRequest, QueryService, RetilePolicy, ServiceConfig, Shutdown};
use tasm_video::{Frame, Plane, Rect, VecFrameSource};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tasm-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small deterministic 64x64 source with texture and a moving patch.
fn test_source(frames: u32) -> VecFrameSource {
    VecFrameSource::new(
        (0..frames)
            .map(|i| {
                let mut f = Frame::filled(64, 64, 90, 128, 128);
                for y in 0..64 {
                    for x in 0..64 {
                        f.set_sample(Plane::Y, x, y, ((x * 3 + y * 5 + i * 2) % 200 + 20) as u8);
                    }
                }
                f.fill_rect(Rect::new((i * 4) % 48, 16, 16, 16), 230, 90, 160);
                f
            })
            .collect(),
    )
}

fn small_cfg() -> StorageConfig {
    StorageConfig {
        gop_len: 5,
        sot_frames: 10,
        parallel_encode: false,
        ..Default::default()
    }
}

/// Every file under `dir`, keyed by store-relative path. Bit-level equality
/// of two snapshots is the "same epoch" relation the sweep asserts.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(base: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(base, &path, out);
            } else {
                let rel = path
                    .strip_prefix(base)
                    .expect("under base")
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).expect("read file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

/// Recreates `dir` to hold exactly the files of `snap`.
fn restore(snap: &BTreeMap<String, Vec<u8>>, dir: &Path) {
    let _ = fs::remove_dir_all(dir);
    for (rel, bytes) in snap {
        let path = dir.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, bytes).expect("write");
    }
}

/// Human-readable first divergence between a recovered state and the two
/// epoch snapshots, for sweep failure messages.
fn describe_divergence(
    got: &BTreeMap<String, Vec<u8>>,
    pre: &BTreeMap<String, Vec<u8>>,
    post: &BTreeMap<String, Vec<u8>>,
) -> String {
    let diff = |name: &str, reference: &BTreeMap<String, Vec<u8>>| -> String {
        let missing: Vec<&String> = reference.keys().filter(|k| !got.contains_key(*k)).collect();
        let extra: Vec<&String> = got.keys().filter(|k| !reference.contains_key(*k)).collect();
        let changed: Vec<&String> = reference
            .iter()
            .filter(|(k, v)| got.get(*k).is_some_and(|g| g != *v))
            .map(|(k, _)| k)
            .collect();
        format!("vs {name}: missing {missing:?}, extra {extra:?}, changed {changed:?}")
    };
    format!("{}; {}", diff("pre", pre), diff("post", post))
}

/// The crash-point sweep (acceptance criterion): run the same re-tile once
/// per injectable fault point — fail-stop *and* torn-write at every
/// mutating operation of the commit protocol — and assert that reopening
/// the store recovers to a state bit-identical to exactly the pre-retile
/// or the post-retile epoch, with `fsck` clean either way.
#[test]
fn crash_point_sweep_recovers_to_exactly_one_epoch() {
    // Epoch A: a one-SOT untiled video.
    let base = temp_dir("sweep-base");
    let store = VideoStore::open(&base).expect("open base");
    let src = test_source(10);
    store
        .ingest("v", &src, 30, small_cfg(), |_, _| {
            TileLayout::untiled(64, 64)
        })
        .expect("ingest");
    drop(store);
    let pre = snapshot(&base);

    // Epoch B: the same store after a clean 4x4 re-tile, run through a
    // disarmed fault injector so we also learn the exact number of
    // mutating operations the protocol performs.
    let new_layout = TileLayout::uniform(64, 64, 4, 4).expect("layout");
    let clean = temp_dir("sweep-clean");
    restore(&pre, &clean);
    let counter = FaultIo::new();
    let store = VideoStore::open_with_io(&clean, 0, 0, counter.clone()).expect("open clean");
    let mut manifest = store.load_manifest("v").expect("manifest");
    let ops_before = counter.mutating_ops();
    store
        .retile(&mut manifest, 0, new_layout.clone())
        .expect("clean retile");
    let total_ops = counter.mutating_ops() - ops_before;
    drop(store);
    let post = snapshot(&clean);
    assert!(
        total_ops >= 20,
        "the protocol must expose at least 20 distinct fault points, got {total_ops}"
    );
    assert_ne!(pre, post, "the re-tile must actually change the store");

    let scratch = temp_dir("sweep-scratch");
    let (mut recovered_pre, mut recovered_post) = (0u64, 0u64);
    for kind in [FaultKind::FailStop, FaultKind::TornWrite] {
        for n in 1..=total_ops {
            restore(&pre, &scratch);
            let fault = FaultIo::new();
            let store =
                VideoStore::open_with_io(&scratch, 0, 0, fault.clone()).expect("open faulted");
            let mut manifest = store.load_manifest("v").expect("manifest");
            fault.arm(fault.mutating_ops() + n, kind);
            let result = store.retile(&mut manifest, 0, new_layout.clone());
            assert!(
                result.is_err(),
                "{kind:?} at op {n} must surface as an error"
            );
            assert!(fault.crashed(), "{kind:?} at op {n} must have fired");
            drop(store);

            // Reopen with real I/O: startup recovery runs.
            let store = VideoStore::open(&scratch).expect("reopen after crash");
            let fsck = store.fsck().expect("fsck runs");
            assert!(
                fsck.is_clean(),
                "{kind:?} at op {n}: fsck found {:?} (recovery did {:?})",
                fsck.issues,
                store.recovery_report().actions
            );
            assert!(
                fsck.tiles_checked > 0,
                "{kind:?} at op {n}: nothing checked"
            );
            drop(store);

            let got = snapshot(&scratch);
            if got == pre {
                recovered_pre += 1;
            } else if got == post {
                recovered_post += 1;
            } else {
                panic!(
                    "{kind:?} at op {n}: recovered state matches neither epoch: {}",
                    describe_divergence(&got, &pre, &post)
                );
            }
        }
    }
    // The sweep must have crossed the commit point: some fault points land
    // before it (pre-retile epoch survives) and some after (the re-tile
    // completes at recovery).
    assert!(recovered_pre > 0, "no fault point rolled back");
    assert!(recovered_post > 0, "no fault point rolled forward");
    fs::remove_dir_all(&base).ok();
    fs::remove_dir_all(&clean).ok();
    fs::remove_dir_all(&scratch).ok();
}

/// The crash-point sweep over MVCC epoch GC: fail-stop and torn-write at
/// every mutating I/O operation of `gc_epoch` (the reclamation that runs
/// when a pinned epoch's last reader drains). Recovery must always land in
/// exactly one epoch set — the one the manifest references, with the
/// retired epoch fully reclaimed — and fsck must be clean.
///
/// A crashed GC cannot roll *back* (the retile already committed; the
/// retired directory is unreferenced residue), so recovery converges on
/// the post-GC state from every fault point: startup reclaims superseded
/// epoch directories the same way a completed GC would have.
#[test]
fn epoch_gc_crash_sweep_recovers_to_exactly_one_epoch_set() {
    // Base state: a one-SOT untiled video, cleanly ingested.
    let base = temp_dir("gc-sweep-base");
    let store = VideoStore::open(&base).expect("open base");
    let src = test_source(10);
    store
        .ingest("v", &src, 30, small_cfg(), |_, _| {
            TileLayout::untiled(64, 64)
        })
        .expect("ingest");
    drop(store);
    let ingested = snapshot(&base);
    let new_layout = TileLayout::uniform(64, 64, 2, 2).expect("layout");

    // Clean run: a deferred re-tile (the retired epoch's directory stays,
    // as if a reader still pinned it) followed by its GC. Count the GC's
    // own mutating operations and capture the post-GC state.
    let clean = temp_dir("gc-sweep-clean");
    restore(&ingested, &clean);
    let counter = FaultIo::new();
    let store = VideoStore::open_with_io(&clean, 0, 0, counter.clone()).expect("open clean");
    let mut manifest = store.load_manifest("v").expect("manifest");
    let (_, retired) = store
        .retile_deferred(&mut manifest, 0, new_layout.clone())
        .expect("clean deferred retile");
    let retired = retired.expect("a layout change must retire an epoch");
    assert!(
        clean.join("v").join("sot_000000_000010").exists(),
        "deferred mode must leave the retired epoch's directory"
    );
    let ops_before = counter.mutating_ops();
    store.gc_epoch("v", retired).expect("clean gc");
    let gc_ops = counter.mutating_ops() - ops_before;
    drop(store);
    assert!(
        gc_ops >= 2,
        "epoch GC must expose at least its remove and dir-sync as fault points, got {gc_ops}"
    );
    assert!(!clean.join("v").join("sot_000000_000010").exists());
    let post = snapshot(&clean);

    let scratch = temp_dir("gc-sweep-scratch");
    let mut reclaimed_by_recovery = 0u32;
    for kind in [FaultKind::FailStop, FaultKind::TornWrite] {
        for n in 1..=gc_ops {
            restore(&ingested, &scratch);
            let fault = FaultIo::new();
            let store =
                VideoStore::open_with_io(&scratch, 0, 0, fault.clone()).expect("open faulted");
            let mut manifest = store.load_manifest("v").expect("manifest");
            // The re-tile itself runs clean; the crash lands inside GC.
            let (_, retired) = store
                .retile_deferred(&mut manifest, 0, new_layout.clone())
                .expect("deferred retile");
            let retired = retired.expect("retired epoch");
            fault.arm(fault.mutating_ops() + n, kind);
            assert!(
                store.gc_epoch("v", retired).is_err(),
                "{kind:?} at gc op {n} must surface as an error"
            );
            assert!(fault.crashed(), "{kind:?} at gc op {n} must have fired");
            drop(store);

            // Reopen with real I/O: startup recovery reclaims whatever the
            // crashed GC left of the superseded epoch.
            let store = VideoStore::open(&scratch).expect("reopen after crashed gc");
            if store
                .recovery_report()
                .actions
                .iter()
                .any(|a| matches!(a, RecoveryAction::ReclaimedEpoch { video, .. } if video == "v"))
            {
                reclaimed_by_recovery += 1;
            }
            let fsck = store.fsck().expect("fsck runs");
            assert!(
                fsck.is_clean(),
                "{kind:?} at gc op {n}: fsck found {:?} (recovery did {:?})",
                fsck.issues,
                store.recovery_report().actions
            );
            drop(store);

            let got = snapshot(&scratch);
            assert!(
                got == post,
                "{kind:?} at gc op {n}: recovery must land in the post-GC epoch set: {}",
                describe_divergence(&got, &ingested, &post)
            );
        }
    }
    assert!(
        reclaimed_by_recovery > 0,
        "at least one fault point must leave the whole retired epoch for recovery to reclaim"
    );
    fs::remove_dir_all(&base).ok();
    fs::remove_dir_all(&clean).ok();
    fs::remove_dir_all(&scratch).ok();
}

/// Regression for the non-atomic `save_manifest`: a torn write must never
/// reach `manifest.json`, and the interrupted temp file is reaped at the
/// next open.
#[test]
fn torn_manifest_write_leaves_old_manifest_intact() {
    let dir = temp_dir("torn-manifest");
    let store = VideoStore::open(&dir).expect("open");
    let src = test_source(10);
    store
        .ingest("v", &src, 30, small_cfg(), |_, _| {
            TileLayout::untiled(64, 64)
        })
        .expect("ingest");
    drop(store);
    let manifest_path = dir.join("v").join("manifest.json");
    let original = fs::read(&manifest_path).expect("manifest on disk");

    // Tear the manifest rewrite mid-write.
    let fault = FaultIo::new();
    let store = VideoStore::open_with_io(&dir, 0, 0, fault.clone()).expect("open faulted");
    let mut manifest = store.load_manifest("v").expect("manifest");
    manifest.fps = 60;
    fault.arm(fault.mutating_ops() + 1, FaultKind::TornWrite);
    assert!(matches!(
        store.save_manifest(&manifest),
        Err(StoreError::Io(_))
    ));
    drop(store);
    assert_eq!(
        fs::read(&manifest_path).expect("manifest still on disk"),
        original,
        "a torn write must never touch the published manifest"
    );
    assert!(
        dir.join("v").join("manifest.json.tmp").exists(),
        "the torn temp file is what the crash left behind"
    );

    // Recovery reaps the temp file; the old manifest still reads.
    let store = VideoStore::open(&dir).expect("reopen");
    assert!(store
        .recovery_report()
        .actions
        .iter()
        .any(|a| matches!(a, RecoveryAction::RemovedTemp { video, .. } if video == "v")));
    assert!(!dir.join("v").join("manifest.json.tmp").exists());
    assert_eq!(store.load_manifest("v").expect("manifest").fps, 30);
    assert!(store.fsck().expect("fsck").is_clean());
    // Release the store lock: a live handle would (correctly) make the
    // openers below defer recovery.
    drop(store);

    // Fail-stop between temp write and rename: same outcome, the fully
    // written temp file is still not the published manifest.
    let fault = FaultIo::new();
    let store2 = VideoStore::open_with_io(&dir, 0, 0, fault.clone()).expect("open faulted");
    let mut manifest = store2.load_manifest("v").expect("manifest");
    manifest.fps = 90;
    fault.arm(fault.mutating_ops() + 2, FaultKind::FailStop);
    assert!(store2.save_manifest(&manifest).is_err());
    drop(store2);
    assert_eq!(fs::read(&manifest_path).expect("manifest"), original);
    let store = VideoStore::open(&dir).expect("reopen again");
    assert_eq!(store.load_manifest("v").expect("manifest").fps, 30);
    assert!(store.fsck().expect("fsck").is_clean());
    fs::remove_dir_all(&dir).ok();
}

/// A graceful mid-ingest failure (bad layout for a later SOT) must remove
/// the partially written video directory instead of leaving orphan `.tvf`
/// files behind.
#[test]
fn failed_ingest_cleans_up_partial_video() {
    let dir = temp_dir("ingest-cleanup");
    let store = VideoStore::open(&dir).expect("open");
    let src = test_source(20); // two SOTs of 10
    let result = store.ingest("v", &src, 30, small_cfg(), |sot, _| {
        if sot == 0 {
            TileLayout::untiled(64, 64)
        } else {
            TileLayout::untiled(32, 32) // does not cover the frame: SOT 1 fails
        }
    });
    assert!(matches!(result, Err(StoreError::Layout(_))));
    assert!(
        !dir.join("v").exists(),
        "partial video directory must be removed"
    );
    assert!(matches!(
        store.load_manifest("v"),
        Err(StoreError::NotFound(_))
    ));
    assert!(store.fsck().expect("fsck").is_clean());
    fs::remove_dir_all(&dir).ok();
}

/// A *crash* mid-ingest cannot clean up (every further I/O fails, as after
/// `kill -9`), so the orphan directory survives until the next open, where
/// recovery removes it because it never gained a manifest.
#[test]
fn crashed_ingest_is_reaped_at_next_open() {
    let dir = temp_dir("ingest-crash");
    let fault = FaultIo::new();
    let store = VideoStore::open_with_io(&dir, 0, 0, fault.clone()).expect("open");
    let src = test_source(20);
    // Ops: video dir create, SOT0 dir create, SOT0 tile, SOT1 dir create,
    // SOT1 tile… — crash on the SOT1 tile write.
    fault.arm(fault.mutating_ops() + 5, FaultKind::TornWrite);
    assert!(store
        .ingest("v", &src, 30, small_cfg(), |_, _| TileLayout::untiled(
            64, 64
        ))
        .is_err());
    drop(store);
    assert!(
        dir.join("v").exists(),
        "a crashed process cannot have cleaned up"
    );

    let store = VideoStore::open(&dir).expect("reopen");
    assert!(store
        .recovery_report()
        .actions
        .iter()
        .any(|a| matches!(a, RecoveryAction::RemovedPartialVideo { video } if video == "v")));
    assert!(!dir.join("v").exists(), "recovery reaps the orphan");
    assert!(matches!(
        store.load_manifest("v"),
        Err(StoreError::NotFound(_))
    ));
    assert!(store.fsck().expect("fsck").is_clean());
    fs::remove_dir_all(&dir).ok();
}

/// fsck detects what recovery cannot: silent corruption of tile files and
/// entries the manifest does not account for.
#[test]
fn fsck_detects_corruption_and_strays() {
    let dir = temp_dir("fsck");
    let store = VideoStore::open(&dir).expect("open");
    let src = test_source(10);
    let layout = TileLayout::uniform(64, 64, 2, 2).expect("layout");
    store
        .ingest("v", &src, 30, small_cfg(), move |_, _| layout.clone())
        .expect("ingest");
    assert!(store.fsck().expect("fsck").is_clean());
    assert!(store.fsck_video("v").expect("fsck v").is_clean());
    assert!(matches!(
        store.fsck_video("nope"),
        Err(StoreError::NotFound(_))
    ));

    let sot_dir = dir.join("v").join("sot_000000_000010");
    let tile0 = sot_dir.join("tile_000.tvf");

    // Torn tail.
    let original = fs::read(&tile0).expect("tile bytes");
    fs::write(&tile0, &original[..original.len() - 3]).expect("truncate");
    let report = store.fsck().expect("fsck");
    assert!(
        report
            .issues
            .iter()
            .any(|i| matches!(i, tasm_core::FsckIssue::TileCorrupt { tile: 0, .. })),
        "torn tail must be flagged, got {:?}",
        report.issues
    );

    // Bit-flipped header (width field).
    let mut flipped = original.clone();
    flipped[5] ^= 0xff;
    fs::write(&tile0, &flipped).expect("flip");
    let report = store.fsck().expect("fsck");
    assert!(!report.is_clean(), "flipped header must be flagged");

    // Restore, then drop strays in both directories.
    fs::write(&tile0, &original).expect("restore");
    fs::write(sot_dir.join("notes.txt"), b"?").expect("stray");
    fs::write(dir.join("v").join("commit_sot_000000_000010.json"), b"{")
        .expect("stray commit-lookalike");
    let report = store.fsck().expect("fsck");
    let strays = report
        .issues
        .iter()
        .filter(|i| {
            matches!(i, tasm_core::FsckIssue::TileMismatch { .. })
                || matches!(i, tasm_core::FsckIssue::Stray { .. })
        })
        .count();
    assert!(strays >= 2, "both strays flagged, got {:?}", report.issues);

    // A *missing* tile is its own issue class.
    fs::remove_file(sot_dir.join("notes.txt")).expect("cleanup stray");
    fs::remove_file(&tile0).expect("remove tile");
    let report = store.fsck_video("v").expect("fsck v");
    assert!(report
        .issues
        .iter()
        .any(|i| matches!(i, tasm_core::FsckIssue::MissingTile { tile: 0, .. })));
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Kill-and-reattach under a live service
// ---------------------------------------------------------------------

/// A 128x96 source with a moving "car" and a static "person", matching the
/// deterministic ground truth `populate_truth` records.
fn service_source(frames: u32) -> VecFrameSource {
    VecFrameSource::new(
        (0..frames)
            .map(|i| {
                let mut f = Frame::filled(128, 96, 90, 128, 128);
                for y in 0..96 {
                    for x in 0..128 {
                        f.set_sample(Plane::Y, x, y, ((x * 3 + y * 7) % 180 + 30) as u8);
                    }
                }
                f.fill_rect(Rect::new((i * 2) % 96, 8, 24, 16), 220, 90, 170);
                f.fill_rect(Rect::new(96, 64, 12, 24), 60, 170, 90);
                f
            })
            .collect(),
    )
}

fn service_cfg() -> TasmConfig {
    TasmConfig {
        storage: StorageConfig {
            gop_len: 5,
            sot_frames: 10,
            parallel_encode: false,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 16,
            ..Default::default()
        },
        // A tiny regret threshold so the daemon re-tiles within a few
        // observations — the crash must land mid-re-tile.
        eta: 0.05,
        workers: 2,
        cache_bytes: 32 << 20,
        ..Default::default()
    }
}

fn populate_truth(t: &Tasm, frames: u32) {
    for i in 0..frames {
        t.add_metadata("v", "car", i, Rect::new((i * 2) % 96, 8, 24, 16))
            .unwrap();
        t.add_metadata("v", "person", i, Rect::new(96, 64, 12, 24))
            .unwrap();
        t.mark_processed("v", i).unwrap();
    }
}

/// Kill-and-reattach: crash the storage layer while the regret daemon and
/// 4 query workers are live, reopen the store (recovery), and verify that
/// post-recovery queries are bit-identical to a serially-driven twin
/// brought to the same per-SOT layouts.
#[test]
fn kill_and_reattach_matches_serially_driven_twin() {
    const FRAMES: u32 = 40;
    let dir = temp_dir("kill-reattach");
    let fault = FaultIo::new();
    let tasm = Arc::new(
        Tasm::open_with_io(
            &dir,
            Box::new(MemoryIndex::in_memory()),
            service_cfg(),
            fault.clone(),
        )
        .expect("open"),
    );
    let src = service_source(FRAMES);
    tasm.ingest("v", &src, 30).expect("ingest");
    populate_truth(&tasm, FRAMES);

    let service = QueryService::start(
        Arc::clone(&tasm),
        ServiceConfig {
            workers: 4,
            queue_depth: 16,
            retile: RetilePolicy::Regret,
            retile_interval: Duration::from_millis(2),
            slow_query: None,
            ..Default::default()
        },
    );
    // The next mutating I/O comes from the daemon's re-tiles; land the
    // crash in the middle of one (op 7 of a ~10-op commit sequence).
    fault.arm(fault.mutating_ops() + 7, FaultKind::TornWrite);

    let windows = [0u32..10, 10..20, 20..30, 30..40];
    let mut submitted = 0u32;
    'drive: for round in 0..200 {
        let handles: Vec<_> = windows
            .iter()
            .filter_map(|w| {
                service
                    .try_submit(QueryRequest::scan(
                        "v",
                        LabelPredicate::label(if round % 3 == 0 { "person" } else { "car" }),
                        w.clone(),
                    ))
                    .ok()
            })
            .collect();
        submitted += handles.len() as u32;
        for h in handles {
            let _ = h.wait(); // post-crash queries fail; both are fine
        }
        if fault.crashed() {
            // Let the daemon run into the dead I/O a little longer so its
            // error accounting is observable, then stop driving.
            std::thread::sleep(Duration::from_millis(10));
            break 'drive;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        fault.crashed(),
        "the regret daemon never re-tiled ({submitted} queries submitted)"
    );
    let report = service.shutdown(Shutdown::Drain);
    assert!(
        report.stats.retile_ops > 0 || report.stats.retile_errors > 0,
        "the daemon must have attempted re-tiles"
    );
    drop(tasm);

    // "Restart": reopen the store on real I/O — recovery resolves the
    // interrupted re-tile to one epoch — and reattach the video.
    let recovered = Tasm::open(&dir, Box::new(MemoryIndex::in_memory()), service_cfg())
        .expect("reopen after kill");
    recovered.attach("v").expect("reattach");
    populate_truth(&recovered, FRAMES);
    assert!(recovered.fsck().expect("fsck").is_clean());
    let recovered_manifest = recovered.manifest("v").expect("manifest");

    // The twin is driven serially on clean I/O to the exact per-SOT
    // layouts recovery settled on; transcodes are deterministic, so every
    // query must then be bit-identical.
    let twin_dir = temp_dir("kill-reattach-twin");
    let twin = Tasm::open(&twin_dir, Box::new(MemoryIndex::in_memory()), service_cfg())
        .expect("open twin");
    twin.ingest("v", &src, 30).expect("twin ingest");
    populate_truth(&twin, FRAMES);
    for (sot_idx, sot) in recovered_manifest.sots.iter().enumerate() {
        let twin_layout = twin.manifest("v").expect("twin manifest").sots[sot_idx]
            .layout
            .clone();
        if twin_layout != sot.layout {
            twin.retile("v", sot_idx, sot.layout.clone())
                .expect("twin retile");
        }
    }

    for label in ["car", "person"] {
        for window in [0u32..10, 10..20, 20..30, 30..40, 0..40] {
            let a = recovered
                .scan("v", &LabelPredicate::label(label), window.clone())
                .expect("recovered scan");
            let b = twin
                .scan("v", &LabelPredicate::label(label), window.clone())
                .expect("twin scan");
            let expected: Vec<&tasm_core::RegionPixels> = b.regions.iter().collect();
            tasm_suite::assert_regions_identical(
                &expected,
                &a.regions,
                &format!("'{label}' over {window:?} after recovery"),
            );
        }
    }
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&twin_dir).ok();
}

/// While one handle holds the store lock (a live server), a second opener
/// (e.g. `tasm fsck` against a running `tasm serve`) must not run mutating
/// recovery — deleting what looks like crash residue would corrupt the
/// live handle's in-flight re-tile.
#[test]
fn second_opener_defers_recovery_while_store_is_live() {
    let dir = temp_dir("live-lock");
    let live = VideoStore::open(&dir).expect("open live handle");
    let src = test_source(10);
    live.ingest("v", &src, 30, small_cfg(), |_, _| {
        TileLayout::untiled(64, 64)
    })
    .expect("ingest");

    // What an in-flight re-tile of the live handle looks like on disk.
    let staging = dir.join("v").join("staging_sot_000000_000010");
    fs::create_dir_all(&staging).expect("staging");
    fs::write(staging.join("tile_000.tvf"), b"in flight").expect("tile");

    let second = VideoStore::open(&dir).expect("second opener");
    assert!(second.recovery_report().deferred, "lock is held: no repair");
    assert!(second.recovery_report().is_clean());
    assert!(staging.exists(), "the live re-tile must survive");
    // A deferred fsck treats the live handle's protocol state (staging,
    // commit records, temps) as in-flight, not as corruption.
    let fsck = second.fsck().expect("fsck on live store");
    assert!(fsck.is_clean(), "live staging flagged: {:?}", fsck.issues);
    drop(second);
    assert!(staging.exists());

    // Once the live handle is gone the next open recovers normally.
    drop(live);
    let fresh = VideoStore::open(&dir).expect("reopen after shutdown");
    assert!(!fresh.recovery_report().deferred);
    assert!(fresh
        .recovery_report()
        .actions
        .iter()
        .any(|a| matches!(a, RecoveryAction::RolledBack { sot_start: 0, .. })));
    assert!(!staging.exists());
    assert!(fresh.fsck().expect("fsck").is_clean());
    fs::remove_dir_all(&dir).ok();
}

/// A commit record surviving a transiently failed completion must be
/// finished before a later re-tile of the same video commits — otherwise
/// the next open would roll the stale record forward and erase the later
/// re-tile's manifest entry while its tile files remain.
#[test]
fn pending_commit_record_is_finished_before_a_new_retile() {
    let dir = temp_dir("pending-commit");
    let store = VideoStore::open(&dir).expect("open");
    let src = test_source(20); // two SOTs of 10
    store
        .ingest("v", &src, 30, small_cfg(), |_, _| {
            TileLayout::untiled(64, 64)
        })
        .expect("ingest");
    let mut manifest = store.load_manifest("v").expect("manifest");
    let sot0_layout = TileLayout::uniform(64, 64, 2, 2).expect("layout");
    store
        .retile(&mut manifest, 0, sot0_layout.clone())
        .expect("retile SOT 0");

    // Plant what a post-commit transient failure leaves behind: a commit
    // record for SOT 0 whose manifest snapshot is the current on-disk
    // manifest (SOT 0 tiled, SOT 1 untiled).
    let manifest_json =
        String::from_utf8(fs::read(dir.join("v").join("manifest.json")).expect("manifest bytes"))
            .expect("utf8");
    let record = format!("{{\"sot_start\": 0, \"sot_end\": 10, \"manifest\": {manifest_json}}}");
    let record_path = dir.join("v").join("commit_sot_000000_000010.json");
    fs::write(&record_path, record).expect("plant record");

    // A later re-tile of SOT 1 through the same handle must finish the
    // pending record first, then commit — never stack a second record on
    // top of the survivor.
    let sot1_layout = TileLayout::uniform(64, 64, 1, 2).expect("layout");
    store
        .retile(&mut manifest, 1, sot1_layout.clone())
        .expect("retile SOT 1");
    assert!(!record_path.exists(), "survivor record must be completed");

    // Both layouts survive in the manifest, on disk and after reopen.
    let reloaded = store.load_manifest("v").expect("reload");
    assert_eq!(reloaded.sots[0].layout, sot0_layout);
    assert_eq!(reloaded.sots[1].layout, sot1_layout);
    drop(store);
    let store = VideoStore::open(&dir).expect("reopen");
    assert!(
        store.recovery_report().is_clean(),
        "nothing left to recover: {:?}",
        store.recovery_report().actions
    );
    let fsck = store.fsck().expect("fsck");
    assert!(fsck.is_clean(), "{:?}", fsck.issues);
    let recovered = store.load_manifest("v").expect("manifest after reopen");
    assert_eq!(recovered.sots[0].layout, sot0_layout);
    assert_eq!(recovered.sots[1].layout, sot1_layout);
    fs::remove_dir_all(&dir).ok();
}

/// Recovery only reaps directories that are recognizably the store's own
/// (tile residue or empty): a foreign directory — the store opened at a
/// wrong or shared path — is never deleted, even without a manifest.
#[test]
fn recovery_never_deletes_foreign_directories() {
    let dir = temp_dir("foreign");
    let store = VideoStore::open(&dir).expect("open");
    let src = test_source(10);
    store
        .ingest("v", &src, 30, small_cfg(), |_, _| {
            TileLayout::untiled(64, 64)
        })
        .expect("ingest");
    drop(store);

    // Not ours: a manifest-less directory holding unrelated data.
    let foreign = dir.join("my-backups");
    fs::create_dir_all(&foreign).expect("mkdir");
    fs::write(foreign.join("important.txt"), b"do not lose").expect("write");
    fs::write(foreign.join("notes.tmp"), b"also keep: not tile residue").expect("write");

    let store = VideoStore::open(&dir).expect("reopen");
    assert!(
        store.recovery_report().is_clean(),
        "foreign data must not be touched: {:?}",
        store.recovery_report().actions
    );
    assert_eq!(
        fs::read(foreign.join("important.txt")).expect("survives"),
        b"do not lose"
    );
    assert!(
        foreign.join("notes.tmp").exists(),
        "even .tmp files survive"
    );
    // fsck still *flags* the unknown directory — it should not be in a
    // store — it just never deletes it.
    assert!(!store.fsck().expect("fsck").is_clean());

    // An empty manifest-less directory, by contrast, is ingest residue.
    drop(store);
    fs::create_dir_all(dir.join("half-ingested")).expect("mkdir");
    let store = VideoStore::open(&dir).expect("reopen again");
    assert!(store.recovery_report().actions.iter().any(
        |a| matches!(a, RecoveryAction::RemovedPartialVideo { video } if video == "half-ingested")
    ));
    assert!(!dir.join("half-ingested").exists());
    fs::remove_dir_all(&dir).ok();
}

/// Re-tiles through the facade survive restart cleanly: no residue, no
/// recovery actions, fsck clean — the happy path of the commit protocol.
#[test]
fn clean_retile_leaves_no_residue() {
    let dir = temp_dir("clean-retile");
    let store = VideoStore::open(&dir).expect("open");
    let src = test_source(10);
    store
        .ingest("v", &src, 30, small_cfg(), |_, _| {
            TileLayout::untiled(64, 64)
        })
        .expect("ingest");
    let mut manifest = store.load_manifest("v").expect("manifest");
    store
        .retile(
            &mut manifest,
            0,
            TileLayout::uniform(64, 64, 2, 2).expect("layout"),
        )
        .expect("retile");
    drop(store);

    let store = VideoStore::open(&dir).expect("reopen");
    assert!(
        store.recovery_report().is_clean(),
        "clean shutdown needs no recovery: {:?}",
        store.recovery_report().actions
    );
    let fsck = store.fsck().expect("fsck");
    assert!(fsck.is_clean(), "{:?}", fsck.issues);
    assert_eq!(fsck.tiles_checked, 4);
    assert_eq!(
        store.load_manifest("v").expect("manifest").sots[0].retile_count,
        1
    );
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Crash-point sweep over the tiered semantic index
// ---------------------------------------------------------------------

/// One deterministic index workload step. Every step changes the logical
/// state (distinct detections / distinct processed frames), so every prefix
/// of the stream has a distinct fingerprint and "which prefix survived?"
/// has exactly one answer.
fn index_workload_step(
    ix: &mut dyn tasm_index::SemanticIndex,
    i: u32,
) -> Result<(), tasm_index::TreeError> {
    let video = i % 2;
    let labels = ["car", "person", "bus"];
    if i % 7 == 6 {
        ix.mark_processed(video, i)
    } else {
        ix.add_metadata(
            video,
            labels[(i % 3) as usize],
            i * 3,
            Rect::new(i, i * 2, 16, 16),
        )
    }
}

const INDEX_SWEEP_STEPS: u32 = 64;
const INDEX_SWEEP_FLUSH_EVERY: u32 = 5;

/// Runs the workload: a flush every [`INDEX_SWEEP_FLUSH_EVERY`] steps and
/// once at the end. Stops at the first error (the injected crash). With a
/// memtable limit of 8, the step count is chosen so the stream *ends* on an
/// auto-spill: run-flush and compaction I/O follows the final WAL append,
/// giving the sweep fault points after the last durability point.
fn run_index_workload(ix: &mut dyn tasm_index::SemanticIndex) -> Result<(), tasm_index::TreeError> {
    for i in 0..INDEX_SWEEP_STEPS {
        index_workload_step(ix, i)?;
        if i % INDEX_SWEEP_FLUSH_EVERY == INDEX_SWEEP_FLUSH_EVERY - 1 {
            ix.flush()?;
        }
    }
    ix.flush()
}

/// The observable logical state of a semantic index under the sweep
/// workload: every probe a planner could make, plus the counters.
fn index_fingerprint(ix: &mut dyn tasm_index::SemanticIndex) -> String {
    let mut out = String::new();
    out.push_str(&format!("detections={}\n", ix.detection_count()));
    for video in 0..2u32 {
        out.push_str(&format!(
            "labels[{video}]={:?}\n",
            ix.labels(video).expect("labels")
        ));
        out.push_str(&format!(
            "processed[{video}]={}\n",
            ix.processed_count(video, 0..INDEX_SWEEP_STEPS * 3 + 1)
                .expect("processed")
        ));
        for label in ["car", "person", "bus"] {
            let dets = ix
                .query(video, label, 0..INDEX_SWEEP_STEPS * 3 + 1)
                .expect("query");
            out.push_str(&format!("q[{video}/{label}]={dets:?}\n"));
        }
    }
    out
}

/// The index-tier crash-point sweep (acceptance criterion): fail-stop and
/// torn-write at every mutating I/O operation of the tiered index's WAL
/// appends, memtable→run flushes, and compactions. Reopening must replay to
/// a state equal to **exactly one prefix** of the acknowledged operation
/// stream — never a hole, never a torn or duplicated record — and the
/// tier's own verify() must be clean.
#[test]
fn index_tier_crash_sweep_recovers_to_exactly_one_prefix() {
    use tasm_core::StorageTierIo;
    use tasm_index::TieredIndex;

    // Every prefix state of the workload, computed on the reference
    // in-memory index (equivalence with the tiered index is proven by the
    // index crate's property tests).
    let expected: Vec<String> = (0..=INDEX_SWEEP_STEPS)
        .map(|k| {
            let mut shadow = MemoryIndex::in_memory();
            for i in 0..k {
                index_workload_step(&mut shadow, i).expect("shadow step");
            }
            index_fingerprint(&mut shadow)
        })
        .collect();

    // Count the workload's mutating I/O operations with a disarmed
    // injector. The small memtable limit forces WAL appends, several run
    // flushes, and at least one 4-way compaction into the sweep's range.
    let clean = temp_dir("index-sweep-clean");
    let counter = FaultIo::new();
    let mut idx = TieredIndex::open_with_io(&clean, Arc::new(StorageTierIo(counter.clone())))
        .expect("open clean");
    idx.set_memtable_limit(8);
    let ops_before = counter.mutating_ops();
    run_index_workload(&mut idx).expect("clean workload");
    let total_ops = counter.mutating_ops() - ops_before;
    let clean_runs = idx.stats().run_count;
    drop(idx);
    assert!(
        total_ops >= 20,
        "the index protocol must expose at least 20 fault points, got {total_ops}"
    );
    assert!(clean_runs >= 2, "workload must leave multiple runs");

    let scratch = temp_dir("index-sweep-scratch");
    let mut matched: Vec<u32> = Vec::new();
    for kind in [FaultKind::FailStop, FaultKind::TornWrite] {
        for n in 1..=total_ops {
            let _ = fs::remove_dir_all(&scratch);
            let fault = FaultIo::new();
            let mut idx =
                TieredIndex::open_with_io(&scratch, Arc::new(StorageTierIo(fault.clone())))
                    .expect("open faulted");
            idx.set_memtable_limit(8);
            fault.arm(fault.mutating_ops() + n, kind);
            let result = run_index_workload(&mut idx);
            assert!(result.is_err(), "{kind:?} at op {n} must surface an error");
            assert!(fault.crashed(), "{kind:?} at op {n} must have fired");
            drop(idx);

            // Reopen with real I/O: recovery (temp reaping, compaction
            // roll-forward, watermarked WAL replay) runs at open.
            let mut idx = TieredIndex::open(&scratch).expect("reopen after crash");
            let issues = idx.verify().expect("verify runs");
            assert!(
                issues.is_empty(),
                "{kind:?} at op {n}: verify found {issues:?}"
            );
            let got = index_fingerprint(&mut idx);
            let hits: Vec<u32> = (0..=INDEX_SWEEP_STEPS)
                .filter(|&k| expected[k as usize] == got)
                .collect();
            assert_eq!(
                hits.len(),
                1,
                "{kind:?} at op {n}: recovered state matches {} prefixes, want exactly 1:\n{got}",
                hits.len()
            );
            matched.push(hits[0]);
        }
    }
    // The sweep must observe real rollback (early prefixes) and real
    // durability (the full stream survives when the crash lands after the
    // last append).
    let min = *matched.iter().min().expect("nonempty sweep");
    let max = *matched.iter().max().expect("nonempty sweep");
    assert!(min < INDEX_SWEEP_STEPS, "no fault point ever rolled back");
    assert_eq!(
        max, INDEX_SWEEP_STEPS,
        "late fault points must preserve the whole acknowledged stream"
    );
    fs::remove_dir_all(&clean).ok();
    fs::remove_dir_all(&scratch).ok();
}
