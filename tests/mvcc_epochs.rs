//! MVCC layout epochs: re-tiles never wait on scans.
//!
//! The contract under test: a re-tile commit publishes a new layout epoch
//! in bounded time — bounded by its own transcode I/O, never by in-flight
//! readers — while every reader pins the epoch it planned against and
//! reads it bit-exactly to completion. Retired epochs survive exactly as
//! long as their last reader; the moment it drains, their tile
//! directories and decoded-GOP cache entries are reclaimed, leaving
//! precisely the live epochs on disk with a clean `fsck`.

use proptest::run_cases;
use rand::Rng;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tasm_codec::TileLayout;
use tasm_core::{
    EpochPin, LabelPredicate, PartitionConfig, Query, ScanResult, StorageConfig, Tasm, TasmConfig,
    TasmError,
};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_service::{QueryRequest, QueryService, RetilePolicy, ServiceConfig, Shutdown};
use tasm_suite::assert_regions_identical;
use tasm_video::FrameSource;

const FRAMES: u32 = 20;

/// A bound generous enough for any transcode on CI yet far below "waits
/// for a reader that never drains" (which is forever).
const COMMIT_BOUND: Duration = Duration::from_secs(30);

fn scene() -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 256,
        height: 160,
        frames: FRAMES,
        seed: 77,
        ..SceneSpec::test_scene()
    })
}

/// One SOT spanning the whole video, so the video-level epoch is the lone
/// SOT's retile count and every re-tile bumps it by exactly one.
fn open(tag: &str) -> (Arc<Tasm>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("tasm-mvcc-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: FRAMES,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        workers: 1,
        cache_bytes: 64 << 20,
        ..Default::default()
    };
    let tasm = Arc::new(Tasm::open(&dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap());
    (tasm, dir)
}

fn ingest(tasm: &Tasm, video: &SyntheticVideo) {
    tasm.ingest("v", video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
        tasm.mark_processed("v", f).unwrap();
    }
}

fn full_query() -> Query {
    Query::new(LabelPredicate::label("car")).frames(0..FRAMES)
}

fn assert_result_matches(reference: &ScanResult, got: &ScanResult, what: &str) {
    let expected: Vec<_> = reference.regions.iter().collect();
    assert_regions_identical(&expected, &got.regions, what);
}

/// The SOT directory naming contract of the storage layer (rc 0 is the
/// unstamped ingest epoch). Asserting on it here pins the on-disk format.
fn sot_dir_name(start: u32, end: u32, rc: u32) -> String {
    if rc == 0 {
        format!("sot_{start:06}_{end:06}")
    } else {
        format!("sot_{start:06}_{end:06}_r{rc:06}")
    }
}

/// The `sot_*` directories present on disk for video `v`.
fn sot_dirs_on_disk(store_dir: &Path) -> BTreeSet<String> {
    std::fs::read_dir(store_dir.join("v"))
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("sot_"))
        .collect()
}

/// The directories a set of pinned epochs (plus the current manifest)
/// keeps alive.
fn expected_dirs(tasm: &Tasm, pins: &[&EpochPin]) -> BTreeSet<String> {
    let mut dirs: BTreeSet<String> = tasm
        .manifest("v")
        .unwrap()
        .sots
        .iter()
        .map(|s| sot_dir_name(s.start, s.end, s.retile_count))
        .collect();
    for pin in pins {
        dirs.extend(
            pin.manifest()
                .sots
                .iter()
                .map(|s| sot_dir_name(s.start, s.end, s.retile_count)),
        );
    }
    dirs
}

/// Two layouts to alternate between; each switch is a real re-tile (a new
/// epoch with re-encoded tile bytes), so a writer can mint epochs forever.
fn alternating_layouts(tasm: &Tasm) -> [TileLayout; 2] {
    let tiled = tasm
        .kqko_layout("v", 0, &["car".to_string()])
        .unwrap()
        .expect("the test scene must produce a tiled KQKO layout");
    let m = tasm.manifest("v").unwrap();
    [tiled, TileLayout::untiled(m.width, m.height)]
}

/// The tentpole: a reader holds its epoch open for the whole test while a
/// writer thread re-tiles continuously. Every commit must land within
/// [`COMMIT_BOUND`] (the old reader-writer-lock design would block until
/// the pin dropped — i.e. forever), the pinned epoch must stay bit-exact
/// against a never-retiled twin throughout, and after the reader drains,
/// GC must leave exactly the live epochs on disk with a clean fsck.
#[test]
fn retile_commits_bounded_while_a_reader_pins_its_epoch() {
    let video = scene();
    let (twin, _twin_dir) = open("bounded-twin");
    ingest(&twin, &video);
    let reference = twin.query("v", &full_query()).unwrap();

    let (tasm, dir) = open("bounded");
    ingest(&tasm, &video);
    let e0 = tasm.current_epoch("v").unwrap();
    assert_eq!(e0, 0, "ingest is epoch zero");

    // The never-ending reader: pins epoch 0 and keeps it for the whole
    // torture run.
    let pin = tasm.pin_epoch("v", None).unwrap();
    assert_eq!(pin.epoch(), e0);

    // Writer thread: six full re-tile commits while the pin is held.
    let layouts = alternating_layouts(&tasm);
    let writer_tasm = Arc::clone(&tasm);
    let (tx, rx) = std::sync::mpsc::channel();
    let writer = std::thread::spawn(move || {
        for i in 0..6usize {
            let t0 = Instant::now();
            writer_tasm.retile("v", 0, layouts[i % 2].clone()).unwrap();
            tx.send((i, t0.elapsed())).unwrap();
        }
    });

    // Interleave: after every commit the writer reports, re-read the
    // pinned epoch and compare it bit for bit against the twin.
    for _ in 0..6 {
        let (i, commit_latency) = rx
            .recv_timeout(COMMIT_BOUND)
            .expect("a re-tile commit waited on a reader that never drains");
        assert!(
            commit_latency < COMMIT_BOUND,
            "commit {i} took {commit_latency:?}"
        );
        let pinned = tasm.query("v", &full_query().as_of(e0)).unwrap();
        assert_eq!(pinned.epoch, e0);
        assert_result_matches(
            &reference,
            &pinned,
            &format!("pinned epoch after {} commits", i + 1),
        );
    }
    writer.join().unwrap();

    // Six commits landed while the reader held epoch 0.
    assert_eq!(tasm.current_epoch("v").unwrap(), 6);
    // Intermediate epochs had no readers, so exactly the pinned epoch and
    // the current one are live.
    assert_eq!(tasm.live_epochs("v").unwrap(), vec![0, 6]);
    let held = expected_dirs(&tasm, &[&pin]);
    assert_eq!(
        sot_dirs_on_disk(&dir),
        held,
        "disk must hold exactly the live epochs' directories"
    );

    // An unpinned epoch is not readable — it was reclaimed, not hidden.
    match tasm.query("v", &full_query().as_of(3)) {
        Err(TasmError::EpochNotLive {
            requested, current, ..
        }) => {
            assert_eq!((requested, current), (3, 6));
        }
        other => panic!("AS OF a reclaimed epoch must fail, got {other:?}"),
    }

    // The reader drains: epoch 0's directories are reclaimed on the spot.
    drop(pin);
    assert_eq!(tasm.live_epochs("v").unwrap(), vec![6]);
    assert_eq!(sot_dirs_on_disk(&dir), expected_dirs(&tasm, &[]));
    assert!(
        tasm.query("v", &full_query().as_of(e0)).is_err(),
        "the drained epoch must no longer be readable"
    );

    // Post-drain results at the final epoch are still self-consistent...
    let after = tasm.query("v", &full_query()).unwrap();
    assert_eq!(after.epoch, 6);
    // ...and the store passes fsck with zero residue.
    let report = tasm.fsck().unwrap();
    assert!(report.is_clean(), "fsck after GC: {:?}", report.issues);
}

/// The regret daemon keeps re-tiling while a reader holds an epoch open:
/// the daemon must make progress (it no longer queues behind scans), the
/// held epoch stays bit-exact, and the drained store fscks clean.
#[test]
fn regret_daemon_retiles_while_a_scan_is_held_open() {
    let video = scene();
    let (twin, _twin_dir) = open("daemon-twin");
    ingest(&twin, &video);
    let reference = twin.query("v", &full_query()).unwrap();

    let (tasm, _dir) = open("daemon");
    ingest(&tasm, &video);
    let pin = tasm.pin_epoch("v", None).unwrap();
    let e0 = pin.epoch();

    let service = QueryService::start(
        Arc::clone(&tasm),
        ServiceConfig {
            workers: 4,
            queue_depth: 16,
            retile: RetilePolicy::Regret,
            retile_interval: Duration::from_millis(1),
            slow_query: None,
            ..Default::default()
        },
    );
    // Enough observations for the regret policy to cross its threshold.
    let handles: Vec<_> = (0..24)
        .map(|_| {
            service
                .submit(QueryRequest::scan(
                    "v",
                    LabelPredicate::label("car"),
                    0..FRAMES,
                ))
                .unwrap()
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let stats = service.shutdown(Shutdown::Drain).stats;
    assert_eq!(stats.failed, 0);
    assert!(
        stats.retile_ops > 0,
        "the daemon must have committed a re-tile while the pin was held"
    );
    assert!(
        tasm.current_epoch("v").unwrap() > e0,
        "the daemon's commit must have advanced the epoch"
    );

    // The held epoch read the whole workload out bit-exactly.
    let pinned = tasm.query("v", &full_query().as_of(e0)).unwrap();
    assert_result_matches(&reference, &pinned, "pinned epoch under the regret daemon");

    drop(pin);
    assert_eq!(tasm.live_epochs("v").unwrap().len(), 1);
    let report = tasm.fsck().unwrap();
    assert!(
        report.is_clean(),
        "fsck after daemon run: {:?}",
        report.issues
    );
}

/// Property: under randomly interleaved readers, re-tilers, and pin drops,
/// (a) a pinned epoch is never reclaimed — its directories stay on disk
/// and `AS OF` re-reads it bit-identically to the snapshot taken when it
/// was current; (b) the moment an epoch's last reader drains it stops
/// being readable; (c) disk always holds exactly the live epochs.
#[test]
fn interleaved_readers_retilers_and_gc_never_reclaim_a_pinned_epoch() {
    let video = scene();
    let (tasm, dir) = open("prop");
    ingest(&tasm, &video);
    let layouts = alternating_layouts(&tasm);

    // Pinned epochs with the reference result recorded while each was
    // current ("a snapshot taken at epoch e").
    let mut pinned: Vec<(u64, EpochPin, ScanResult)> = Vec::new();
    let mut next_layout = 0usize;
    run_cases(60, proptest::seed_for("mvcc-interleave"), |rng| {
        match rng.gen_range(0u32..4) {
            // Re-tile: mint a new epoch.
            0 => {
                tasm.retile("v", 0, layouts[next_layout % 2].clone())
                    .unwrap();
                next_layout += 1;
            }
            // New reader: pin the current epoch and snapshot it.
            1 => {
                let pin = tasm.pin_epoch("v", None).unwrap();
                let snapshot = tasm.query("v", &full_query().as_of(pin.epoch())).unwrap();
                pinned.push((pin.epoch(), pin, snapshot));
            }
            // Reader re-reads a random pinned epoch: bit-identical to its
            // snapshot, and its directories are still on disk.
            2 => {
                if pinned.is_empty() {
                    return;
                }
                let (epoch, pin, snapshot) = &pinned[rng.gen_range(0..pinned.len())];
                let again = tasm.query("v", &full_query().as_of(*epoch)).unwrap();
                assert_eq!(again.epoch, *epoch);
                assert_result_matches(snapshot, &again, &format!("AS OF {epoch}"));
                let on_disk = sot_dirs_on_disk(&dir);
                for s in &pin.manifest().sots {
                    assert!(
                        on_disk.contains(&sot_dir_name(s.start, s.end, s.retile_count)),
                        "pinned epoch {epoch} lost a directory"
                    );
                }
            }
            // Drop a random pin (GC). A drained non-current epoch must
            // stop being readable.
            _ => {
                if pinned.is_empty() {
                    return;
                }
                let (epoch, pin, _) = pinned.swap_remove(rng.gen_range(0..pinned.len()));
                drop(pin);
                let still_pinned = pinned.iter().any(|(e, ..)| *e == epoch);
                let current = tasm.current_epoch("v").unwrap();
                if !still_pinned && epoch != current {
                    assert!(
                        matches!(
                            tasm.query("v", &full_query().as_of(epoch)),
                            Err(TasmError::EpochNotLive { .. })
                        ),
                        "drained epoch {epoch} must be reclaimed"
                    );
                }
            }
        }
        // Invariant after every step: disk holds exactly the directories
        // of the live epochs (pinned ∪ current), nothing more or less.
        let pins: Vec<&EpochPin> = pinned.iter().map(|(_, p, _)| p).collect();
        assert_eq!(sot_dirs_on_disk(&dir), expected_dirs(&tasm, &pins));
    });

    drop(pinned);
    assert_eq!(tasm.live_epochs("v").unwrap().len(), 1);
    let report = tasm.fsck().unwrap();
    assert!(report.is_clean(), "final fsck: {:?}", report.issues);
}

/// `AS OF` input validation: epochs that were never published are typed
/// errors, for queries and explicit pins alike, and the error reports the
/// current epoch so callers can recover.
#[test]
fn as_of_an_unknown_epoch_is_a_typed_error() {
    let video = scene();
    let (tasm, _dir) = open("unknown-epoch");
    ingest(&tasm, &video);
    match tasm.query("v", &full_query().as_of(41)) {
        Err(TasmError::EpochNotLive {
            video,
            requested,
            current,
        }) => {
            assert_eq!((video.as_str(), requested, current), ("v", 41, 0));
        }
        other => panic!("expected EpochNotLive, got {other:?}"),
    }
    assert!(tasm.pin_epoch("v", Some(41)).is_err());
    // The current epoch named explicitly is always pinnable.
    let pin = tasm.pin_epoch("v", Some(0)).unwrap();
    assert_eq!(pin.epoch(), 0);
}
