//! Homomorphic stitching and quality integration tests: any tiled encoding
//! must stitch back (no re-encode) into a full video of good quality
//! (Figure 6(b)'s property).

use tasm_codec::{encode_video, EncoderConfig, StitchedVideo, TileLayout};
use tasm_core::{partition, Granularity, PartitionConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_video::quality::psnr_sequence;
use tasm_video::{FrameSource, Rect};

fn scene(frames: u32) -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames,
        ..SceneSpec::test_scene()
    })
}

fn raw_frames(v: &SyntheticVideo) -> Vec<tasm_video::Frame> {
    (0..v.len()).map(|i| v.frame(i)).collect()
}

#[test]
fn uniform_tiled_video_stitches_to_good_quality() {
    let video = scene(20);
    let layout = TileLayout::uniform(320, 192, 2, 3).unwrap();
    let cfg = EncoderConfig {
        gop_len: 10,
        ..Default::default()
    };
    let (tiles, _) = encode_video(&video, &layout, &cfg, true).unwrap();
    let stitched = StitchedVideo::stitch(layout, tiles).unwrap();
    let (decoded, stats) = stitched.decode_all().unwrap();

    let original = raw_frames(&video);
    let report = psnr_sequence(original.iter(), decoded.iter());
    assert!(
        report.y > 30.0,
        "stitched uniform PSNR {:.1} dB below acceptable",
        report.y
    );
    assert_eq!(stats.tile_chunks_decoded, 20 * 6);
}

/// Under a shared bit budget (rate-controlled encoding), layouts that
/// fragment prediction across many tile boundaries compress worse, get
/// pushed to coarser quantization, and lose quality — the Figure 6(b)
/// mechanism. An untiled encode must therefore beat a heavily tiled one.
#[test]
fn under_rate_control_many_tiles_cost_quality() {
    let video = scene(20);
    let cfg = EncoderConfig {
        gop_len: 10,
        qp: 28,
        rate: tasm_codec::RateControl::TargetRate {
            millibits_per_sample: 120,
        },
        ..Default::default()
    };

    let original = raw_frames(&video);
    let psnr_of = |layout: TileLayout| {
        let (tiles, _) = encode_video(&video, &layout, &cfg, true).unwrap();
        let stitched = StitchedVideo::stitch(layout, tiles).unwrap();
        let (decoded, _) = stitched.decode_all().unwrap();
        psnr_sequence(original.iter(), decoded.iter()).y
    };

    let untiled = psnr_of(TileLayout::untiled(320, 192));
    let many_uniform = psnr_of(TileLayout::uniform(320, 192, 6, 10).unwrap());
    assert!(
        untiled > many_uniform,
        "untiled ({untiled:.2} dB) should beat a 60-tile grid ({many_uniform:.2} dB) at the same bitrate"
    );
}

/// Non-uniform object layouts still stitch to acceptable quality and their
/// boundaries do not corrupt content (every layout decodes to ≥ 30 dB).
#[test]
fn object_layout_stitches_to_acceptable_quality() {
    let video = scene(20);
    let cfg = EncoderConfig {
        gop_len: 10,
        ..Default::default()
    };
    let mut boxes: Vec<Rect> = Vec::new();
    for f in 0..20 {
        boxes.extend(video.ground_truth(f).into_iter().map(|(_, b)| b));
    }
    let nonuniform = partition(
        320,
        192,
        &boxes,
        &PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            granularity: Granularity::Fine,
        },
    );
    let original = raw_frames(&video);
    let (tiles, _) = encode_video(&video, &nonuniform, &cfg, true).unwrap();
    let stitched = StitchedVideo::stitch(nonuniform, tiles).unwrap();
    let (decoded, _) = stitched.decode_all().unwrap();
    let report = psnr_sequence(original.iter(), decoded.iter());
    assert!(report.y > 30.0, "object layout PSNR {:.2} dB", report.y);
}

#[test]
fn stitched_serialization_survives_disk_roundtrip() {
    let video = scene(10);
    let layout = TileLayout::uniform(320, 192, 2, 2).unwrap();
    let cfg = EncoderConfig {
        gop_len: 5,
        ..Default::default()
    };
    let (tiles, _) = encode_video(&video, &layout, &cfg, false).unwrap();
    let stitched = StitchedVideo::stitch(layout, tiles).unwrap();

    let dir = std::env::temp_dir().join(format!("tasm-stitch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stitched.tsf");
    std::fs::write(&path, stitched.to_bytes()).unwrap();
    let back = StitchedVideo::from_bytes(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(stitched, back);

    let (a, _) = stitched.decode_range(3..7).unwrap();
    let (b, _) = back.decode_range(3..7).unwrap();
    assert_eq!(a, b, "decode must be identical after disk roundtrip");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partial_decode_of_stitched_video_matches_full_decode() {
    let video = scene(20);
    let layout = TileLayout::uniform(320, 192, 2, 2).unwrap();
    let cfg = EncoderConfig {
        gop_len: 5,
        ..Default::default()
    };
    let (tiles, _) = encode_video(&video, &layout, &cfg, false).unwrap();
    let stitched = StitchedVideo::stitch(layout, tiles).unwrap();

    let (all, _) = stitched.decode_all().unwrap();
    let (part, stats) = stitched.decode_range(12..17).unwrap();
    assert_eq!(part.len(), 5);
    for (i, frame) in part.iter().enumerate() {
        assert_eq!(frame, &all[12 + i]);
    }
    // Warmup from the GOP boundary at frame 10 is charged for all 4 tiles.
    assert_eq!(stats.frames_decoded, 4 * 7);
}
