//! End-to-end tests of the networked serving layer.
//!
//! The contract under test (the PR's acceptance criterion): query results
//! delivered over TCP are **bit-identical** to in-process `Tasm::query`
//! for the same `Query` — including ROI, stride, limit, and the aggregate
//! modes — with at least 4 concurrent clients and the background retile
//! daemon re-tiling mid-workload; and admission control answers a full
//! queue with a typed BUSY frame instead of ever blocking the socket.

use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use tasm_client::{ClientError, Connection, LoadGen, LoadGenConfig};
use tasm_core::{
    LabelPredicate, PartitionConfig, Query, QueryMode, StorageConfig, Tasm, TasmConfig,
};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_proto::{ErrorCode, Message, ProtoError, VERSION};
use tasm_server::{ServerConfig, TasmServer};
use tasm_service::{RetilePolicy, ServiceConfig};
use tasm_suite::{assert_regions_identical, regions_identical};
use tasm_video::{FrameSource, Rect};

/// [`regions_identical`] over two owned region lists.
fn regions_match(a: &[tasm_core::RegionPixels], b: &[tasm_core::RegionPixels]) -> bool {
    let refs: Vec<_> = a.iter().collect();
    regions_identical(&refs, b)
}

const FRAMES: u32 = 60;

fn scene() -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 256,
        height: 160,
        frames: FRAMES,
        seed: 47,
        ..SceneSpec::test_scene()
    })
}

fn tasm(tag: &str) -> Arc<Tasm> {
    let dir = std::env::temp_dir().join(format!("tasm-remote-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        workers: 1,
        cache_bytes: 64 << 20,
        ..Default::default()
    };
    Arc::new(Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap())
}

fn ingest(tasm: &Tasm, video: &SyntheticVideo) {
    tasm.ingest("v", video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
        tasm.mark_processed("v", f).unwrap();
    }
}

/// The per-client query mix: every planner clause plus both aggregate
/// modes, windows offset per client so concurrent work overlaps without
/// being identical.
fn query_mix(client: u32) -> Vec<Query> {
    let start = client * 7;
    vec![
        Query::new(LabelPredicate::label("car")).frames(start..start + 40),
        Query::new(LabelPredicate::label("car"))
            .frames(start..start + 50)
            .roi(Rect::new(0, 0, 128, 80))
            .stride(2),
        Query::new(LabelPredicate::label("person"))
            .frames(0..FRAMES)
            .limit(5),
        Query::new(LabelPredicate::label("car"))
            .frames(start..start + 30)
            .roi(Rect::new(64, 40, 128, 80))
            .stride(3)
            .limit(4),
        Query::new(LabelPredicate::label("car"))
            .frames(0..FRAMES)
            .mode(QueryMode::Count),
        Query::new(LabelPredicate::label("person"))
            .frames(start..start + 40)
            .mode(QueryMode::Exists),
    ]
}

/// Wire fidelity: with a stable layout (no daemon), results served over
/// TCP to 4 concurrent clients are bit-identical to in-process
/// `Tasm::query` on an identical twin store, across the full query surface
/// (ROI, stride, limit, aggregate modes) and across warm-cache repeats.
#[test]
fn remote_results_bit_identical_to_in_process_queries() {
    let video = scene();
    let server_tasm = tasm("e2e-server");
    ingest(&server_tasm, &video);
    // The in-process twin: same video, same detections, its own store.
    let twin = tasm("e2e-twin");
    ingest(&twin, &video);

    let server = TasmServer::bind(
        Arc::clone(&server_tasm),
        ServiceConfig {
            workers: 4,
            queue_depth: 32,
            ..Default::default()
        },
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let barrier = Barrier::new(4);
    std::thread::scope(|scope| {
        for client in 0..4u32 {
            let twin = &twin;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut conn = Connection::connect(addr).expect("connect");
                barrier.wait();
                // Two passes so the second hits the warm decoded-GOP cache
                // and the shared-scan dedup paths.
                for pass in 0..2 {
                    for (qi, query) in query_mix(client).into_iter().enumerate() {
                        let remote = conn.query("v", &query).expect("remote query");
                        let local = twin.query("v", &query).expect("twin query");
                        let what = format!("client {client} pass {pass} query {qi}");
                        assert_eq!(remote.matched, local.matched, "{what}: matched");
                        let expected: Vec<_> = local.regions.iter().collect();
                        assert_regions_identical(&expected, &remote.regions, &what);
                        if query.query_mode() != QueryMode::Pixels {
                            assert!(
                                remote.regions.is_empty(),
                                "{what}: aggregate modes return no pixels"
                            );
                            assert_eq!(
                                remote.summary.samples_decoded, 0,
                                "{what}: aggregate modes decode nothing"
                            );
                        }
                    }
                }
                conn.goodbye().expect("goodbye");
            });
        }
    });

    let report = server.shutdown();
    assert_eq!(report.sessions_served, 4);
    let stats = report.service.stats;
    assert_eq!(stats.failed, 0, "no remote query may fail");
    assert_eq!(stats.completed, 4 * 2 * 6);
    assert_eq!(report.service.abandoned, 0);
    assert_eq!(
        stats.latency.count, stats.completed,
        "one latency sample per completed query"
    );
}

/// The retile-daemon half of the acceptance criterion: with the regret
/// daemon re-tiling mid-workload, every result a remote client sees is
/// bit-identical to an in-process `Tasm::query` reference for one of the
/// two layout epochs — the serving layer never tears or distorts a result,
/// even while the layout changes under it. (A re-tile is a lossy
/// transcode, so pre- and post-epoch pixels legitimately differ; the
/// per-epoch comparison is the same contract `concurrent_scan.rs`
/// establishes for the in-process service.)
#[test]
fn remote_results_stay_epoch_exact_while_daemon_retiles() {
    let frames = FRAMES;
    let video = scene();
    // One SOT spanning the whole video and a hair-trigger regret
    // threshold: exactly two layout epochs, with the re-tile landing
    // mid-workload.
    let tune = |cfg: &mut TasmConfig| {
        cfg.storage.sot_frames = frames;
        cfg.eta = 0.05;
    };
    let tasm_tuned = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("tasm-remote-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = TasmConfig {
            storage: StorageConfig {
                gop_len: 10,
                sot_frames: 10,
                ..Default::default()
            },
            partition: PartitionConfig {
                min_tile_width: 32,
                min_tile_height: 32,
                ..Default::default()
            },
            workers: 1,
            cache_bytes: 64 << 20,
            ..Default::default()
        };
        tune(&mut cfg);
        Arc::new(Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap())
    };

    // All-car query mix (windows/ROI/stride/limit vary): with one SOT and
    // one label the regret policy converges on one alternative layout, so
    // the twin's serial re-tile reproduces the server's second epoch.
    let mix: Vec<Query> = (0..4u32)
        .flat_map(|client| {
            let start = client * 5;
            vec![
                Query::new(LabelPredicate::label("car")).frames(start..start + 40),
                Query::new(LabelPredicate::label("car"))
                    .frames(start..start + 50)
                    .roi(Rect::new(0, 0, 128, 80))
                    .stride(2),
                Query::new(LabelPredicate::label("car"))
                    .frames(start..start + 30)
                    .limit(4),
                Query::new(LabelPredicate::label("car"))
                    .frames(0..frames)
                    .mode(QueryMode::Count),
            ]
        })
        .collect();

    // In-process references for both epochs, from a serially-driven twin.
    let twin = tasm_tuned("epoch-twin");
    ingest(&twin, &video);
    let ref_pre: Vec<_> = mix.iter().map(|q| twin.query("v", q).unwrap()).collect();
    let mut retiled = false;
    for _ in 0..64 {
        if twin
            .observe_regret("v", "car", 0..frames)
            .unwrap()
            .encode
            .bytes_produced
            > 0
        {
            retiled = true;
            break;
        }
    }
    assert!(retiled, "the twin's regret policy must re-tile");
    let ref_post: Vec<_> = mix.iter().map(|q| twin.query("v", q).unwrap()).collect();
    assert!(
        mix.iter().enumerate().any(|(i, q)| {
            q.query_mode() == QueryMode::Pixels
                && !regions_match(&ref_pre[i].regions, &ref_post[i].regions)
        }),
        "the re-tile must change pixels, or epoch tearing would be invisible"
    );

    let server_tasm = tasm_tuned("epoch-server");
    ingest(&server_tasm, &video);
    let server = TasmServer::bind(
        Arc::clone(&server_tasm),
        ServiceConfig {
            workers: 4,
            queue_depth: 32,
            retile: RetilePolicy::Regret,
            retile_interval: std::time::Duration::from_millis(1),
            slow_query: None,
            ..Default::default()
        },
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let barrier = Barrier::new(4);
    std::thread::scope(|scope| {
        for client in 0..4usize {
            let mix = &mix;
            let (ref_pre, ref_post) = (&ref_pre, &ref_post);
            let barrier = &barrier;
            scope.spawn(move || {
                let mut conn = Connection::connect(addr).expect("connect");
                barrier.wait();
                // Several passes so queries land before, during, and after
                // the daemon's re-tile.
                for pass in 0..3 {
                    for (qi, query) in mix.iter().enumerate() {
                        let remote = conn.query("v", query).expect("remote query");
                        let what = format!("client {client} pass {pass} query {qi}");
                        assert_eq!(remote.matched, ref_pre[qi].matched, "{what}: matched");
                        assert!(
                            regions_match(&ref_pre[qi].regions, &remote.regions)
                                || regions_match(&ref_post[qi].regions, &remote.regions),
                            "{what}: result matches neither epoch's in-process \
                             reference — torn or distorted by the serving layer"
                        );
                    }
                }
                conn.goodbye().expect("goodbye");
            });
        }
    });

    let report = server.shutdown();
    let stats = report.service.stats;
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.completed, 4 * 3 * 16);
    assert!(
        stats.retile_ops > 0,
        "the server's regret daemon must have re-tiled mid-workload"
    );
}

/// A full submission queue answers with a typed BUSY frame — the request
/// is refused, the connection keeps working, nothing blocks.
#[test]
fn queue_full_returns_typed_busy_not_a_hang() {
    let video = scene();
    let server_tasm = tasm("busy");
    ingest(&server_tasm, &video);
    // One worker over a one-deep queue: at most two queries in the system.
    let server = TasmServer::bind(
        server_tasm,
        ServiceConfig {
            workers: 1,
            queue_depth: 1,
            ..Default::default()
        },
        ServerConfig {
            max_inflight: 32,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();

    let barrier = Barrier::new(4);
    let (mut busy, mut completed) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..4 {
            let barrier = &barrier;
            workers.push(scope.spawn(move || {
                let mut conn = Connection::connect(addr).expect("connect");
                let query = Query::new(LabelPredicate::label("car")).frames(0..FRAMES);
                barrier.wait();
                let (mut busy, mut completed) = (0u64, 0u64);
                for _ in 0..4 {
                    match conn.query("v", &query) {
                        Ok(_) => completed += 1,
                        Err(e) if e.is_busy() => busy += 1,
                        Err(e) => panic!("only BUSY rejections expected, got {e}"),
                    }
                }
                (busy, completed)
            }));
        }
        for w in workers {
            let (b, c) = w.join().expect("client thread");
            busy += b;
            completed += c;
        }
    });
    assert_eq!(busy + completed, 16, "every request got a typed answer");
    assert!(
        busy > 0,
        "a 16-query burst against a 1-deep queue must see BUSY"
    );
    assert!(completed > 0, "admitted queries still complete");
    let report = server.shutdown();
    assert_eq!(
        report.busy_rejections, busy,
        "server-side BUSY accounting matches the clients' view"
    );
}

/// The per-session in-flight cap rejects pipelined requests beyond the cap
/// with a typed error while the earlier ones proceed.
#[test]
fn per_session_inflight_cap_is_enforced() {
    let video = scene();
    let server_tasm = tasm("inflight");
    ingest(&server_tasm, &video);
    let server = TasmServer::bind(
        server_tasm,
        ServiceConfig {
            workers: 1,
            queue_depth: 16,
            ..Default::default()
        },
        ServerConfig {
            max_inflight: 2,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();

    // Hand-rolled session: pipeline a burst of queries without reading any
    // replies. The reader admits them back to back (microseconds apart),
    // so with a cap of 2 the burst must overrun the in-flight window many
    // times over, whatever the execution speed or cache state.
    const BURST: u64 = 24;
    let mut stream = TcpStream::connect(addr).expect("raw connect");
    Message::ClientHello { version: VERSION }
        .write_to(&mut stream)
        .expect("hello");
    let hello = Message::read_from(&mut stream).expect("server hello");
    assert!(matches!(
        hello,
        Message::ServerHello {
            max_inflight: 2,
            ..
        }
    ));
    for id in 0..BURST {
        Message::Query {
            id,
            video: "v".to_string(),
            query: Query::new(LabelPredicate::label("car")).frames(0..FRAMES),
            trace_id: None,
        }
        .write_to(&mut stream)
        .expect("pipelined query");
    }
    // Collect one terminal frame per request: a typed over-cap rejection
    // or a completed response stream.
    let mut rejected = Vec::new();
    let mut done = Vec::new();
    while rejected.len() + done.len() < BURST as usize {
        match Message::read_from(&mut stream).expect("response frame") {
            Message::Error {
                id: Some(id),
                code: ErrorCode::TooManyInflight,
                ..
            } => rejected.push(id),
            Message::ResultDone { id, .. } => done.push(id),
            Message::ResultHeader { .. } | Message::Region { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    // The first two admissions can never be over cap (in-flight is 0 and
    // at most 1 when they are read); past that the burst must have hit it.
    assert!(
        !rejected.contains(&0) && !rejected.contains(&1),
        "the first two pipelined queries fit under the cap: {rejected:?}"
    );
    assert!(
        !rejected.is_empty(),
        "a {BURST}-query pipelined burst against a cap of 2 must overrun it"
    );
    assert!(
        done.len() >= 2,
        "queries under the cap still complete: {done:?}"
    );
    drop(stream);
    server.shutdown();
}

/// The listener-level connection cap refuses extra connections with a
/// typed error frame at handshake.
#[test]
fn connection_cap_refuses_with_typed_error() {
    let video = scene();
    let server_tasm = tasm("conncap");
    ingest(&server_tasm, &video);
    let server = TasmServer::bind(
        server_tasm,
        ServiceConfig::default(),
        ServerConfig {
            max_connections: 1,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();

    let first = Connection::connect(addr).expect("first connection fits");
    match Connection::connect(addr) {
        Err(ClientError::Rejected {
            code: ErrorCode::TooManyConnections,
            ..
        }) => {}
        Err(other) => panic!("expected TooManyConnections, got {other}"),
        Ok(_) => panic!("second connection must be refused"),
    }
    first.goodbye().expect("goodbye");
    let report = server.shutdown();
    assert_eq!(report.connection_rejections, 1);
}

/// A version the server does not speak is refused with a typed mismatch
/// error during the handshake.
#[test]
fn version_mismatch_is_refused_at_handshake() {
    let video = scene();
    let server_tasm = tasm("version");
    ingest(&server_tasm, &video);
    let server = TasmServer::bind(
        server_tasm,
        ServiceConfig::default(),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    Message::ClientHello {
        version: VERSION + 1,
    }
    .write_to(&mut stream)
    .expect("hello");
    match Message::read_from(&mut stream).expect("reply") {
        Message::Error {
            code: ErrorCode::VersionMismatch,
            ..
        } => {}
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    // The server closed the session afterwards.
    match Message::read_from(&mut stream) {
        Err(ProtoError::Io(_)) => {}
        other => panic!("expected closed stream, got {other:?}"),
    }
    server.shutdown();
}

/// Unknown videos and graceful shutdown surface as typed errors; the load
/// generator's pooled workers and latency accounting hold together under
/// a real burst.
#[test]
fn loadgen_drives_the_server_and_reports_latency() {
    let video = scene();
    let server_tasm = tasm("loadgen");
    ingest(&server_tasm, &video);
    let server = TasmServer::bind(
        server_tasm,
        ServiceConfig {
            workers: 2,
            queue_depth: 16,
            retile: RetilePolicy::More,
            ..Default::default()
        },
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();

    // Unknown video: typed, not fatal to the session.
    let mut conn = Connection::connect(addr).expect("connect");
    match conn.query("nope", &Query::new(LabelPredicate::label("car"))) {
        Err(ClientError::Rejected {
            code: ErrorCode::UnknownVideo,
            ..
        }) => {}
        other => panic!("expected UnknownVideo, got {other:?}"),
    }
    conn.goodbye().expect("goodbye");

    let report = LoadGen::new(LoadGenConfig {
        connections: 4,
        requests: 32,
        video: "v".to_string(),
        query: Query::new(LabelPredicate::label("car")),
        window: 20,
        frames: FRAMES,
        busy_backoff: std::time::Duration::from_millis(1),
        reconnect_attempts: 0,
    })
    .run(addr)
    .expect("loadgen run");
    assert_eq!(report.completed, 32);
    assert_eq!(report.failed, 0);
    assert_eq!(report.latency.count, 32);
    assert!(report.latency.p50() <= report.latency.p99());
    assert!(report.throughput() > 0.0);

    let server_report = server.shutdown();
    let stats = server_report.service.stats;
    // 32 loadgen queries completed server-side too (the unknown-video one
    // failed).
    assert_eq!(stats.completed, 32);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.latency.count, 32);
    // Client-observed latency includes the wire, so its mean can only be
    // at or above the server's submit→complete mean.
    assert!(report.latency.mean() >= stats.latency.mean());
}

/// Every remote query comes back with a per-phase trace: client-supplied
/// trace ids are echoed, server-assigned ids are distinct, the instance
/// tag names the serving address, the epoch matches the result, and the
/// phase decomposition is bounded by the measured total.
#[test]
fn remote_queries_carry_a_consistent_trace() {
    let video = scene();
    let server_tasm = tasm("trace");
    ingest(&server_tasm, &video);
    let server = TasmServer::bind(
        server_tasm,
        ServiceConfig {
            workers: 2,
            queue_depth: 16,
            ..Default::default()
        },
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut conn = Connection::connect(addr).expect("connect");
    let q = Query::new(LabelPredicate::label("car")).frames(0..FRAMES);

    // Client-supplied trace id round-trips.
    let tagged = conn
        .query_traced("v", &q, Some(0xCAFE))
        .expect("tagged query");
    let trace = tagged.trace.expect("trace attached");
    assert_eq!(trace.trace_id, 0xCAFE);
    assert_eq!(trace.instance, addr.to_string());
    assert_eq!(trace.epoch, tagged.epoch);
    // The phase sum is a decomposition of (at most) the measured total:
    // total covers admission→completion and stream is measured after it.
    assert!(
        trace.phase_sum() <= trace.total_micros + trace.stream_micros,
        "phase sum {} exceeds total {} + stream {}",
        trace.phase_sum(),
        trace.total_micros,
        trace.stream_micros,
    );
    // Decode dominates a cold pixel query; the phase must be non-trivial.
    assert!(trace.decode_micros > 0, "decode phase was never measured");

    // Server-assigned ids are distinct across queries.
    let a = conn.query_traced("v", &q, None).expect("query a");
    let b = conn.query_traced("v", &q, None).expect("query b");
    let (ta, tb) = (a.trace.expect("trace a"), b.trace.expect("trace b"));
    assert_ne!(ta.trace_id, tb.trace_id);
    assert_eq!(ta.instance, addr.to_string());

    conn.goodbye().expect("goodbye");
    server.shutdown();
}
