//! Determinism tests of the parallel tile-decode execution pipeline:
//! `scan()` must produce bit-identical `RegionPixels` and consistent work
//! accounting regardless of worker count and cache state, and the
//! decoded-GOP cache must convert repeated decode work into reuse.

use tasm_core::{LabelPredicate, PartitionConfig, ScanResult, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_video::{FrameSource, Plane};

fn scene(frames: u32) -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames,
        seed: 21,
        ..SceneSpec::test_scene()
    })
}

fn tasm_with(tag: &str, workers: usize, cache_bytes: u64) -> Tasm {
    let dir = std::env::temp_dir().join(format!("tasm-par-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        workers,
        cache_bytes,
        ..Default::default()
    };
    Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap()
}

fn ingest_and_tile(tasm: &mut Tasm, video: &SyntheticVideo) {
    tasm.ingest("v", video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
        tasm.mark_processed("v", f).unwrap();
    }
    // Tile around cars so scans touch several tiles per SOT.
    tasm.kqko_retile_all("v", &["car".to_string()]).unwrap();
}

/// Pixels must be bit-identical across execution configurations.
fn assert_scans_equal(a: &ScanResult, b: &ScanResult, what: &str) {
    assert_eq!(a.regions.len(), b.regions.len(), "{what}: region count");
    for (ra, rb) in a.regions.iter().zip(&b.regions) {
        assert_eq!(ra.frame, rb.frame, "{what}: frame order");
        assert_eq!(ra.rect, rb.rect, "{what}: rects");
        for plane in Plane::ALL {
            assert_eq!(
                ra.pixels.plane(plane),
                rb.pixels.plane(plane),
                "{what}: pixels of frame {} plane {plane:?}",
                ra.frame
            );
        }
    }
}

/// Decode stats must agree in every deterministic field (wall-clock time is
/// excluded).
fn assert_work_equal(a: &ScanResult, b: &ScanResult, what: &str) {
    assert_eq!(
        a.stats.frames_decoded, b.stats.frames_decoded,
        "{what}: frames"
    );
    assert_eq!(
        a.stats.samples_decoded, b.stats.samples_decoded,
        "{what}: samples"
    );
    assert_eq!(
        a.stats.tile_chunks_decoded, b.stats.tile_chunks_decoded,
        "{what}: chunks"
    );
    assert_eq!(a.stats.bytes_read, b.stats.bytes_read, "{what}: bytes");
    assert_eq!(
        a.stats.blocks_decoded, b.stats.blocks_decoded,
        "{what}: blocks"
    );
    assert_eq!(a.work.pixels, b.work.pixels, "{what}: work pixels");
    assert_eq!(
        a.work.tile_chunks, b.work.tile_chunks,
        "{what}: work chunks"
    );
}

#[test]
fn parallel_scan_is_bit_identical_to_serial() {
    let video = scene(30);
    let pred = LabelPredicate::label("car");

    let mut serial = tasm_with("serial", 1, 0);
    ingest_and_tile(&mut serial, &video);
    let mut parallel = tasm_with("parallel", 8, 0);
    ingest_and_tile(&mut parallel, &video);

    for range in [0..30u32, 5..17, 12..13] {
        let a = serial.scan("v", &pred, range.clone()).unwrap();
        let b = parallel.scan("v", &pred, range.clone()).unwrap();
        let what = format!("workers 1 vs 8, frames {range:?}");
        assert_scans_equal(&a, &b, &what);
        assert_work_equal(&a, &b, &what);
    }
}

#[test]
fn warm_cache_returns_identical_pixels_and_reports_reuse() {
    let video = scene(30);
    let pred = LabelPredicate::label("car");

    let mut tasm = tasm_with("warm", 0, 64 << 20);
    ingest_and_tile(&mut tasm, &video);

    let cold = tasm.scan("v", &pred, 0..30).unwrap();
    assert!(cold.stats.samples_decoded > 0, "cold scan decodes");
    assert_eq!(cold.cache.hits, 0, "first touch cannot hit");

    let warm = tasm.scan("v", &pred, 0..30).unwrap();
    assert_scans_equal(&cold, &warm, "cold vs warm");
    assert!(warm.cache.hits > 0, "repeat scan must hit the cache");
    assert_eq!(
        warm.stats.samples_decoded, 0,
        "fully warm scan performs no decode work"
    );
    assert_eq!(
        warm.cache.samples_reused + warm.stats.samples_decoded,
        cold.stats.samples_decoded + cold.cache.samples_reused,
        "decoded + reused must be conserved across cache states"
    );

    // A warm scan against a disabled-cache instance is still identical.
    let mut uncached = tasm_with("uncached", 0, 0);
    ingest_and_tile(&mut uncached, &video);
    let plain = uncached.scan("v", &pred, 0..30).unwrap();
    assert_scans_equal(&plain, &warm, "uncached vs warm");
    assert_eq!(plain.cache.hits, 0);
}

#[test]
fn partial_cache_prefix_extension_is_bit_exact() {
    let video = scene(30);
    let pred = LabelPredicate::label("car");

    // Short window first: caches a GOP prefix only.
    let mut tasm = tasm_with("prefix", 0, 64 << 20);
    ingest_and_tile(&mut tasm, &video);
    let short = tasm.scan("v", &pred, 0..4).unwrap();
    assert!(short.stats.frames_decoded > 0);
    // Longer window: extends the cached prefixes by resuming mid-GOP.
    let long = tasm.scan("v", &pred, 0..10).unwrap();
    assert!(
        long.cache.frames_reused > 0,
        "prefix frames should be reused on extension"
    );

    // Reference: same long scan from a cold instance.
    let mut cold = tasm_with("prefix-cold", 0, 64 << 20);
    ingest_and_tile(&mut cold, &video);
    let reference = cold.scan("v", &pred, 0..10).unwrap();
    assert_scans_equal(&reference, &long, "prefix extension vs cold");
}

#[test]
fn retile_invalidates_cached_gops() {
    let video = scene(20);
    let pred = LabelPredicate::label("car");

    let tasm = tasm_with("invalidate", 0, 64 << 20);
    tasm.ingest("v", &video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
        tasm.mark_processed("v", f).unwrap();
    }
    let before = tasm.scan("v", &pred, 0..20).unwrap();
    assert!(tasm.scan("v", &pred, 0..20).unwrap().cache.hits > 0);

    // Retile under a new layout: cached untiled GOPs must not leak in.
    let cost = tasm.kqko_retile_all("v", &["car".to_string()]).unwrap();
    assert!(cost.encode.bytes_produced > 0, "retile happened");
    let after = tasm.scan("v", &pred, 0..20).unwrap();
    assert_eq!(after.cache.hits, 0, "post-retile scan must be cold");
    assert!(
        after.stats.samples_decoded < before.stats.samples_decoded,
        "tiled layout decodes less"
    );
    assert_eq!(after.regions.len(), before.regions.len());
}
