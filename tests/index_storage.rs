//! Integration tests of the persistent semantic index together with the
//! tile store: durability across process-style reopen, and index-driven
//! scans over stored video.

use tasm_core::{LabelPredicate, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::{PersistentIndex, SemanticIndex};
use tasm_video::{FrameSource, Rect};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tasm-is-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn persistent_index_backs_scans() {
    let dir = temp_dir("scan");
    let idx = PersistentIndex::open(&dir.join("index")).unwrap();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        ..Default::default()
    };
    let tasm = Tasm::open(dir.join("store"), Box::new(idx), cfg).unwrap();

    let video = SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames: 20,
        ..SceneSpec::test_scene()
    });
    tasm.ingest("v", &video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
    }
    let result = tasm
        .scan("v", &LabelPredicate::label("car"), 0..20)
        .unwrap();
    assert!(!result.regions.is_empty());
}

#[test]
fn index_survives_reopen_with_many_detections() {
    let dir = temp_dir("durability");
    let boxes_per_frame = 4;
    let frames = 2_000u32;
    {
        let mut idx = PersistentIndex::open(&dir).unwrap();
        for f in 0..frames {
            for i in 0..boxes_per_frame {
                idx.add_metadata(
                    0,
                    if i % 2 == 0 { "car" } else { "person" },
                    f,
                    Rect::new(10 * i, 20, 32, 32),
                )
                .unwrap();
            }
            idx.mark_processed(0, f).unwrap();
        }
        idx.flush().unwrap();
    }
    {
        let mut idx = PersistentIndex::open(&dir).unwrap();
        assert_eq!(idx.detection_count(), (frames * boxes_per_frame) as u64);
        assert_eq!(idx.processed_count(0, 0..frames).unwrap(), frames);
        let cars = idx.query(0, "car", 500..510).unwrap();
        assert_eq!(cars.len(), 20); // 2 car boxes × 10 frames
                                    // Writes continue seamlessly.
        idx.add_metadata(0, "bird", 0, Rect::new(0, 0, 8, 8))
            .unwrap();
        assert_eq!(idx.detection_count(), (frames * boxes_per_frame) as u64 + 1);
    }
}

/// A restarted process attaches stored videos without re-encoding, and the
/// persistent index still answers because video ids are name-derived and
/// stable across sessions.
#[test]
fn attach_resumes_after_restart() {
    let dir = temp_dir("attach");
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        ..Default::default()
    };
    let video = SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames: 20,
        ..SceneSpec::test_scene()
    });

    // Session 1: ingest, index, tile.
    {
        let idx = PersistentIndex::open(&dir.join("index")).unwrap();
        let mut tasm = Tasm::open(dir.join("store"), Box::new(idx), cfg.clone()).unwrap();
        tasm.ingest("cam", &video, 30).unwrap();
        for f in 0..video.len() {
            for (l, b) in video.ground_truth(f) {
                tasm.add_metadata("cam", l, f, b).unwrap();
            }
        }
        tasm.kqko_retile_all("cam", &["car".to_string()]).unwrap();
        tasm.index_mut().flush().unwrap();
    }

    // Session 2: attach — no re-encode, layouts preserved, scans work.
    {
        let idx = PersistentIndex::open(&dir.join("index")).unwrap();
        let tasm = Tasm::open(dir.join("store"), Box::new(idx), cfg).unwrap();
        assert!(tasm.has_stored_video("cam"));
        assert!(!tasm.has_stored_video("other"));
        tasm.attach("cam").unwrap();
        let m = tasm.manifest("cam").unwrap();
        assert!(
            m.sots.iter().any(|s| !s.layout.is_untiled()),
            "tiled layouts must survive the restart"
        );
        let r = tasm
            .scan("cam", &LabelPredicate::label("car"), 0..20)
            .unwrap();
        assert!(
            !r.regions.is_empty(),
            "index must still resolve after restart"
        );
    }
}

#[test]
fn store_and_index_agree_after_reload() {
    // Manifest reload from disk yields the same SOT structure TASM had in
    // memory, so a "restarted" system can keep answering queries.
    let dir = temp_dir("reload");
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        ..Default::default()
    };
    let video = SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames: 30,
        ..SceneSpec::test_scene()
    });

    let manifest_before = {
        let idx = PersistentIndex::open(&dir.join("index")).unwrap();
        let mut tasm = Tasm::open(dir.join("store"), Box::new(idx), cfg.clone()).unwrap();
        tasm.ingest("v", &video, 30).unwrap();
        for f in 0..video.len() {
            for (l, b) in video.ground_truth(f) {
                tasm.add_metadata("v", l, f, b).unwrap();
            }
        }
        tasm.kqko_retile_all("v", &["car".to_string()]).unwrap();
        tasm.index_mut().flush().unwrap();
        tasm.manifest("v").unwrap().clone()
    };

    // "Restart": reload manifest directly from the store directory.
    let store = tasm_core::VideoStore::open(dir.join("store")).unwrap();
    let manifest_after = store.load_manifest("v").unwrap();
    assert_eq!(manifest_before, manifest_after);
    assert!(manifest_after.sots.iter().any(|s| !s.layout.is_untiled()));

    // And the persistent index still knows the labels (video ids are
    // name-derived, so a fresh session resolves the same id).
    let idx = PersistentIndex::open(&dir.join("index")).unwrap();
    let mut tasm = Tasm::open(dir.join("store"), Box::new(idx), cfg).unwrap();
    let id = tasm.attach("v").unwrap();
    let labels = tasm.index_mut().labels(id).unwrap();
    assert!(labels.contains(&"car".to_string()));
}
