//! Panic isolation in the serving layer, on both engines.
//!
//! The contract under test: a panic inside query execution (injected via
//! `ServiceConfig::test_panic_injector`) is a *per-query* failure — the
//! submitting session receives a typed `Internal` error frame and keeps
//! serving subsequent queries bit-exactly, other sessions are untouched,
//! no in-flight slot leaks (shutdown drains cleanly instead of hanging on
//! a stranded counter), and no lock poisoned by the unwinding worker
//! cascades into later queries. Regression tests for two historical bugs:
//! the inflight counter leaking when a waiter thread panicked, and
//! `.expect("writer lock")`-style poison propagation taking a whole
//! session down after one panicked query.

use std::sync::Arc;
use tasm_client::{ClientError, Connection};
use tasm_core::{
    LabelPredicate, PartitionConfig, Query, StorageConfig, Tasm, TasmConfig,
};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_proto::ErrorCode;
use tasm_server::{ServeEngine, ServerConfig, TasmServer};
use tasm_service::{QueryRequest, ServiceConfig};
use tasm_suite::assert_regions_identical;
use tasm_video::FrameSource;

const FRAMES: u32 = 60;

/// Queries for this label panic inside the worker instead of executing.
const POISON_LABEL: &str = "panic-me";

fn inject(req: &QueryRequest) -> bool {
    req.query.predicate().labels().contains(&POISON_LABEL)
}

fn scene() -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 256,
        height: 160,
        frames: FRAMES,
        seed: 47,
        ..SceneSpec::test_scene()
    })
}

fn tasm(tag: &str) -> Arc<Tasm> {
    let dir = std::env::temp_dir().join(format!("tasm-panic-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        workers: 1,
        cache_bytes: 64 << 20,
        ..Default::default()
    };
    Arc::new(Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap())
}

fn ingest(tasm: &Tasm, video: &SyntheticVideo) {
    tasm.ingest("v", video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
        tasm.mark_processed("v", f).unwrap();
    }
}

/// The shared scenario: interleave panicking and healthy queries on one
/// session, check the panic surfaces as a typed `Internal` rejection and
/// everything after it still matches the in-process reference, then check
/// shutdown accounting (no stranded in-flight slot, workers alive).
fn panicked_query_is_isolated(engine: ServeEngine) {
    let video = scene();
    let server_tasm = tasm(match engine {
        ServeEngine::Reactor => "iso-server-r",
        ServeEngine::Threads => "iso-server-t",
    });
    ingest(&server_tasm, &video);
    let twin = tasm(match engine {
        ServeEngine::Reactor => "iso-twin-r",
        ServeEngine::Threads => "iso-twin-t",
    });
    ingest(&twin, &video);

    let server = TasmServer::bind(
        Arc::clone(&server_tasm),
        ServiceConfig {
            workers: 2,
            queue_depth: 16,
            test_panic_injector: Some(inject),
            ..Default::default()
        },
        ServerConfig {
            engine,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let mut conn = Connection::connect(addr).expect("connect");
    let healthy = Query::new(LabelPredicate::label("car")).frames(0..FRAMES);
    let poisoned = Query::new(LabelPredicate::label(POISON_LABEL)).frames(0..FRAMES);

    // Healthy → panic → healthy, three times over: each panicked query is
    // rejected with a typed error and the *same session* keeps serving
    // bit-exact results afterwards.
    for round in 0..3 {
        let what = format!("round {round} before panic");
        let before = conn.query("v", &healthy).expect("healthy query");
        let reference = twin.query("v", &healthy).expect("twin query");
        assert_eq!(before.matched, reference.matched, "{what}: matched");
        let expected: Vec<_> = reference.regions.iter().collect();
        assert_regions_identical(&expected, &before.regions, &what);

        match conn.query("v", &poisoned) {
            Err(ClientError::Rejected { code, .. }) => {
                assert_eq!(
                    code,
                    ErrorCode::Internal,
                    "round {round}: a panicked query fails with a typed Internal error"
                );
            }
            other => panic!("round {round}: expected typed rejection, got {other:?}"),
        }

        let what = format!("round {round} after panic");
        let after = conn.query("v", &healthy).expect("session must survive the panic");
        assert_eq!(after.matched, reference.matched, "{what}: matched");
        let expected: Vec<_> = reference.regions.iter().collect();
        assert_regions_identical(&expected, &after.regions, &what);
    }

    // A *second* session opened after the panics is also unaffected —
    // nothing process-wide (a poisoned lock, a dead worker) leaked out.
    let mut conn2 = Connection::connect(addr).expect("second connect");
    let fresh = conn2.query("v", &healthy).expect("fresh session query");
    let reference = twin.query("v", &healthy).expect("twin query");
    assert_eq!(fresh.matched, reference.matched);
    conn2.goodbye().expect("goodbye");
    conn.goodbye().expect("goodbye");

    // Shutdown must drain promptly: a leaked inflight slot (the historical
    // bug) would strand the drain wait. Run it on a watchdog thread so a
    // regression fails the test instead of hanging the suite.
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let report = server.shutdown();
        tx.send(()).unwrap();
        report
    });
    rx.recv_timeout(std::time::Duration::from_secs(30))
        .expect("shutdown must drain; a hang here means an inflight slot leaked");
    let report = handle.join().unwrap();
    assert_eq!(report.sessions_served, 2);
    let stats = report.service.stats;
    assert_eq!(stats.failed, 3, "exactly the injected panics fail");
    assert_eq!(stats.completed, 3 * 2 + 1, "every healthy query completes");
    assert_eq!(report.service.abandoned, 0, "no query abandoned at drain");
}

#[test]
fn panicked_query_is_isolated_reactor() {
    panicked_query_is_isolated(ServeEngine::Reactor);
}

#[test]
fn panicked_query_is_isolated_threads() {
    panicked_query_is_isolated(ServeEngine::Threads);
}

/// Counts this process's threads via `/proc/self/status` (Linux only —
/// elsewhere the check is skipped and the test asserts only connectivity).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// The reactor's headline scaling property: session count does not show up
/// in the thread count. With dozens of idle-but-connected sessions the
/// process grows O(workers) threads, not O(connections) — the regression
/// this guards against is the thread-per-connection engine sneaking back
/// in as the default.
#[test]
fn reactor_threads_scale_with_workers_not_connections() {
    let video = scene();
    let server_tasm = tasm("threads");
    ingest(&server_tasm, &video);

    let server = TasmServer::bind(
        Arc::clone(&server_tasm),
        ServiceConfig {
            workers: 2,
            queue_depth: 32,
            ..Default::default()
        },
        ServerConfig {
            engine: ServeEngine::Reactor,
            max_connections: 256,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let baseline = thread_count();
    const SESSIONS: usize = 64;
    let mut conns: Vec<Connection> = (0..SESSIONS)
        .map(|_| Connection::connect(addr).expect("connect"))
        .collect();
    // Every session works once, proving all 64 are live multiplexed
    // sessions rather than queued accepts.
    let q = Query::new(LabelPredicate::label("car"))
        .frames(0..FRAMES)
        .mode(tasm_core::QueryMode::Count);
    for conn in &mut conns {
        conn.query("v", &q).expect("query on each session");
    }

    if let (Some(before), Some(now)) = (baseline, thread_count()) {
        let grown = now.saturating_sub(before);
        assert!(
            grown < SESSIONS / 2,
            "64 sessions must not add O(connections) threads \
             (baseline {before}, now {now}: +{grown})"
        );
    }

    for conn in conns {
        conn.goodbye().expect("goodbye");
    }
    let report = server.shutdown();
    assert_eq!(report.sessions_served as usize, SESSIONS);
    assert_eq!(report.service.stats.failed, 0);
}
