//! Property tests of the TVF container readers: corrupt or truncated
//! input — torn tails, bit-flipped headers, garbage — must surface as
//! typed [`ContainerError`]s, never as panics, and [`TileVideo::validate`]
//! must accept exactly the bytes the writer produced.
//!
//! This is the on-disk analogue of `tests/wire_protocol.rs`: tile files
//! are what `tasm fsck` reads back after a crash, so the reader is the
//! last line of defense against a torn write that slipped past recovery.

use proptest::run_cases;
use rand::rngs::StdRng;
use rand::Rng;
use tasm_codec::{ContainerError, EncoderConfig, TileCodec, TileEncoder, TileVideo};
use tasm_video::{Frame, Plane, Rect};

const CASES: u32 = 48;

/// Encodes a small deterministic-but-arbitrary tile video: even dims,
/// textured frames with a moving patch so keyframes and P-frames both
/// carry real payload.
fn arb_tile_video(rng: &mut StdRng) -> TileVideo {
    let w = rng.gen_range(1u32..4) * 16;
    let h = rng.gen_range(1u32..4) * 16;
    let gop = rng.gen_range(1u32..6);
    let frames = rng.gen_range(1u32..11);
    let cfg = EncoderConfig {
        gop_len: gop,
        qp: rng.gen_range(10u32..40) as u8,
        ..Default::default()
    };
    let mut enc = TileEncoder::new(cfg, Rect::new(0, 0, w, h));
    let phase = rng.gen_range(0u32..16);
    let encoded = (0..frames)
        .map(|i| {
            let mut f = Frame::filled(w, h, 100, 128, 128);
            for y in 0..h {
                for x in 0..w {
                    f.set_sample(Plane::Y, x, y, ((x * 7 + y * 13 + phase) % 200 + 20) as u8);
                }
            }
            if w >= 8 && h >= 8 {
                f.fill_rect(Rect::new((i * 2) % (w - 4), 2, 4, 4), 230, 90, 160);
            }
            enc.encode_next(&f)
        })
        .collect();
    TileVideo {
        width: w,
        height: h,
        gop_len: gop,
        qp: cfg.qp,
        deblock: cfg.deblock,
        codec: TileCodec::Dct,
        frames: encoded,
    }
}

/// `validate` accepts exactly what the writer produced, reports the header
/// faithfully, and agrees with `from_bytes` about the content.
#[test]
fn validate_accepts_writer_output_exactly() {
    run_cases(CASES, proptest::seed_for("validate"), |rng| {
        let v = arb_tile_video(rng);
        let bytes = v.to_bytes();
        let h = TileVideo::validate(&bytes).expect("writer output validates");
        assert_eq!(h.width, v.width);
        assert_eq!(h.height, v.height);
        assert_eq!(h.gop_len, v.gop_len);
        assert_eq!(h.qp, v.qp);
        assert_eq!(h.deblock, v.deblock);
        assert_eq!(h.frame_count, v.frame_count());
        assert_eq!(h.declared_len, bytes.len() as u64);
        assert_eq!(TileVideo::from_bytes(&bytes).expect("parses"), v);

        // Appended garbage breaks the exact-length contract.
        let mut longer = bytes.to_vec();
        longer.extend_from_slice(&[0u8; 3]);
        assert!(TileVideo::validate(&longer).is_err());
    });
}

/// Every strict prefix — a torn tail at any byte — fails both readers with
/// a typed error; none panics, none silently succeeds.
#[test]
fn torn_tails_fail_with_typed_errors() {
    run_cases(CASES, proptest::seed_for("torn"), |rng| {
        let v = arb_tile_video(rng);
        let bytes = v.to_bytes();
        // Exhaustive for small containers, sampled for large ones.
        let cuts: Vec<usize> = if bytes.len() <= 96 {
            (0..bytes.len()).collect()
        } else {
            let mut c: Vec<usize> = (0..64)
                .map(|_| rng.gen_range(0usize..bytes.len()))
                .collect();
            c.extend([0, 1, 22, 23, bytes.len() - 1]);
            c
        };
        for cut in cuts {
            assert!(
                TileVideo::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} parsed",
                bytes.len()
            );
            assert!(
                matches!(
                    TileVideo::validate(&bytes[..cut]),
                    Err(ContainerError::Truncated)
                        | Err(ContainerError::BadMagic)
                        | Err(ContainerError::InvalidHeader(_))
                ),
                "prefix of {cut}/{} validated",
                bytes.len()
            );
        }
    });
}

/// Bit flips in the header and frame table never panic the readers: they
/// parse to something or fail with a typed error.
#[test]
fn bit_flipped_headers_never_panic() {
    run_cases(CASES, proptest::seed_for("flip"), |rng| {
        let v = arb_tile_video(rng);
        let mut bytes = v.to_bytes().to_vec();
        let prelude_len = (23 + v.frame_count() as usize * 6).min(bytes.len());
        for _ in 0..4 {
            let at = rng.gen_range(0usize..prelude_len);
            bytes[at] ^= 1 << rng.gen_range(0u32..8);
        }
        let _ = TileVideo::from_bytes(&bytes); // must not panic
        let _ = TileVideo::validate(&bytes); // must not panic
    });
}

/// Arbitrary garbage — not even a TVF prefix — is rejected with typed
/// errors at any length, including lengths that would imply enormous frame
/// tables.
#[test]
fn garbage_input_is_rejected() {
    run_cases(CASES, proptest::seed_for("garbage"), |rng| {
        let len = rng.gen_range(0usize..128);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let _ = TileVideo::from_bytes(&garbage);
        let _ = TileVideo::validate(&garbage);
    });
    // A well-formed header declaring a frame table far larger than the
    // buffer must be truncation, not an allocation attempt.
    let v = {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(proptest::seed_for("huge"));
        arb_tile_video(&mut rng)
    };
    let mut bytes = v.to_bytes().to_vec();
    bytes[19..23].copy_from_slice(&u32::MAX.to_le_bytes()); // frame count
    assert_eq!(
        TileVideo::from_bytes(&bytes).unwrap_err(),
        ContainerError::Truncated
    );
    assert_eq!(
        TileVideo::validate(&bytes).unwrap_err(),
        ContainerError::Truncated
    );
}
