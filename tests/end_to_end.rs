//! End-to-end integration: synthetic corpus → detector → semantic index →
//! tiled storage → `Scan`, across all crates.

use tasm_core::{LabelPredicate, PartitionConfig, StorageConfig, Tasm, TasmConfig};
use tasm_data::{Dataset, SceneSpec, SyntheticVideo};
use tasm_detect::yolo::SimulatedYolo;
use tasm_detect::Detector;
use tasm_index::MemoryIndex;
use tasm_video::{FrameSource, Plane};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tasm-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn small_tasm(tag: &str) -> Tasm {
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            parallel_encode: true,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 64,
            min_tile_height: 32,
            ..Default::default()
        },
        ..Default::default()
    };
    Tasm::open(temp_dir(tag), Box::new(MemoryIndex::in_memory()), cfg).unwrap()
}

/// The full pipeline the paper's Figure 2 describes: ingest, detect during
/// query processing, add metadata, scan for objects, verify pixels.
#[test]
fn full_pipeline_scan_returns_object_pixels() {
    let video = SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames: 30,
        ..SceneSpec::test_scene()
    });
    let tasm = small_tasm("pipeline");
    tasm.ingest("traffic", &video, 30).unwrap();

    // Query processor detects objects as a byproduct and feeds the index.
    let mut yolo = SimulatedYolo::full(42);
    for f in 0..video.len() {
        let truth = video.ground_truth(f);
        for det in yolo.detect(f, None, &truth) {
            tasm.add_metadata("traffic", &det.label, f, det.bbox)
                .unwrap();
        }
        tasm.mark_processed("traffic", f).unwrap();
    }

    let result = tasm
        .scan("traffic", &LabelPredicate::label("car"), 0..30)
        .unwrap();
    assert!(!result.regions.is_empty(), "cars should be found");
    assert!(result.stats.samples_decoded > 0);
    // Every returned region corresponds to a frame within the range and
    // carries plausible pixel content (non-uniform).
    for r in &result.regions {
        assert!(r.frame < 30);
        let y = r.pixels.plane(Plane::Y);
        let min = y.iter().min().unwrap();
        let max = y.iter().max().unwrap();
        assert!(max > min, "region should have texture");
    }
}

/// Tiling around the queried object reduces decode work but returns the
/// same regions (the core value proposition, Figure 6(a)).
#[test]
fn tiling_reduces_decode_work_without_changing_results() {
    let video = SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames: 20,
        ..SceneSpec::test_scene()
    });
    let tasm = small_tasm("reduction");
    tasm.ingest("v", &video, 30).unwrap();
    for f in 0..video.len() {
        for (label, bbox) in video.ground_truth(f) {
            tasm.add_metadata("v", label, f, bbox).unwrap();
        }
    }

    let before = tasm
        .scan("v", &LabelPredicate::label("person"), 0..20)
        .unwrap();
    tasm.kqko_retile_all("v", &["person".to_string()]).unwrap();
    let after = tasm
        .scan("v", &LabelPredicate::label("person"), 0..20)
        .unwrap();

    assert_eq!(before.regions.len(), after.regions.len());
    for (a, b) in before.regions.iter().zip(&after.regions) {
        assert_eq!(a.frame, b.frame);
        assert_eq!(a.rect, b.rect);
    }
    assert!(
        after.stats.samples_decoded < before.stats.samples_decoded,
        "tiling must reduce decode: {} -> {}",
        before.stats.samples_decoded,
        after.stats.samples_decoded
    );
}

/// CNF predicates: disjunction retrieves both classes; conjunction with a
/// non-existent label retrieves nothing.
#[test]
fn cnf_predicates_compose() {
    let video = SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames: 10,
        ..SceneSpec::test_scene()
    });
    let tasm = small_tasm("cnf");
    tasm.ingest("v", &video, 30).unwrap();
    for f in 0..video.len() {
        for (label, bbox) in video.ground_truth(f) {
            tasm.add_metadata("v", label, f, bbox).unwrap();
        }
    }

    let cars = tasm
        .scan("v", &LabelPredicate::label("car"), 0..10)
        .unwrap();
    let people = tasm
        .scan("v", &LabelPredicate::label("person"), 0..10)
        .unwrap();
    let either = tasm
        .scan("v", &LabelPredicate::any_of(&["car", "person"]), 0..10)
        .unwrap();
    assert_eq!(
        either.regions.len(),
        cars.regions.len() + people.regions.len()
    );

    let none = tasm
        .scan("v", &LabelPredicate::label("car").and(&["unicorn"]), 0..10)
        .unwrap();
    assert!(none.regions.is_empty());
    assert_eq!(
        none.stats.samples_decoded, 0,
        "no tiles decoded for empty result"
    );
}

/// Datasets from the Table 1 presets flow through the whole system.
#[test]
fn dataset_presets_ingest_and_scan() {
    let video = Dataset::VisualRoad2K.build(1, 7);
    let tasm = small_tasm("dataset");
    tasm.ingest("vr", &video, 30).unwrap();
    for f in 0..video.len() {
        for (label, bbox) in video.ground_truth(f) {
            tasm.add_metadata("vr", label, f, bbox).unwrap();
        }
    }
    let result = tasm
        .scan("vr", &LabelPredicate::label("car"), 0..30)
        .unwrap();
    assert!(!result.regions.is_empty());
    // Untiled: scanning decodes full frames (with chroma).
    let per_frame = 640 * 352 * 3 / 2;
    assert!(result.stats.samples_decoded >= per_frame);
}

/// Temporal predicates restrict decode to the covering SOTs.
#[test]
fn temporal_predicate_limits_decode() {
    let video = SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames: 40,
        ..SceneSpec::test_scene()
    });
    let tasm = small_tasm("temporal");
    tasm.ingest("v", &video, 30).unwrap();
    for f in 0..video.len() {
        for (label, bbox) in video.ground_truth(f) {
            tasm.add_metadata("v", label, f, bbox).unwrap();
        }
    }
    let narrow = tasm
        .scan("v", &LabelPredicate::label("car"), 10..15)
        .unwrap();
    let wide = tasm
        .scan("v", &LabelPredicate::label("car"), 0..40)
        .unwrap();
    assert!(narrow.stats.samples_decoded < wide.stats.samples_decoded);
    assert!(narrow.regions.iter().all(|r| (10..15).contains(&r.frame)));
}
