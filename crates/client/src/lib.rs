//! # tasm-client: the blocking TASM wire client
//!
//! Connects to a `tasm-server`, speaks the `tasm-proto` handshake, and
//! executes remote [`Query`]s — the full surface including ROI, stride,
//! limit, and the aggregate modes — returning the same [`RegionPixels`]
//! an in-process `Tasm::query` would, bit for bit.
//!
//! Two layers:
//!
//! * [`Connection`] — one blocking session: `query`, `stats`,
//!   `shutdown_server`, `goodbye`. One query in flight at a time; typed
//!   server rejections (BUSY, in-flight cap, shutdown, …) surface as
//!   [`ClientError::Rejected`] with the wire's [`ErrorCode`].
//! * [`LoadGen`] — a connection-pooled multi-threaded load generator: `n`
//!   worker threads, each with its own connection, drain a shared request
//!   counter and record client-observed latencies into a merged
//!   [`LatencyHistogram`] ([`LoadReport`]).
//!
//! ```no_run
//! use tasm_client::Connection;
//! use tasm_core::{LabelPredicate, Query};
//!
//! let mut conn = Connection::connect("127.0.0.1:7743").unwrap();
//! let outcome = conn
//!     .query("traffic", &Query::new(LabelPredicate::label("car")).frames(0..300).stride(5))
//!     .unwrap();
//! println!("{} regions in {:?}", outcome.regions.len(), outcome.latency);
//! ```

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tasm_core::{PlanStats, Query, RegionPixels};
use tasm_proto::{ErrorCode, Message, ProtoError, ReplicationRecord, ResultSummary, VERSION};
use tasm_service::{LatencyHistogram, ServiceStats};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// The peer sent bytes that do not decode as protocol frames.
    Proto(ProtoError),
    /// The server refused the request with a typed error frame.
    Rejected {
        /// The wire error code (BUSY, TooManyInflight, ShuttingDown, …).
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with a frame the session state does not allow
    /// (protocol violation).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Rejected { code, message } => {
                write!(f, "server refused: {code} ({message})")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected server frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Proto(other),
        }
    }
}

impl ClientError {
    /// True when the server sent the typed BUSY rejection (submission
    /// queue full) — the retryable admission-control outcome.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ClientError::Rejected {
                code: ErrorCode::Busy,
                ..
            }
        )
    }
}

/// A completed remote query.
#[derive(Debug, Clone)]
pub struct RemoteOutcome {
    /// Regions matching the query, bit-identical to the in-process
    /// `Tasm::query` result for the same query. Empty for the aggregate
    /// modes, which report [`RemoteOutcome::matched`] without pixels.
    pub regions: Vec<RegionPixels>,
    /// Number of matching regions (label ∧ ROI ∧ stride ∧ limit).
    pub matched: u64,
    /// Server-side planner accounting.
    pub plan: PlanStats,
    /// Server-side decode/cache/dedup accounting.
    pub summary: ResultSummary,
    /// The layout epoch the server executed the query against (the pinned
    /// epoch for `AS OF` queries, otherwise the epoch current at plan
    /// time).
    pub epoch: u64,
    /// Client-observed request latency (send → final frame).
    pub latency: Duration,
    /// The server's per-phase execution trace (queue/plan/decode/stream),
    /// tagged with the serving instance and executed epoch. `None` only
    /// when talking to a pre-tracing server build.
    pub trace: Option<tasm_proto::QueryTrace>,
}

/// One blocking protocol session over TCP.
pub struct Connection {
    stream: TcpStream,
    /// Server-advertised per-session in-flight cap (informational for a
    /// blocking connection, which keeps at most one).
    max_inflight: u32,
    next_id: u64,
}

impl Connection {
    /// Connects and performs the version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Connection, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Message::ClientHello { version: VERSION }.write_to(&mut stream)?;
        match Message::read_from(&mut stream)? {
            Message::ServerHello {
                version: _,
                max_inflight,
            } => Ok(Connection {
                stream,
                max_inflight,
                next_id: 0,
            }),
            Message::Error { code, message, .. } => Err(ClientError::Rejected { code, message }),
            _ => Err(ClientError::Unexpected("handshake reply")),
        }
    }

    /// [`Connection::connect`] with a bound on the TCP connect itself —
    /// health checks and failover probes use this so a dead node costs a
    /// bounded wait instead of the kernel-default connect timeout.
    pub fn connect_timeout(
        addr: &std::net::SocketAddr,
        timeout: Duration,
    ) -> Result<Connection, ClientError> {
        let mut stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true).ok();
        // Bound the handshake round trip too; the caller may relax or
        // tighten I/O timeouts afterwards via `set_io_timeout`.
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Message::ClientHello { version: VERSION }.write_to(&mut stream)?;
        match Message::read_from(&mut stream)? {
            Message::ServerHello {
                version: _,
                max_inflight,
            } => {
                stream.set_read_timeout(None)?;
                stream.set_write_timeout(None)?;
                Ok(Connection {
                    stream,
                    max_inflight,
                    next_id: 0,
                })
            }
            Message::Error { code, message, .. } => Err(ClientError::Rejected { code, message }),
            _ => Err(ClientError::Unexpected("handshake reply")),
        }
    }

    /// Bounds every subsequent socket read and write (`None` removes the
    /// bound). The router applies this to its shard connections so a hung
    /// shard surfaces as a timeout — and triggers failover — instead of
    /// pinning a routed query forever.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// The per-session in-flight cap the server advertised at handshake.
    pub fn max_inflight(&self) -> u32 {
        self.max_inflight
    }

    /// Executes one query remotely, blocking until the response stream
    /// completes. Typed server rejections (including BUSY under
    /// backpressure) come back as [`ClientError::Rejected`].
    pub fn query(&mut self, video: &str, query: &Query) -> Result<RemoteOutcome, ClientError> {
        self.query_traced(video, query, None)
    }

    /// [`Connection::query`] with a client-chosen trace id stamped on the
    /// request (`None` lets the server assign one at admission). The id
    /// comes back on [`RemoteOutcome::trace`], which lets a caller — the
    /// CLI's `--explain`, for one — correlate its own records with the
    /// server's slow-query log.
    pub fn query_traced(
        &mut self,
        video: &str,
        query: &Query,
        trace_id: Option<u64>,
    ) -> Result<RemoteOutcome, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let t0 = Instant::now();
        Message::Query {
            id,
            video: video.to_string(),
            query: query.clone(),
            trace_id,
        }
        .write_to(&mut self.stream)?;

        let (matched, expect_regions, plan, epoch) = match self.read_for(id)? {
            Message::ResultHeader {
                matched,
                regions,
                plan,
                epoch,
                ..
            } => (matched, regions, plan, epoch),
            _ => return Err(ClientError::Unexpected("expected result header")),
        };
        let mut regions = Vec::with_capacity(expect_regions.min(4096) as usize);
        for _ in 0..expect_regions {
            match self.read_for(id)? {
                Message::Region { region, .. } => regions.push(region),
                _ => return Err(ClientError::Unexpected("expected region frame")),
            }
        }
        match self.read_for(id)? {
            Message::ResultDone { summary, trace, .. } => Ok(RemoteOutcome {
                regions,
                matched,
                plan,
                summary,
                epoch,
                latency: t0.elapsed(),
                trace,
            }),
            _ => Err(ClientError::Unexpected("expected result-done frame")),
        }
    }

    /// Fetches the server's aggregate service statistics (including the
    /// submit→complete latency histogram).
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        Message::StatsRequest.write_to(&mut self.stream)?;
        match Message::read_from(&mut self.stream)? {
            Message::StatsReply { stats } => Ok(*stats),
            Message::Error { code, message, .. } => Err(ClientError::Rejected { code, message }),
            _ => Err(ClientError::Unexpected("expected stats reply")),
        }
    }

    /// Asks the server to shut down gracefully (drain in-flight queries,
    /// stop the retile daemon, exit). Resolves once the server
    /// acknowledges.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        Message::ShutdownServer.write_to(&mut self.stream)?;
        match Message::read_from(&mut self.stream)? {
            Message::Goodbye => Ok(()),
            Message::Error { code, message, .. } => Err(ClientError::Rejected { code, message }),
            _ => Err(ClientError::Unexpected("expected shutdown ack")),
        }
    }

    /// Ships one replication record and waits for the receiver's durable
    /// acknowledgement (the primary→backup half of cluster replication).
    pub fn replicate(&mut self, record: ReplicationRecord) -> Result<(), ClientError> {
        let seq = self.next_seq();
        Message::Replicate { seq, record }.write_to(&mut self.stream)?;
        self.expect_ack(seq)
    }

    /// Fetches a video's manifest as canonical JSON bytes, for replica
    /// verification (two nodes at the same layout epoch return identical
    /// bytes).
    pub fn manifest(&mut self, video: &str) -> Result<Vec<u8>, ClientError> {
        Message::ManifestRequest {
            video: video.to_string(),
        }
        .write_to(&mut self.stream)?;
        match Message::read_from(&mut self.stream)? {
            Message::ManifestReply { manifest, .. } => Ok(manifest),
            Message::Error { code, message, .. } => Err(ClientError::Rejected { code, message }),
            _ => Err(ClientError::Unexpected("expected manifest reply")),
        }
    }

    /// Asks the node to replicate `video` in full to the node at `target`
    /// (the rebalance copy step, driven by the node that owns the bytes).
    pub fn push_video(&mut self, video: &str, target: &str) -> Result<(), ClientError> {
        let seq = self.next_seq();
        Message::PushVideo {
            seq,
            video: video.to_string(),
            target: target.to_string(),
        }
        .write_to(&mut self.stream)?;
        self.expect_ack(seq)
    }

    /// Asks the node to drop `video` once in-flight queries drain (the
    /// rebalance GC step).
    pub fn remove_video(&mut self, video: &str) -> Result<(), ClientError> {
        let seq = self.next_seq();
        Message::RemoveVideo {
            seq,
            video: video.to_string(),
        }
        .write_to(&mut self.stream)?;
        self.expect_ack(seq)
    }

    fn next_seq(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn expect_ack(&mut self, seq: u64) -> Result<(), ClientError> {
        match Message::read_from(&mut self.stream)? {
            Message::ReplicateAck { seq: got } if got == seq => Ok(()),
            Message::ReplicateAck { .. } => {
                Err(ClientError::Unexpected("ack for a different record"))
            }
            Message::Error { code, message, .. } => Err(ClientError::Rejected { code, message }),
            _ => Err(ClientError::Unexpected("expected replicate ack")),
        }
    }

    /// Closes the session cleanly.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        Message::Goodbye.write_to(&mut self.stream)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads the next frame belonging to request `id`, unwrapping typed
    /// error frames into [`ClientError::Rejected`].
    fn read_for(&mut self, id: u64) -> Result<Message, ClientError> {
        let msg = Message::read_from(&mut self.stream)?;
        match msg {
            Message::Error { code, message, .. } => Err(ClientError::Rejected { code, message }),
            Message::ResultHeader { id: got, .. }
            | Message::Region { id: got, .. }
            | Message::ResultDone { id: got, .. }
                if got != id =>
            {
                Err(ClientError::Unexpected("response for a different request"))
            }
            other => Ok(other),
        }
    }
}

/// Configuration of the pooled load generator.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Worker threads, each with its own connection.
    pub connections: usize,
    /// Total requests to issue across the pool.
    pub requests: u64,
    /// Video every request targets.
    pub video: String,
    /// Base query; [`LoadGenConfig::window`] slides its frame range per
    /// request so the pool exercises overlapping-but-distinct work.
    pub query: Query,
    /// Width of the sliding per-request frame window (`0` keeps the base
    /// query's range fixed).
    pub window: u32,
    /// Frame count of the target video (bounds the sliding window).
    pub frames: u32,
    /// Pause before retrying after a BUSY rejection.
    pub busy_backoff: Duration,
    /// Extra reconnect attempts (beyond the first) a worker makes after a
    /// transport failure, pausing [`LoadGenConfig::busy_backoff`] between
    /// attempts. Router awareness: during a shard failover or a router
    /// restart the listener may refuse connections for a moment — retrying
    /// rides the workload through instead of abandoning the worker.
    pub reconnect_attempts: u32,
}

/// Aggregate outcome of a load-generation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// Requests that completed successfully.
    pub completed: u64,
    /// Typed BUSY rejections observed (each is retried).
    pub busy: u64,
    /// Requests that failed for any other reason.
    pub failed: u64,
    /// Successful reconnects after transport failures (failover events the
    /// pool rode through).
    pub reconnects: u64,
    /// Regions returned across all requests.
    pub regions: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Client-observed per-request latency distribution (merged across
    /// workers).
    pub latency: LatencyHistogram,
}

impl LoadReport {
    /// Completed requests per second of wall clock.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }
}

/// A connection-pooled, multi-threaded load generator.
pub struct LoadGen {
    cfg: LoadGenConfig,
}

impl LoadGen {
    /// A generator for `cfg`.
    pub fn new(cfg: LoadGenConfig) -> Self {
        LoadGen { cfg }
    }

    /// Runs the workload against `addr`: `connections` workers drain a
    /// shared counter of `requests`, sliding each request's frame window
    /// deterministically, retrying BUSY rejections after
    /// [`LoadGenConfig::busy_backoff`], and recording every completed
    /// request's latency.
    pub fn run(&self, addr: impl ToSocketAddrs) -> Result<LoadReport, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Io(std::io::Error::other("no address resolved")))?;
        let next = Arc::new(AtomicU64::new(0));
        let t0 = Instant::now();
        let mut report = LoadReport::default();
        // One worker's hard failure (e.g. its connection slot refused, or
        // a reconnect that did not come back) must not discard the results
        // the rest of the pool produced; the error is surfaced only when
        // the whole run achieved nothing.
        let mut first_error: Option<ClientError> = None;
        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for _ in 0..self.cfg.connections.max(1) {
                let next = Arc::clone(&next);
                let cfg = &self.cfg;
                workers.push(scope.spawn(move || worker(addr, cfg, &next)));
            }
            for w in workers {
                let (partial, error) = w.join().expect("loadgen worker panicked");
                report.completed += partial.completed;
                report.busy += partial.busy;
                report.failed += partial.failed;
                report.reconnects += partial.reconnects;
                report.regions += partial.regions;
                report.latency += partial.latency;
                if first_error.is_none() {
                    first_error = error;
                }
            }
        });
        report.elapsed = t0.elapsed();
        match first_error {
            Some(e) if report.completed == 0 => Err(e),
            _ => Ok(report),
        }
    }
}

/// One pool worker: owns a connection, reconnects once per hard failure.
/// Returns whatever it completed plus the error that stopped it early, if
/// any — partial progress is never discarded.
fn worker(
    addr: std::net::SocketAddr,
    cfg: &LoadGenConfig,
    next: &AtomicU64,
) -> (LoadReport, Option<ClientError>) {
    let mut report = LoadReport::default();
    let mut conn = match Connection::connect(addr) {
        Ok(conn) => conn,
        Err(e) => return (report, Some(e)),
    };
    loop {
        let seq = next.fetch_add(1, Ordering::Relaxed);
        if seq >= cfg.requests {
            break;
        }
        let query = query_for(cfg, seq);
        // Retry BUSY until this request lands; admission control sheds
        // load by making the client wait, not by dropping work.
        loop {
            match conn.query(&cfg.video, &query) {
                Ok(outcome) => {
                    report.completed += 1;
                    report.regions += outcome.regions.len() as u64;
                    report.latency.record(outcome.latency);
                    break;
                }
                Err(e) if e.is_busy() => {
                    report.busy += 1;
                    std::thread::sleep(cfg.busy_backoff);
                }
                Err(ClientError::Rejected { .. }) => {
                    // A typed rejection leaves the stream on a frame
                    // boundary; the connection stays usable.
                    report.failed += 1;
                    break;
                }
                Err(_) => {
                    // Transport or protocol failure: the stream may be
                    // desynchronized mid-response, so the connection must
                    // not be reused. Reconnect (with the configured number
                    // of retries, riding out failovers); exhausting them
                    // abandons the worker.
                    report.failed += 1;
                    match reconnect(addr, cfg, &mut report) {
                        Ok(c) => conn = c,
                        Err(e) => return (report, Some(e)),
                    }
                    break;
                }
            }
        }
    }
    let _ = conn.goodbye();
    (report, None)
}

/// Re-establishes a worker's connection: the first attempt is immediate,
/// each further attempt (up to `reconnect_attempts`) waits `busy_backoff`
/// first so a restarting listener has time to come back.
fn reconnect(
    addr: std::net::SocketAddr,
    cfg: &LoadGenConfig,
    report: &mut LoadReport,
) -> Result<Connection, ClientError> {
    let mut last;
    match Connection::connect(addr) {
        Ok(c) => {
            report.reconnects += 1;
            return Ok(c);
        }
        Err(e) => last = e,
    }
    for _ in 0..cfg.reconnect_attempts {
        std::thread::sleep(cfg.busy_backoff.max(Duration::from_millis(10)));
        match Connection::connect(addr) {
            Ok(c) => {
                report.reconnects += 1;
                return Ok(c);
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// The `seq`-th request's query: the base query with its frame window slid
/// deterministically across the video.
fn query_for(cfg: &LoadGenConfig, seq: u64) -> Query {
    if cfg.window == 0 || cfg.frames == 0 {
        return cfg.query.clone();
    }
    let window = cfg.window.min(cfg.frames);
    let span = cfg.frames - window;
    let start = if span == 0 {
        0
    } else {
        // Stride by a medium prime so successive requests overlap but
        // don't repeat until the span wraps.
        ((seq * 37) % (span as u64 + 1)) as u32
    };
    cfg.query.clone().frames(start..start + window)
}
