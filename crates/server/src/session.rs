//! Per-connection session threads: handshake, request dispatch, response
//! streaming, and the per-session half of admission control.

use crate::{error_code, lock_clean, ServerShared, SessionGuard};
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use tasm_proto::{ErrorCode, Message, ProtoError, VERSION};
use tasm_service::{QueryRequest, ServiceError};

/// State shared between a session's reader thread and its response
/// waiters.
struct SessionShared {
    /// Write side of the socket; each response is written whole under this
    /// lock, so frames of concurrent in-flight queries never interleave.
    writer: Mutex<TcpStream>,
    /// Queries admitted but not yet fully answered on this session. The
    /// condvar signals each decrement so teardown waits exactly, without
    /// polling.
    inflight: Mutex<u32>,
    drained: Condvar,
}

impl SessionShared {
    /// Writes one message, swallowing transport errors: a peer that
    /// vanished mid-response is that peer's problem, not the session's.
    fn send(&self, msg: &Message) {
        let mut w = lock_clean(&self.writer);
        let _ = msg.write_to(&mut *w);
    }

    fn inflight(&self) -> u32 {
        *lock_clean(&self.inflight)
    }
}

/// RAII hold on one of the session's in-flight slots: increments at
/// construction, decrements (and signals the drain condvar) on drop —
/// including the drop that unwinding a panicked waiter performs, so a
/// waiter that dies can never strand the teardown's `drained.wait`.
struct InflightGuard {
    session: Arc<SessionShared>,
}

impl InflightGuard {
    fn new(session: &Arc<SessionShared>) -> InflightGuard {
        *lock_clean(&session.inflight) += 1;
        InflightGuard {
            session: Arc::clone(session),
        }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        let mut n = lock_clean(&self.session.inflight);
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.session.drained.notify_all();
        }
    }
}

/// Runs one connection to completion. `_guard` holds the server's active-
/// session slot for exactly the lifetime of this call.
pub(crate) fn run(shared: &Arc<ServerShared>, stream: TcpStream, _guard: SessionGuard) {
    // On non-Linux platforms accepted sockets inherit the listener's
    // O_NONBLOCK; the session wants blocking reads bounded by the poll
    // timeout below, not a busy-spin.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Small response frames must not sit in Nagle's buffer waiting for a
    // delayed ACK — query round trips would stall for tens of ms.
    stream.set_nodelay(true).ok();
    // Poll-style reads: the session revisits the shutdown flag between
    // frames instead of parking forever in `read`.
    if stream
        .set_read_timeout(Some(shared.cfg.poll_interval))
        .is_err()
    {
        return;
    }
    // Bounded writes: a client that stops reading its response must not
    // pin a waiter (and with it the session drain and graceful server
    // shutdown) forever once the socket buffer fills.
    if stream
        .set_write_timeout(Some(MAX_RESPONSE_WRITE_STALL))
        .is_err()
    {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let session = Arc::new(SessionShared {
        writer: Mutex::new(stream),
        inflight: Mutex::new(0),
        drained: Condvar::new(),
    });

    if !handshake(shared, &mut reader, &session) {
        return;
    }
    shared.count_session();
    let peer = reader
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    tasm_obs::log::debug("session.opened", &[("peer", peer.clone())]);

    // Tile bytes from `StageSot` replication records, held until their
    // commit record lands. Session-local: a replication stream is one
    // primary's connection, and an aborted sync dies with its session.
    let mut staged = tasm_cluster::StagedSots::new();

    loop {
        // Checked every iteration, not only on idle timeouts: a client
        // that keeps frames flowing must not be able to pin the session —
        // and with it a graceful server shutdown — forever.
        if shared.is_shutting_down() {
            break;
        }
        let msg = match Message::read_from_bounded(&mut reader, MAX_REQUEST_FRAME_TIME) {
            Ok(msg) => msg,
            Err(e) if e.is_timeout() => continue,
            // Peer went away (or died mid-frame): nothing to report to.
            Err(ProtoError::Io(_)) | Err(ProtoError::Stalled) => break,
            Err(_) => {
                // Corrupt frame: a length-prefixed stream cannot be
                // resynchronized, so report and close.
                session.send(&Message::Error {
                    id: None,
                    code: ErrorCode::Malformed,
                    message: "undecodable frame".to_string(),
                });
                break;
            }
        };
        match msg {
            Message::Query {
                id,
                video,
                query,
                trace_id,
            } => {
                handle_query(shared, &session, id, video, query, trace_id);
            }
            Message::StatsRequest => {
                session.send(&Message::StatsReply {
                    stats: Box::new(shared.service.stats()),
                });
            }
            Message::Goodbye => break,
            Message::ShutdownServer => {
                shared.request_shutdown();
                session.send(&Message::Goodbye);
                break;
            }
            // Cluster administration. These run synchronously on the
            // reader thread: replication and rebalance streams are
            // strictly sequential (each record is acked before the next
            // is sent), so there is nothing to overlap with.
            Message::Replicate { seq, record } => {
                match tasm_cluster::apply_record(shared.service.tasm(), &mut staged, record) {
                    Ok(()) => session.send(&Message::ReplicateAck { seq }),
                    Err(message) => session.send(&Message::Error {
                        id: Some(seq),
                        code: ErrorCode::Internal,
                        message,
                    }),
                }
            }
            Message::ManifestRequest { video } => {
                match tasm_cluster::manifest_json(shared.service.tasm(), &video) {
                    Ok(manifest) => session.send(&Message::ManifestReply { video, manifest }),
                    Err(message) => session.send(&Message::Error {
                        id: None,
                        code: ErrorCode::UnknownVideo,
                        message,
                    }),
                }
            }
            Message::PushVideo { seq, video, target } => {
                match tasm_cluster::push_video(shared.service.tasm(), &video, &target) {
                    Ok(()) => session.send(&Message::ReplicateAck { seq }),
                    Err(message) => session.send(&Message::Error {
                        id: Some(seq),
                        code: ErrorCode::Internal,
                        message,
                    }),
                }
            }
            Message::RemoveVideo { seq, video } => {
                match shared.service.tasm().remove_video(&video) {
                    Ok(()) => session.send(&Message::ReplicateAck { seq }),
                    Err(e) => session.send(&Message::Error {
                        id: Some(seq),
                        code: ErrorCode::UnknownVideo,
                        message: e.to_string(),
                    }),
                }
            }
            // Anything else is a protocol violation at this point of the
            // session (hellos after the handshake, server-only frames).
            _ => {
                session.send(&Message::Error {
                    id: None,
                    code: ErrorCode::Malformed,
                    message: "unexpected frame".to_string(),
                });
                break;
            }
        }
    }

    // Drain: admitted queries finish and their responses flush before the
    // socket closes (the last waiter's guard signals the condvar — even a
    // panicked waiter, whose unwind runs the guard's drop).
    let mut inflight = lock_clean(&session.inflight);
    while *inflight > 0 {
        inflight = match session.drained.wait(inflight) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
    drop(inflight);
    tasm_obs::log::debug("session.closed", &[("peer", peer)]);
}

/// Poll timeouts a connection may sit silent before its handshake: with
/// the default 25 ms poll interval, 400 polls ≈ 10 s. Bounding this keeps
/// a connect-and-say-nothing peer (port scanner, health checker, attacker)
/// from pinning one of the `max_connections` slots forever.
const HANDSHAKE_DEADLINE_POLLS: u32 = 400;

/// Wall-clock bound on receiving one request frame once it has started
/// arriving. Requests are small (a query frame is well under a kilobyte),
/// so this is pure slack for real clients while bounding how long a
/// byte-trickling peer can pin a session slot or a graceful shutdown.
const MAX_REQUEST_FRAME_TIME: Duration = Duration::from_secs(30);

/// Socket write timeout for response frames: the longest one `write` may
/// sit on a full send buffer (a peer that stopped reading) before the
/// response is abandoned.
const MAX_RESPONSE_WRITE_STALL: Duration = Duration::from_secs(10);

/// Performs the version handshake. Returns false when the session must
/// close (bad hello, version mismatch, deadline, shutdown, transport
/// error).
fn handshake(
    shared: &Arc<ServerShared>,
    reader: &mut TcpStream,
    session: &Arc<SessionShared>,
) -> bool {
    let mut silent_polls = 0u32;
    let hello = loop {
        match Message::read_from_bounded(reader, MAX_REQUEST_FRAME_TIME) {
            Ok(msg) => break msg,
            Err(e) if e.is_timeout() => {
                if shared.is_shutting_down() {
                    return false;
                }
                silent_polls += 1;
                if silent_polls >= HANDSHAKE_DEADLINE_POLLS {
                    return false;
                }
            }
            Err(ProtoError::Io(_)) => return false,
            Err(_) => {
                session.send(&Message::Error {
                    id: None,
                    code: ErrorCode::Malformed,
                    message: "expected client hello".to_string(),
                });
                return false;
            }
        }
    };
    match hello {
        Message::ClientHello { version } if version == VERSION => {
            session.send(&Message::ServerHello {
                version: VERSION,
                max_inflight: shared.cfg.max_inflight,
            });
            true
        }
        Message::ClientHello { version } => {
            session.send(&Message::Error {
                id: None,
                code: ErrorCode::VersionMismatch,
                message: format!("server speaks version {VERSION}, client sent {version}"),
            });
            false
        }
        _ => {
            session.send(&Message::Error {
                id: None,
                code: ErrorCode::Malformed,
                message: "expected client hello".to_string(),
            });
            false
        }
    }
}

/// Admission control plus asynchronous execution of one query: the reader
/// thread never blocks on the service — a full queue comes back as a typed
/// BUSY frame immediately, and admitted queries complete on a waiter
/// thread so further requests keep being read.
fn handle_query(
    shared: &Arc<ServerShared>,
    session: &Arc<SessionShared>,
    id: u64,
    video: String,
    query: tasm_core::Query,
    trace_id: Option<u64>,
) {
    if shared.is_shutting_down() {
        session.send(&Message::Error {
            id: Some(id),
            code: ErrorCode::ShuttingDown,
            message: "server is shutting down".to_string(),
        });
        return;
    }
    if session.inflight() >= shared.cfg.max_inflight {
        session.send(&Message::Error {
            id: Some(id),
            code: ErrorCode::TooManyInflight,
            message: format!(
                "session already has {} queries in flight",
                shared.cfg.max_inflight
            ),
        });
        return;
    }
    let request = QueryRequest::new(video, query).with_trace_id(trace_id);
    let handle = match shared.service.try_submit(request) {
        Ok(handle) => handle,
        Err(e) => {
            if matches!(e, ServiceError::QueueFull) {
                shared
                    .busy_rejections
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if tasm_obs::enabled() {
                    tasm_obs::counter(
                        "tasm_queries_busy_rejected_total",
                        "Queries refused with a BUSY frame because the service queue was full.",
                    )
                    .inc();
                }
            }
            session.send(&Message::Error {
                id: Some(id),
                code: error_code(&e),
                message: e.to_string(),
            });
            return;
        }
    };
    // One waiter thread per admitted query keeps the reader free; the
    // per-session cap (`max_inflight`) bounds how many exist at once. The
    // spawn cost sits on the serving path — acceptable at this scale, and
    // visible in benches/remote.rs as part of the wire overhead.
    //
    // The in-flight slot is held by an RAII guard that travels into the
    // waiter: whether the waiter finishes, panics, or never spawns (the
    // failed spawn drops the closure), the slot releases exactly once.
    let guard = InflightGuard::new(session);
    let waiter = Arc::clone(session);
    let instance = shared.instance.clone();
    let spawned = std::thread::Builder::new()
        .name("tasm-session-waiter".to_string())
        .spawn(move || {
            let _guard = guard;
            let session = waiter;
            match handle.wait() {
                Ok(outcome) => {
                    let result = &outcome.result;
                    let mut trace = outcome.trace.clone();
                    trace.instance = instance;
                    // The whole response is written under one writer lock
                    // so its frames stay contiguous on the wire. The first
                    // write failure (peer gone, or write timeout against a
                    // peer that stopped reading) abandons the rest — the
                    // stream is dead either way.
                    let mut w = session.writer.lock().expect("writer lock");
                    let stream_start = std::time::Instant::now();
                    let _ = (|| -> std::io::Result<()> {
                        Message::ResultHeader {
                            id,
                            matched: result.matched,
                            regions: result.regions.len() as u32,
                            plan: result.plan,
                            epoch: result.epoch,
                        }
                        .write_to(&mut *w)?;
                        for region in &result.regions {
                            w.write_all(&tasm_proto::encode_region(id, region))?;
                        }
                        // The stream phase covers the header and region
                        // frames; ResultDone itself carries the trace, so
                        // its own (tiny) write cannot be part of it.
                        let streamed = stream_start.elapsed();
                        trace.stream_micros = streamed.as_micros() as u64;
                        if tasm_obs::enabled() {
                            tasm_obs::histogram(
                                "tasm_query_stream_seconds",
                                "Time spent streaming result frames to the client.",
                            )
                            .record_micros(trace.stream_micros);
                        }
                        Message::ResultDone {
                            id,
                            summary: tasm_proto::ResultSummary {
                                samples_decoded: result.stats.samples_decoded,
                                samples_reused: result.cache.samples_reused,
                                cache_hits: result.cache.hits,
                                cache_misses: result.cache.misses,
                                shared: result.shared,
                                lookup_micros: result.lookup_time.as_micros() as u64,
                                exec_micros: result.exec_time.as_micros() as u64,
                            },
                            trace: Some(trace),
                        }
                        .write_to(&mut *w)?;
                        w.flush()
                    })();
                }
                Err(e) => {
                    session.send(&Message::Error {
                        id: Some(id),
                        code: error_code(&e),
                        message: e.to_string(),
                    });
                }
            }
        });
    if spawned.is_err() {
        // The OS refused a thread. The dropped closure already released
        // the in-flight slot (the guard moved into it); report a typed
        // failure instead of panicking the session reader (the dropped
        // handle lets the query itself finish unobserved).
        session.send(&Message::Error {
            id: Some(id),
            code: ErrorCode::Internal,
            message: "server could not spawn a response writer".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn test_session() -> Arc<SessionShared> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        Arc::new(SessionShared {
            writer: Mutex::new(server_side),
            inflight: Mutex::new(0),
            drained: Condvar::new(),
        })
    }

    /// Regression: a waiter that panics must still release its in-flight
    /// slot (via the guard's unwind drop), or the session teardown's
    /// `drained.wait` loop waits forever.
    #[test]
    fn inflight_guard_releases_on_waiter_panic() {
        let session = test_session();
        let waiter_session = Arc::clone(&session);
        let waiter = std::thread::spawn(move || {
            let _guard = InflightGuard::new(&waiter_session);
            panic!("injected waiter panic");
        });
        assert!(waiter.join().is_err(), "waiter should have panicked");
        // The teardown drain loop must complete promptly.
        let deadline = Duration::from_secs(5);
        let mut inflight = lock_clean(&session.inflight);
        while *inflight > 0 {
            let (guard, timeout) = match session.drained.wait_timeout(inflight, deadline) {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            assert!(!timeout.timed_out(), "drain stalled: in-flight slot leaked");
            inflight = guard;
        }
        assert_eq!(*inflight, 0);
    }

    /// Regression: a spawn failure path is modeled by dropping the closure
    /// (and the guard inside it) without running — the slot still frees.
    #[test]
    fn inflight_guard_releases_when_closure_dropped_unrun() {
        let session = test_session();
        let guard = InflightGuard::new(&session);
        let closure = move || {
            let _guard = guard;
        };
        assert_eq!(session.inflight(), 1);
        drop(closure);
        assert_eq!(session.inflight(), 0);
    }
}
