//! The reactor serving engine: protocol dispatch for the readiness-driven
//! event loop in `tasm-reactor`.
//!
//! One reactor thread owns every session socket. Admitted queries execute
//! on the `QueryService`'s fixed worker pool and come back through a
//! completion queue + wake pipe — no waiter threads, no parked stacks.
//! Blocking cluster-administration frames (replication, manifest fetch,
//! push, remove) run on one dedicated admin thread; their sessions pause
//! until the ack is queued, preserving the strict request/ack ordering the
//! replication protocol assumes. Observable behavior — admission control,
//! typed errors, counters, trace stamping — matches the blocking engine
//! frame for frame.

use crate::{error_code, lock_clean, sessions_gauge, ServerShared};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;
use tasm_proto::{encode_region, ErrorCode, Message, ResultSummary, VERSION};
use tasm_reactor::{Ctl, Logic, NextFrame, ResponseSource, Waker};
use tasm_service::{QueryOutcome, QueryRequest, ServiceError};

/// A completed unit of off-loop work, queued for the reactor.
pub(crate) enum Complete {
    /// A query finished on the service's worker pool.
    Query {
        token: u64,
        wire_id: u64,
        result: Box<Result<QueryOutcome, ServiceError>>,
    },
    /// An admin operation finished on the admin thread; the reply frame is
    /// already encoded.
    Admin { token: u64, frame: Vec<u8> },
}

/// Work the admin thread executes for one session.
pub(crate) struct AdminJob {
    token: u64,
    op: AdminOp,
    /// That session's replication staging area (tile bytes held between
    /// `StageSot` and its commit record). Shared with the logic's map so
    /// it dies with the session.
    staged: Arc<Mutex<tasm_cluster::StagedSots>>,
}

enum AdminOp {
    Replicate {
        seq: u64,
        record: tasm_proto::ReplicationRecord,
    },
    Manifest {
        video: String,
    },
    Push {
        seq: u64,
        video: String,
        target: String,
    },
    Remove {
        seq: u64,
        video: String,
    },
}

/// Runs cluster-administration frames in submission order. These do disk
/// and network I/O (a `PushVideo` streams tiles to another shard), which
/// must never block the reactor; one FIFO thread suffices because the
/// protocols are strictly ack-before-next per session, and sessions pause
/// while an op is in flight.
pub(crate) fn admin_loop(
    shared: Arc<ServerShared>,
    rx: mpsc::Receiver<AdminJob>,
    completions: Arc<Mutex<Vec<Complete>>>,
    waker: Waker,
) {
    while let Ok(job) = rx.recv() {
        let reply = match job.op {
            AdminOp::Replicate { seq, record } => {
                let mut staged = lock_clean(&job.staged);
                match tasm_cluster::apply_record(shared.service.tasm(), &mut staged, record) {
                    Ok(()) => Message::ReplicateAck { seq },
                    Err(message) => Message::Error {
                        id: Some(seq),
                        code: ErrorCode::Internal,
                        message,
                    },
                }
            }
            AdminOp::Manifest { video } => {
                match tasm_cluster::manifest_json(shared.service.tasm(), &video) {
                    Ok(manifest) => Message::ManifestReply { video, manifest },
                    Err(message) => Message::Error {
                        id: None,
                        code: ErrorCode::UnknownVideo,
                        message,
                    },
                }
            }
            AdminOp::Push { seq, video, target } => {
                match tasm_cluster::push_video(shared.service.tasm(), &video, &target) {
                    Ok(()) => Message::ReplicateAck { seq },
                    Err(message) => Message::Error {
                        id: Some(seq),
                        code: ErrorCode::Internal,
                        message,
                    },
                }
            }
            AdminOp::Remove { seq, video } => match shared.service.tasm().remove_video(&video) {
                Ok(()) => Message::ReplicateAck { seq },
                Err(e) => Message::Error {
                    id: Some(seq),
                    code: ErrorCode::UnknownVideo,
                    message: e.to_string(),
                },
            },
        };
        lock_clean(&completions).push(Complete::Admin {
            token: job.token,
            frame: reply.encode(),
        });
        waker.wake();
    }
}

/// The server's [`Logic`]: handshake, dispatch, admission control, and
/// completion delivery.
pub(crate) struct ServerLogic {
    shared: Arc<ServerShared>,
    completions: Arc<Mutex<Vec<Complete>>>,
    waker: Waker,
    admin_tx: mpsc::Sender<AdminJob>,
    /// Per-session replication staging, keyed by token.
    staged: HashMap<u64, Arc<Mutex<tasm_cluster::StagedSots>>>,
}

impl ServerLogic {
    pub(crate) fn new(
        shared: Arc<ServerShared>,
        completions: Arc<Mutex<Vec<Complete>>>,
        waker: Waker,
        admin_tx: mpsc::Sender<AdminJob>,
    ) -> ServerLogic {
        ServerLogic {
            shared,
            completions,
            waker,
            admin_tx,
            staged: HashMap::new(),
        }
    }

    fn send_error(ctl: &mut Ctl, token: u64, id: Option<u64>, code: ErrorCode, message: String) {
        ctl.send_frame(
            token,
            Message::Error { id, code, message }.encode(),
        );
    }

    fn handle_query(
        &mut self,
        ctl: &mut Ctl,
        token: u64,
        id: u64,
        video: String,
        query: tasm_core::Query,
        trace_id: Option<u64>,
    ) {
        if self.shared.is_shutting_down() {
            Self::send_error(
                ctl,
                token,
                Some(id),
                ErrorCode::ShuttingDown,
                "server is shutting down".to_string(),
            );
            return;
        }
        if ctl.inflight(token) >= self.shared.cfg.max_inflight {
            Self::send_error(
                ctl,
                token,
                Some(id),
                ErrorCode::TooManyInflight,
                format!(
                    "session already has {} queries in flight",
                    self.shared.cfg.max_inflight
                ),
            );
            return;
        }
        let request = QueryRequest::new(video, query).with_trace_id(trace_id);
        let completions = Arc::clone(&self.completions);
        let waker = self.waker.clone();
        let submitted = self.shared.service.try_submit_with(request, move |result| {
            lock_clean(&completions).push(Complete::Query {
                token,
                wire_id: id,
                result: Box::new(result),
            });
            waker.wake();
        });
        match submitted {
            Ok(_service_id) => ctl.inflight_inc(token),
            Err(e) => {
                if matches!(e, ServiceError::QueueFull) {
                    self.shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    if tasm_obs::enabled() {
                        tasm_obs::counter(
                            "tasm_queries_busy_rejected_total",
                            "Queries refused with a BUSY frame because the service queue was full.",
                        )
                        .inc();
                    }
                }
                Self::send_error(ctl, token, Some(id), error_code(&e), e.to_string());
            }
        }
    }

    /// Hands an admin frame to the admin thread and pauses the session
    /// until its ack returns through the completion queue — the reactor
    /// reads no further frames from it, preserving strict per-session
    /// operation order.
    fn submit_admin(&mut self, ctl: &mut Ctl, token: u64, op: AdminOp) {
        let staged = Arc::clone(
            self.staged
                .entry(token)
                .or_insert_with(|| Arc::new(Mutex::new(tasm_cluster::StagedSots::new()))),
        );
        ctl.set_paused(token, true);
        ctl.inflight_inc(token);
        if self.admin_tx.send(AdminJob { token, op, staged }).is_err() {
            // Admin thread gone (shutdown): fail typed rather than hang.
            ctl.inflight_dec(token);
            ctl.set_paused(token, false);
            Self::send_error(
                ctl,
                token,
                None,
                ErrorCode::ShuttingDown,
                "server is shutting down".to_string(),
            );
        }
    }
}

impl Logic for ServerLogic {
    fn on_accept(&mut self, ctl: &mut Ctl, _token: u64) {
        self.shared.active_sessions.fetch_add(1, Ordering::AcqRel);
        sessions_gauge().set(ctl.active_sessions() as i64);
    }

    fn on_refused(&mut self) {
        self.shared
            .connection_rejections
            .fetch_add(1, Ordering::Relaxed);
        if tasm_obs::enabled() {
            tasm_obs::counter(
                "tasm_connections_rejected_total",
                "Connections refused at the listener for exceeding max_connections.",
            )
            .inc();
        }
    }

    fn refusal_frame(&mut self) -> Vec<u8> {
        Message::Error {
            id: None,
            code: ErrorCode::TooManyConnections,
            message: "server is at its connection limit".to_string(),
        }
        .encode()
    }

    fn on_frame(&mut self, ctl: &mut Ctl, token: u64, payload: Vec<u8>) {
        let msg = match Message::decode_payload(&payload) {
            Ok(msg) => msg,
            Err(_) => {
                let text = if ctl.handshaken(token) {
                    "undecodable frame"
                } else {
                    "expected client hello"
                };
                Self::send_error(ctl, token, None, ErrorCode::Malformed, text.to_string());
                ctl.begin_drain(token);
                return;
            }
        };
        if !ctl.handshaken(token) {
            match msg {
                Message::ClientHello { version } if version == VERSION => {
                    ctl.mark_handshaken(token);
                    self.shared.count_session();
                    ctl.send_frame(
                        token,
                        Message::ServerHello {
                            version: VERSION,
                            max_inflight: self.shared.cfg.max_inflight,
                        }
                        .encode(),
                    );
                }
                Message::ClientHello { version } => {
                    Self::send_error(
                        ctl,
                        token,
                        None,
                        ErrorCode::VersionMismatch,
                        format!("server speaks version {VERSION}, client sent {version}"),
                    );
                    ctl.begin_drain(token);
                }
                _ => {
                    Self::send_error(
                        ctl,
                        token,
                        None,
                        ErrorCode::Malformed,
                        "expected client hello".to_string(),
                    );
                    ctl.begin_drain(token);
                }
            }
            return;
        }
        match msg {
            Message::Query {
                id,
                video,
                query,
                trace_id,
            } => self.handle_query(ctl, token, id, video, query, trace_id),
            Message::StatsRequest => {
                ctl.send_frame(
                    token,
                    Message::StatsReply {
                        stats: Box::new(self.shared.service.stats()),
                    }
                    .encode(),
                );
            }
            Message::Goodbye => ctl.begin_drain(token),
            Message::ShutdownServer => {
                self.shared.request_shutdown();
                ctl.send_frame(token, Message::Goodbye.encode());
                ctl.begin_drain(token);
            }
            Message::Replicate { seq, record } => {
                self.submit_admin(ctl, token, AdminOp::Replicate { seq, record });
            }
            Message::ManifestRequest { video } => {
                self.submit_admin(ctl, token, AdminOp::Manifest { video });
            }
            Message::PushVideo { seq, video, target } => {
                self.submit_admin(ctl, token, AdminOp::Push { seq, video, target });
            }
            Message::RemoveVideo { seq, video } => {
                self.submit_admin(ctl, token, AdminOp::Remove { seq, video });
            }
            // Anything else is a protocol violation at this point of the
            // session (hellos after the handshake, server-only frames).
            _ => {
                Self::send_error(
                    ctl,
                    token,
                    None,
                    ErrorCode::Malformed,
                    "unexpected frame".to_string(),
                );
                ctl.begin_drain(token);
            }
        }
    }

    fn on_wake(&mut self, ctl: &mut Ctl) {
        let batch: Vec<Complete> = lock_clean(&self.completions).drain(..).collect();
        for complete in batch {
            match complete {
                Complete::Query {
                    token,
                    wire_id,
                    result,
                } => {
                    if !ctl.is_open(token) {
                        // Session died first; the outcome has no reader.
                        continue;
                    }
                    ctl.inflight_dec(token);
                    match *result {
                        Ok(outcome) => ctl.send_response(
                            token,
                            Box::new(QueryResponse::new(
                                wire_id,
                                outcome,
                                self.shared.instance.clone(),
                            )),
                        ),
                        Err(e) => {
                            Self::send_error(
                                ctl,
                                token,
                                Some(wire_id),
                                error_code(&e),
                                e.to_string(),
                            );
                        }
                    }
                }
                Complete::Admin { token, frame } => {
                    if !ctl.is_open(token) {
                        continue;
                    }
                    ctl.inflight_dec(token);
                    ctl.set_paused(token, false);
                    ctl.send_frame(token, frame);
                }
            }
        }
    }

    fn on_close(&mut self, token: u64, _handshaken: bool) {
        self.staged.remove(&token);
        let prev = self.shared.active_sessions.fetch_sub(1, Ordering::AcqRel);
        sessions_gauge().set(prev.saturating_sub(1) as i64);
    }
}

/// Streams one query result lazily: header, then regions one frame at a
/// time as socket capacity frees, then — once every region byte reached
/// the socket — the `ResultDone` carrying the trace with its measured
/// stream phase. Peak buffering is the loop's low-water mark plus one
/// frame, regardless of result size.
struct QueryResponse {
    wire_id: u64,
    outcome: QueryOutcome,
    instance: String,
    next_region: usize,
    state: RespState,
    stream_start: Option<Instant>,
}

enum RespState {
    Header,
    Regions,
    Final,
    Done,
}

impl QueryResponse {
    fn new(wire_id: u64, outcome: QueryOutcome, instance: String) -> QueryResponse {
        QueryResponse {
            wire_id,
            outcome,
            instance,
            next_region: 0,
            state: RespState::Header,
            stream_start: None,
        }
    }
}

impl ResponseSource for QueryResponse {
    fn next_frame(&mut self, flushed: bool) -> NextFrame {
        loop {
            match self.state {
                RespState::Header => {
                    self.stream_start = Some(Instant::now());
                    self.state = RespState::Regions;
                    let r = &self.outcome.result;
                    return NextFrame::Frame(
                        Message::ResultHeader {
                            id: self.wire_id,
                            matched: r.matched,
                            regions: r.regions.len() as u32,
                            plan: r.plan,
                            epoch: r.epoch,
                        }
                        .encode(),
                    );
                }
                RespState::Regions => {
                    let regions = &self.outcome.result.regions;
                    if self.next_region < regions.len() {
                        let frame = encode_region(self.wire_id, &regions[self.next_region]);
                        self.next_region += 1;
                        return NextFrame::Frame(frame);
                    }
                    self.state = RespState::Final;
                }
                RespState::Final => {
                    if !flushed {
                        // The stream phase covers the header and region
                        // frames all the way onto the socket; ResultDone
                        // itself carries the trace, so its own (tiny)
                        // write cannot be part of it.
                        return NextFrame::Wait;
                    }
                    let streamed = self
                        .stream_start
                        .map(|t| t.elapsed())
                        .unwrap_or_default();
                    let mut trace = self.outcome.trace.clone();
                    trace.instance = std::mem::take(&mut self.instance);
                    trace.stream_micros = streamed.as_micros() as u64;
                    if tasm_obs::enabled() {
                        tasm_obs::histogram(
                            "tasm_query_stream_seconds",
                            "Time spent streaming result frames to the client.",
                        )
                        .record_micros(trace.stream_micros);
                    }
                    self.state = RespState::Done;
                    let r = &self.outcome.result;
                    return NextFrame::Frame(
                        Message::ResultDone {
                            id: self.wire_id,
                            summary: ResultSummary {
                                samples_decoded: r.stats.samples_decoded,
                                samples_reused: r.cache.samples_reused,
                                cache_hits: r.cache.hits,
                                cache_misses: r.cache.misses,
                                shared: r.shared,
                                lookup_micros: r.lookup_time.as_micros() as u64,
                                exec_micros: r.exec_time.as_micros() as u64,
                            },
                            trace: Some(trace),
                        }
                        .encode(),
                    );
                }
                RespState::Done => return NextFrame::Done,
            }
        }
    }
}
