//! # tasm-server: the networked TASM query front-end
//!
//! Exposes the full query surface of a shared [`Tasm`] —
//! spatiotemporal [`Query`](tasm_core::Query)s including ROI, stride,
//! limit, and aggregate modes — over TCP, speaking the `tasm-proto`
//! length-prefixed binary protocol. Plain `std::net`, no external
//! dependencies.
//!
//! ## Architecture
//!
//! The default engine ([`ServeEngine::Reactor`]) is a single nonblocking
//! reactor thread owning every session socket:
//!
//! ```text
//!   reactor thread (epoll/poll)          QueryService worker pool
//!   ┌───────────────────────────┐        ┌──────────────────────┐
//!   │ listener → accept burst   │ submit │ worker 0 … worker N  │
//!   │   over cap → typed error  ├───────▶│  (fixed, bounded     │
//!   │ session fds:              │        │   queue, retile      │
//!   │   FrameReader (resumable  │◀───────┤   daemon)            │
//!   │     mid-frame, 64 MiB cap)│ wake   └──────────────────────┘
//!   │   FrameQueue (responses   │ pipe +        admin ops
//!   │     resume at any byte    │ completions ┌─────────────┐
//!   │     offset on writable)   │◀────────────┤ admin thread│
//!   └───────────────────────────┘             └─────────────┘
//! ```
//!
//! Sessions are state machines, not threads: frames assemble
//! incrementally off readiness events, admitted queries execute on the
//! service's fixed worker pool, and completed results re-enter the loop
//! through a wakeup pipe to be streamed out by write-readiness. Total
//! thread count is O(workers), independent of connection count.
//!
//! [`ServeEngine::Threads`] keeps the previous blocking design — one
//! thread per connection plus one waiter thread per in-flight query — as
//! a fallback for platforms without readiness polling and as the
//! comparison baseline in `benches/remote.rs`. Both engines enforce the
//! same admission control and speak bit-identical wire responses.
//!
//! ## Shutdown semantics
//!
//! [`TasmServer::shutdown`] (triggered programmatically, or remotely by a
//! client's `ShutdownServer` frame via [`TasmServer::wait_shutdown_requested`])
//! is graceful: accepting stops, every session finishes the queries it
//! already admitted and flushes their responses, new queries are refused
//! with `Error{ShuttingDown}`, and the underlying service drains —
//! [`Shutdown::Drain`](tasm_service::Shutdown) — which also stops the
//! background retile daemon. The returned [`ServerReport`] carries the
//! service's [`ShutdownReport`] (completed vs. abandoned counts) plus
//! server-level counters.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use tasm_core::{Tasm, TasmConfig};
//! use tasm_index::MemoryIndex;
//! use tasm_server::{ServerConfig, TasmServer};
//! use tasm_service::ServiceConfig;
//!
//! let tasm = Arc::new(
//!     Tasm::open("/tmp/store", Box::new(MemoryIndex::in_memory()), TasmConfig::default())
//!         .unwrap(),
//! );
//! // ... ingest/attach videos ...
//! let server = TasmServer::bind(
//!     tasm,
//!     ServiceConfig::default(),
//!     ServerConfig::default(),
//!     "127.0.0.1:0", // ephemeral port
//! )
//! .unwrap();
//! println!("serving on {}", server.local_addr());
//! server.wait_shutdown_requested(); // until a client sends ShutdownServer
//! let report = server.shutdown();
//! println!("served {} sessions", report.sessions_served);
//! ```

mod reactor;
mod session;

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;
use tasm_core::{Tasm, TasmError};
use tasm_proto::{ErrorCode, Message};
use tasm_service::{
    QueryService, ServiceConfig, ServiceError, ServiceStats, Shutdown, ShutdownReport,
};

/// Locks a mutex, recovering the data from a poisoned lock instead of
/// panicking. Every structure guarded this way (socket writers, counters,
/// flags) stays internally consistent across a panic at any point, so the
/// sensible response to poison is to keep serving — a cascade that turns
/// one panicked query into a dead session (or server) is strictly worse.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Maps a service-side failure onto the wire's typed error codes.
pub(crate) fn error_code(e: &ServiceError) -> ErrorCode {
    match e {
        ServiceError::QueueFull => ErrorCode::Busy,
        ServiceError::ShuttingDown => ErrorCode::ShuttingDown,
        ServiceError::Tasm(TasmError::UnknownVideo(_)) => ErrorCode::UnknownVideo,
        ServiceError::Tasm(TasmError::EpochNotLive { .. }) => ErrorCode::EpochNotLive,
        ServiceError::Tasm(_) | ServiceError::WorkerLost | ServiceError::Panicked => {
            ErrorCode::Internal
        }
    }
}

/// Which serving engine a [`TasmServer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEngine {
    /// One nonblocking reactor thread for all sessions; queries execute on
    /// the service's fixed worker pool. Thread count is O(workers). Falls
    /// back to [`ServeEngine::Threads`] where readiness polling is
    /// unavailable.
    Reactor,
    /// One blocking thread per connection plus one waiter thread per
    /// in-flight query — the original design, kept as the bench baseline.
    Threads,
}

/// Admission-control and polling knobs of the serving layer.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent connections accepted; further connects receive
    /// `Error{TooManyConnections}` and are closed.
    pub max_connections: usize,
    /// Queries one session may have in flight at once; requests beyond the
    /// cap receive `Error{TooManyInflight}`.
    pub max_inflight: u32,
    /// Poll granularity of session reads and the accept loop — the upper
    /// bound on how long shutdown waits for an idle session to notice.
    pub poll_interval: Duration,
    /// Serving engine. Observable behavior is identical across engines;
    /// pick [`ServeEngine::Threads`] only for baseline comparisons.
    pub engine: ServeEngine,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_inflight: 8,
            poll_interval: Duration::from_millis(25),
            engine: ServeEngine::Reactor,
        }
    }
}

/// What the server did over its lifetime, returned by
/// [`TasmServer::shutdown`].
#[derive(Debug, Clone, Copy)]
pub struct ServerReport {
    /// Connections that completed a handshake.
    pub sessions_served: u64,
    /// Queries refused with a typed BUSY frame because the service queue
    /// was full.
    pub busy_rejections: u64,
    /// Connections refused at the listener for exceeding
    /// [`ServerConfig::max_connections`].
    pub connection_rejections: u64,
    /// The underlying service's drain report (completed/abandoned counts
    /// and final statistics, including the latency histogram).
    pub service: ShutdownReport,
}

/// State shared by the serving threads (reactor + admin, or accept +
/// sessions) and the server handle.
pub(crate) struct ServerShared {
    pub service: QueryService,
    pub cfg: ServerConfig,
    /// The bound address as a string; stamped into every query trace as
    /// the serving instance so `--explain` output names which process (and
    /// in a cluster, which shard) executed the query.
    pub instance: String,
    /// Shared with the reactor's event loop, which exits once it observes
    /// the flag and drains its sessions.
    shutdown: Arc<AtomicBool>,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    pub(crate) active_sessions: AtomicUsize,
    sessions_served: AtomicU64,
    pub busy_rejections: AtomicU64,
    pub(crate) connection_rejections: AtomicU64,
    /// Live `refuse()` courtesy threads (threads engine only); bounded so
    /// a connect flood cannot amplify into unbounded thread creation.
    refusers: AtomicUsize,
}

impl ServerShared {
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Counts a connection whose handshake succeeded (called by the
    /// session once the hello exchange completes, so port scans and
    /// version mismatches never inflate the count).
    pub fn count_session(&self) {
        self.sessions_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks that a client asked the server to shut down and wakes
    /// [`TasmServer::wait_shutdown_requested`].
    pub fn request_shutdown(&self) {
        *lock_clean(&self.shutdown_requested) = true;
        self.shutdown_cv.notify_all();
    }
}

/// RAII token for one occupied connection slot.
pub(crate) struct SessionGuard {
    shared: Arc<ServerShared>,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        let prev = self.shared.active_sessions.fetch_sub(1, Ordering::AcqRel);
        sessions_gauge().set(prev.saturating_sub(1) as i64);
    }
}

/// The gauge mirroring `ServerShared::active_sessions`. Updated at both
/// admission and release, so a scrape sees the same value admission
/// control acts on.
pub(crate) fn sessions_gauge() -> Arc<tasm_obs::Gauge> {
    tasm_obs::gauge(
        "tasm_sessions_active",
        "Connections currently holding a server session slot.",
    )
}

/// A running TASM server: a listener and its serving threads (reactor +
/// admin, or accept + per-connection sessions), all over one shared
/// [`QueryService`].
pub struct TasmServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    reactor: Option<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
    /// Held so the admin thread's `recv` loop stays alive until shutdown
    /// explicitly drops it.
    admin_tx: Option<mpsc::Sender<reactor::AdminJob>>,
    waker: Option<tasm_reactor::Waker>,
}

impl TasmServer {
    /// Starts the query service over `tasm` and listens on `addr`
    /// (`127.0.0.1:0` binds an ephemeral port — read it back with
    /// [`TasmServer::local_addr`]).
    pub fn bind(
        tasm: Arc<Tasm>,
        service_cfg: ServiceConfig,
        cfg: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<TasmServer> {
        Self::bind_with_hook(tasm, service_cfg, cfg, addr, None)
    }

    /// [`TasmServer::bind`] with a [`RetileHook`](tasm_service::RetileHook)
    /// fired after every committed background re-tile — the cluster layer's
    /// primary→backup replication point (the re-tile only counts as durable
    /// once the hook, i.e. every backup, acks it).
    pub fn bind_with_hook(
        tasm: Arc<Tasm>,
        service_cfg: ServiceConfig,
        cfg: ServerConfig,
        addr: impl ToSocketAddrs,
        hook: Option<Arc<dyn tasm_service::RetileHook>>,
    ) -> std::io::Result<TasmServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ServerShared {
            service: QueryService::start_with_hook(tasm, service_cfg, hook),
            cfg,
            instance: local_addr.to_string(),
            shutdown: Arc::clone(&shutdown),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            active_sessions: AtomicUsize::new(0),
            sessions_served: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            connection_rejections: AtomicU64::new(0),
            refusers: AtomicUsize::new(0),
        });
        let sessions = Arc::new(Mutex::new(Vec::new()));
        let mut server = TasmServer {
            shared: Arc::clone(&shared),
            local_addr,
            accept: None,
            sessions: Arc::clone(&sessions),
            reactor: None,
            admin: None,
            admin_tx: None,
            waker: None,
        };
        // Engine selection happens before the listener is consumed, so a
        // platform without readiness polling silently gets the blocking
        // engine rather than a failed bind.
        if cfg.engine == ServeEngine::Reactor && tasm_reactor::supported() {
            let loop_cfg = tasm_reactor::LoopConfig {
                max_connections: cfg.max_connections,
                poll_interval: cfg.poll_interval,
                ..tasm_reactor::LoopConfig::default()
            };
            let ctl = tasm_reactor::Ctl::new(listener, loop_cfg, shutdown)?;
            let waker = ctl.waker();
            let completions = Arc::new(Mutex::new(Vec::new()));
            let (admin_tx, admin_rx) = mpsc::channel();
            let admin = {
                let shared = Arc::clone(&shared);
                let completions = Arc::clone(&completions);
                let waker = waker.clone();
                std::thread::Builder::new()
                    .name("tasm-admin".to_string())
                    .spawn(move || reactor::admin_loop(shared, admin_rx, completions, waker))
                    .expect("spawn admin thread")
            };
            let logic =
                reactor::ServerLogic::new(shared, completions, waker.clone(), admin_tx.clone());
            let handle = std::thread::Builder::new()
                .name("tasm-reactor".to_string())
                .spawn(move || tasm_reactor::run(ctl, logic))
                .expect("spawn reactor thread");
            server.reactor = Some(handle);
            server.admin = Some(admin);
            server.admin_tx = Some(admin_tx);
            server.waker = Some(waker);
        } else {
            listener.set_nonblocking(true)?;
            let accept = {
                let shared = Arc::clone(&shared);
                let sessions = Arc::clone(&sessions);
                std::thread::Builder::new()
                    .name("tasm-accept".to_string())
                    .spawn(move || accept_loop(&shared, &listener, &sessions))
                    .expect("spawn accept loop")
            };
            server.accept = Some(accept);
        }
        Ok(server)
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the underlying service's statistics (including the
    /// submit→complete latency histogram).
    pub fn stats(&self) -> ServiceStats {
        self.shared.service.stats()
    }

    /// True once a client has sent the administrative `ShutdownServer`
    /// frame.
    pub fn shutdown_requested(&self) -> bool {
        *lock_clean(&self.shared.shutdown_requested)
    }

    /// Blocks until a client requests shutdown (the `tasm serve` command's
    /// idle state).
    pub fn wait_shutdown_requested(&self) {
        let mut requested = lock_clean(&self.shared.shutdown_requested);
        while !*requested {
            requested = match self.shared.shutdown_cv.wait(requested) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Gracefully shuts the server down: stops accepting, lets every
    /// session drain its in-flight queries and flush their responses,
    /// joins all threads, drains the service ([`Shutdown::Drain`] — the
    /// retile daemon processes its backlog and stops), and reports what
    /// happened.
    pub fn shutdown(mut self) -> ServerReport {
        self.stop_threads();
        let service = self.shared.service.shutdown_now(Shutdown::Drain);
        ServerReport {
            sessions_served: self.shared.sessions_served.load(Ordering::Relaxed),
            busy_rejections: self.shared.busy_rejections.load(Ordering::Relaxed),
            connection_rejections: self.shared.connection_rejections.load(Ordering::Relaxed),
            service,
        }
    }

    /// Signals shutdown and joins every serving thread (idempotent). The
    /// reactor is joined before the admin channel closes so in-flight
    /// admin acks still reach their sessions during the drain; the service
    /// worker pool outlives this call for the same reason (queries the
    /// reactor is still waiting on keep executing).
    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // The accept loop has exited, so no new sessions can appear.
        for s in lock_clean(&self.sessions).drain(..) {
            let _ = s.join();
        }
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
        // Closing the channel ends the admin thread's recv loop.
        self.admin_tx = None;
        if let Some(t) = self.admin.take() {
            let _ = t.join();
        }
        self.waker = None;
    }
}

impl Drop for TasmServer {
    fn drop(&mut self) {
        self.stop_threads();
        // Dropping `shared` afterwards drains the service (QueryService's
        // own Drop).
    }
}

/// Accepts connections until shutdown, enforcing the connection cap and
/// spawning one session thread per accepted socket (threads engine).
fn accept_loop(
    shared: &Arc<ServerShared>,
    listener: &TcpListener,
    sessions: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.is_shutting_down() {
            return;
        }
        let (stream, _peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_interval.min(Duration::from_millis(5)));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        // Connection-level admission control. The slot is reserved before
        // the session thread starts so a connect burst cannot overshoot
        // the cap.
        let active = shared.active_sessions.fetch_add(1, Ordering::AcqRel);
        sessions_gauge().set((active + 1) as i64);
        if active >= shared.cfg.max_connections {
            let prev = shared.active_sessions.fetch_sub(1, Ordering::AcqRel);
            sessions_gauge().set(prev.saturating_sub(1) as i64);
            shared.connection_rejections.fetch_add(1, Ordering::Relaxed);
            if tasm_obs::enabled() {
                tasm_obs::counter(
                    "tasm_connections_rejected_total",
                    "Connections refused at the listener for exceeding max_connections.",
                )
                .inc();
            }
            // Detached: refuse() waits (bounded) for the peer to drain the
            // error frame, which must not stall the accept loop. The
            // courtesy pool itself is capped — under a connect flood,
            // connections beyond it are dropped without the typed error
            // rather than amplified into unbounded threads.
            if shared.refusers.fetch_add(1, Ordering::AcqRel) < MAX_REFUSE_THREADS {
                let refuse_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("tasm-refuse".to_string())
                    .spawn(move || {
                        refuse(stream);
                        refuse_shared.refusers.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    // The failed spawn dropped the closure (closing the
                    // socket) without running its decrement.
                    shared.refusers.fetch_sub(1, Ordering::AcqRel);
                }
            } else {
                shared.refusers.fetch_sub(1, Ordering::AcqRel);
            }
            continue;
        }
        let guard = SessionGuard {
            shared: Arc::clone(shared),
        };
        let session_shared = Arc::clone(shared);
        let handle = match std::thread::Builder::new()
            .name("tasm-session".to_string())
            .spawn(move || session::run(&session_shared, stream, guard))
        {
            Ok(handle) => handle,
            Err(_) => {
                // Thread exhaustion — exactly the pressure admission
                // control exists for. Dropping the closure closed the
                // socket and released the slot (the guard moved into it);
                // back off instead of panicking the accept loop dead.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let mut sessions = lock_clean(sessions);
        // Reap finished sessions so long-running servers don't accumulate
        // handles.
        sessions.retain(|s: &JoinHandle<()>| !s.is_finished());
        sessions.push(handle);
    }
}

/// Upper bound on concurrent [`refuse`] courtesy threads.
const MAX_REFUSE_THREADS: usize = 32;

/// Tells an over-cap connection why it is being closed. The client's
/// already-sent hello is read (and discarded) first: closing a socket
/// with unread received data makes the kernel send RST, which can discard
/// the queued error frame before the client reads it. Every call here is
/// a single bounded syscall so a hostile peer cannot hold the courtesy
/// thread for more than a couple of seconds.
fn refuse(mut stream: TcpStream) {
    // Accepted sockets inherit the listener's O_NONBLOCK on non-Linux
    // platforms; the timeouts below only bound *blocking* calls.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    // One read drains the pending hello (a dozen bytes in one segment);
    // deliberately not a full frame read, whose retry loop a trickling
    // peer could stretch.
    let mut scratch = [0u8; 256];
    let _ = std::io::Read::read(&mut stream, &mut scratch);
    let _ = Message::Error {
        id: None,
        code: ErrorCode::TooManyConnections,
        message: "server is at its connection limit".to_string(),
    }
    .write_to(&mut stream);
    // Half-close and give the peer one read's worth of time to drain the
    // error frame before the socket drops.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 64];
    for _ in 0..8 {
        match std::io::Read::read(&mut stream, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}
