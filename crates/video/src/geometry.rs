//! Integer rectangle geometry.
//!
//! [`Rect`] is used both for object bounding boxes stored in the semantic
//! index and for tile rectangles produced by layout generation, so the same
//! intersection / containment logic serves both sides of TASM.

use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle in pixel coordinates.
///
/// `x`/`y` is the top-left corner; the rectangle covers the half-open ranges
/// `[x, x + w)` × `[y, y + h)`. Zero-width or zero-height rectangles are
/// permitted and behave as empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x: u32,
    /// Top edge (inclusive).
    pub y: u32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and size.
    pub const fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        Rect { x, y, w, h }
    }

    /// Creates a rectangle from two corner points `(x1, y1)`–`(x2, y2)`
    /// (exclusive bottom-right), the convention used by the paper's
    /// `AddMetadata(video, frame, label, x1, y1, x2, y2)` API.
    ///
    /// Returns an empty rectangle if the corners are inverted.
    pub fn from_corners(x1: u32, y1: u32, x2: u32, y2: u32) -> Self {
        Rect {
            x: x1,
            y: y1,
            w: x2.saturating_sub(x1),
            h: y2.saturating_sub(y1),
        }
    }

    /// Exclusive right edge.
    pub const fn right(&self) -> u32 {
        self.x + self.w
    }

    /// Exclusive bottom edge.
    pub const fn bottom(&self) -> u32 {
        self.y + self.h
    }

    /// Area in pixels.
    pub const fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// True if the rectangle covers no pixels.
    pub const fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// True if `(px, py)` lies inside the rectangle.
    pub const fn contains_point(&self, px: u32, py: u32) -> bool {
        px >= self.x && px < self.right() && py >= self.y && py < self.bottom()
    }

    /// True if `other` lies entirely inside `self`. Empty rectangles are
    /// contained by everything.
    pub fn contains(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.x >= self.x
                && other.y >= self.y
                && other.right() <= self.right()
                && other.bottom() <= self.bottom())
    }

    /// Intersection of two rectangles, or `None` if they are disjoint
    /// (or either is empty).
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if x < right && y < bottom {
            Some(Rect::new(x, y, right - x, bottom - y))
        } else {
            None
        }
    }

    /// True if the two rectangles share at least one pixel.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// Smallest rectangle containing both inputs. Empty inputs are ignored;
    /// the union of two empty rectangles is empty.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let right = self.right().max(other.right());
        let bottom = self.bottom().max(other.bottom());
        Rect::new(x, y, right - x, bottom - y)
    }

    /// Bounding hull of an iterator of rectangles (empty if none).
    pub fn hull<'a, I: IntoIterator<Item = &'a Rect>>(rects: I) -> Rect {
        rects
            .into_iter()
            .fold(Rect::new(0, 0, 0, 0), |acc, r| acc.union(r))
    }

    /// Intersection-over-union, used by detector-quality simulation.
    /// Returns 0.0 when either rectangle is empty.
    pub fn iou(&self, other: &Rect) -> f64 {
        let inter = self.intersect(other).map_or(0, |r| r.area());
        if inter == 0 {
            return 0.0;
        }
        let union = self.area() + other.area() - inter;
        inter as f64 / union as f64
    }

    /// Clamps the rectangle to lie within a `w`×`h` frame.
    pub fn clamp_to(&self, w: u32, h: u32) -> Rect {
        let x = self.x.min(w);
        let y = self.y.min(h);
        Rect::new(x, y, self.w.min(w - x), self.h.min(h - y))
    }

    /// Translates the rectangle by a signed offset, clamping at zero.
    pub fn translate(&self, dx: i64, dy: i64) -> Rect {
        let x = (self.x as i64 + dx).max(0) as u32;
        let y = (self.y as i64 + dy).max(0) as u32;
        Rect::new(x, y, self.w, self.h)
    }

    /// Expands the rectangle by `margin` pixels on every side, clamping to
    /// the `w`×`h` frame. Used to pad detector bounding boxes.
    pub fn inflate(&self, margin: u32, w: u32, h: u32) -> Rect {
        let x = self.x.saturating_sub(margin);
        let y = self.y.saturating_sub(margin);
        let right = (self.right() + margin).min(w);
        let bottom = (self.bottom() + margin).min(h);
        Rect::new(x, y, right.saturating_sub(x), bottom.saturating_sub(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_roundtrip() {
        let r = Rect::from_corners(10, 20, 30, 50);
        assert_eq!(r, Rect::new(10, 20, 20, 30));
        assert_eq!(r.right(), 30);
        assert_eq!(r.bottom(), 50);
    }

    #[test]
    fn inverted_corners_are_empty() {
        assert!(Rect::from_corners(30, 50, 10, 20).is_empty());
    }

    #[test]
    fn intersect_overlapping() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Some(Rect::new(5, 5, 5, 5)));
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersect_disjoint_and_touching() {
        let a = Rect::new(0, 0, 10, 10);
        // Touching edges share no pixel in half-open coordinates.
        assert_eq!(a.intersect(&Rect::new(10, 0, 5, 5)), None);
        assert_eq!(a.intersect(&Rect::new(20, 20, 5, 5)), None);
    }

    #[test]
    fn intersect_empty_is_none() {
        let a = Rect::new(0, 0, 10, 10);
        assert_eq!(a.intersect(&Rect::new(3, 3, 0, 5)), None);
    }

    #[test]
    fn union_and_hull() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(10, 10, 2, 2);
        assert_eq!(a.union(&b), Rect::new(0, 0, 12, 12));
        let hull = Rect::hull([a, b].iter());
        assert_eq!(hull, Rect::new(0, 0, 12, 12));
        assert_eq!(Rect::hull([].iter()), Rect::new(0, 0, 0, 0));
    }

    #[test]
    fn union_with_empty_ignores_empty() {
        let a = Rect::new(5, 5, 3, 3);
        let e = Rect::new(100, 100, 0, 0);
        assert_eq!(a.union(&e), a);
        assert_eq!(e.union(&a), a);
    }

    #[test]
    fn contains_cases() {
        let outer = Rect::new(0, 0, 100, 100);
        assert!(outer.contains(&Rect::new(10, 10, 50, 50)));
        assert!(outer.contains(&Rect::new(0, 0, 100, 100)));
        assert!(!outer.contains(&Rect::new(60, 60, 50, 50)));
        assert!(outer.contains(&Rect::new(500, 500, 0, 0))); // empty
    }

    #[test]
    fn contains_point_half_open() {
        let r = Rect::new(2, 2, 4, 4);
        assert!(r.contains_point(2, 2));
        assert!(r.contains_point(5, 5));
        assert!(!r.contains_point(6, 6));
        assert!(!r.contains_point(1, 3));
    }

    #[test]
    fn iou_identical_and_disjoint() {
        let a = Rect::new(0, 0, 10, 10);
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
        assert_eq!(a.iou(&Rect::new(50, 50, 10, 10)), 0.0);
        let half = Rect::new(0, 0, 10, 5);
        assert!((a.iou(&half) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_to_frame() {
        let r = Rect::new(90, 90, 20, 20);
        assert_eq!(r.clamp_to(100, 100), Rect::new(90, 90, 10, 10));
        let off = Rect::new(200, 200, 5, 5);
        assert!(off.clamp_to(100, 100).is_empty());
    }

    #[test]
    fn translate_clamps_at_zero() {
        let r = Rect::new(5, 5, 10, 10);
        assert_eq!(r.translate(-10, 3), Rect::new(0, 8, 10, 10));
    }

    #[test]
    fn inflate_clamps_to_frame() {
        let r = Rect::new(5, 5, 10, 10);
        assert_eq!(r.inflate(10, 100, 18), Rect::new(0, 0, 25, 18));
    }
}
