//! Raw-video substrate for the TASM reproduction.
//!
//! This crate provides the uncompressed-video building blocks everything else
//! sits on: planar YUV 4:2:0 [`Frame`]s, integer pixel [`geometry`], and the
//! quality metrics (MSE / PSNR) used by the paper's evaluation (Figure 6(b)).
//!
//! Nothing in this crate knows about encoding, tiles, or objects; it is the
//! equivalent of the raw-frame layer that NVDEC hands to LightDB in the
//! paper's prototype.

pub mod frame;
pub mod geometry;
pub mod quality;
pub mod source;

pub use frame::{Frame, Plane};
pub use geometry::Rect;
pub use quality::{mse, psnr, psnr_frames, PsnrReport};
pub use source::{FrameSource, SliceSource, VecFrameSource};
