//! Random-access frame sources.
//!
//! Encoding a long video must not require holding every raw frame in memory,
//! so the codec pulls frames through [`FrameSource`]. Procedural generators
//! (the synthetic corpus in `tasm-data`) implement it by rendering on demand;
//! decoded segments implement it via [`VecFrameSource`].

use crate::frame::Frame;

/// A video that can produce any frame by index.
///
/// Implementations must be deterministic: calling `frame(i)` twice returns
/// identical pixels. This is what lets the storage manager re-tile a section
/// of video without buffering the whole sequence.
pub trait FrameSource: Sync {
    /// Frame width in luma pixels (constant across the video).
    fn width(&self) -> u32;
    /// Frame height in luma pixels (constant across the video).
    fn height(&self) -> u32;
    /// Total number of frames.
    fn len(&self) -> u32;
    /// True if the source has no frames.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Renders or fetches frame `idx` (must be `< len()`).
    fn frame(&self, idx: u32) -> Frame;
}

/// An in-memory frame source backed by a `Vec<Frame>`.
#[derive(Debug, Clone)]
pub struct VecFrameSource {
    frames: Vec<Frame>,
}

impl VecFrameSource {
    /// Wraps a non-empty vector of equally sized frames.
    ///
    /// # Panics
    /// Panics if `frames` is empty or the frames disagree on dimensions.
    pub fn new(frames: Vec<Frame>) -> Self {
        assert!(
            !frames.is_empty(),
            "VecFrameSource requires at least one frame"
        );
        let (w, h) = (frames[0].width(), frames[0].height());
        assert!(
            frames.iter().all(|f| f.width() == w && f.height() == h),
            "all frames must share dimensions"
        );
        VecFrameSource { frames }
    }

    /// Borrow the underlying frames.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Consumes the source, returning the frames.
    pub fn into_frames(self) -> Vec<Frame> {
        self.frames
    }
}

impl FrameSource for VecFrameSource {
    fn width(&self) -> u32 {
        self.frames[0].width()
    }

    fn height(&self) -> u32 {
        self.frames[0].height()
    }

    fn len(&self) -> u32 {
        self.frames.len() as u32
    }

    fn frame(&self, idx: u32) -> Frame {
        self.frames[idx as usize].clone()
    }
}

/// A view over a sub-range of another source, re-indexing from zero.
/// Used when transcoding a single sequence-of-tiles (SOT).
pub struct SliceSource<'a, S: FrameSource + ?Sized> {
    inner: &'a S,
    start: u32,
    len: u32,
}

impl<'a, S: FrameSource + ?Sized> SliceSource<'a, S> {
    /// Creates a view over `[start, start + len)` of `inner`.
    ///
    /// # Panics
    /// Panics if the range exceeds the inner source.
    pub fn new(inner: &'a S, start: u32, len: u32) -> Self {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= inner.len()),
            "slice [{start}, {start}+{len}) exceeds source of {} frames",
            inner.len()
        );
        SliceSource { inner, start, len }
    }
}

impl<S: FrameSource + ?Sized> FrameSource for SliceSource<'_, S> {
    fn width(&self) -> u32 {
        self.inner.width()
    }

    fn height(&self) -> u32 {
        self.inner.height()
    }

    fn len(&self) -> u32 {
        self.len
    }

    fn frame(&self, idx: u32) -> Frame {
        assert!(
            idx < self.len,
            "frame {idx} out of range for slice of {}",
            self.len
        );
        self.inner.frame(self.start + idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Plane;

    fn frames(n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| Frame::filled(16, 16, i as u8, 128, 128))
            .collect()
    }

    #[test]
    fn vec_source_basics() {
        let s = VecFrameSource::new(frames(4));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.width(), 16);
        assert_eq!(s.frame(2).sample(Plane::Y, 0, 0), 2);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn vec_source_rejects_empty() {
        let _ = VecFrameSource::new(vec![]);
    }

    #[test]
    fn slice_source_reindexes() {
        let s = VecFrameSource::new(frames(10));
        let slice = SliceSource::new(&s, 3, 4);
        assert_eq!(slice.len(), 4);
        assert_eq!(slice.frame(0).sample(Plane::Y, 0, 0), 3);
        assert_eq!(slice.frame(3).sample(Plane::Y, 0, 0), 6);
    }

    #[test]
    #[should_panic(expected = "exceeds source")]
    fn slice_source_bounds_checked() {
        let s = VecFrameSource::new(frames(5));
        let _ = SliceSource::new(&s, 3, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_frame_bounds_checked() {
        let s = VecFrameSource::new(frames(5));
        let slice = SliceSource::new(&s, 1, 2);
        let _ = slice.frame(2);
    }
}
