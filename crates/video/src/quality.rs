//! Video quality metrics.
//!
//! The paper evaluates tiling quality with PSNR over the stitched tiled video
//! against the original (Figure 6(b)): ≥30 dB is acceptable, ≥40 dB is good.
//! We provide per-plane and combined PSNR over frames and sequences.

use crate::frame::{Frame, Plane};

/// Mean squared error between two equal-length sample slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mse(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse requires equal-length inputs");
    if a.is_empty() {
        return 0.0;
    }
    let sum: u64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as i64 - y as i64;
            (d * d) as u64
        })
        .sum();
    sum as f64 / a.len() as f64
}

/// PSNR in dB from an MSE value, for 8-bit samples.
/// Identical inputs (MSE = 0) report `f64::INFINITY`.
pub fn psnr(mse_value: f64) -> f64 {
    if mse_value <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0_f64 * 255.0 / mse_value).log10()
    }
}

/// PSNR per plane plus the standard 6/1/1-weighted combined value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsnrReport {
    /// Luma PSNR in dB.
    pub y: f64,
    /// Cb PSNR in dB.
    pub u: f64,
    /// Cr PSNR in dB.
    pub v: f64,
    /// Weighted PSNR: (6·Y + U + V) / 8, the common YUV aggregation.
    pub combined: f64,
}

/// Computes PSNR between two frames of identical dimensions.
///
/// # Panics
/// Panics if the frames differ in size.
pub fn psnr_frames(a: &Frame, b: &Frame) -> PsnrReport {
    assert_eq!(a.width(), b.width(), "frame widths differ");
    assert_eq!(a.height(), b.height(), "frame heights differ");
    accumulate([a].into_iter().zip([b]))
}

/// Computes PSNR over a pair of equal-length frame sequences, pooling MSE
/// across all frames before converting to dB (the standard way to report
/// sequence PSNR, and what FFmpeg's `psnr` filter does).
///
/// # Panics
/// Panics if the sequences differ in length or any frame pair differs in size.
pub fn psnr_sequence<'a, A, B>(a: A, b: B) -> PsnrReport
where
    A: IntoIterator<Item = &'a Frame>,
    B: IntoIterator<Item = &'a Frame>,
{
    let a: Vec<&Frame> = a.into_iter().collect();
    let b: Vec<&Frame> = b.into_iter().collect();
    assert_eq!(a.len(), b.len(), "sequence lengths differ");
    assert!(!a.is_empty(), "cannot compute PSNR of empty sequences");
    accumulate(a.into_iter().zip(b))
}

fn accumulate<'a, I: Iterator<Item = (&'a Frame, &'a Frame)>>(pairs: I) -> PsnrReport {
    let mut sums = [0.0f64; 3];
    let mut counts = [0u64; 3];
    for (fa, fb) in pairs {
        assert_eq!(fa.width(), fb.width(), "frame widths differ");
        assert_eq!(fa.height(), fb.height(), "frame heights differ");
        for (i, plane) in Plane::ALL.iter().enumerate() {
            let pa = fa.plane(*plane);
            let pb = fb.plane(*plane);
            sums[i] += mse(pa, pb) * pa.len() as f64;
            counts[i] += pa.len() as u64;
        }
    }
    let m = |i: usize| {
        if counts[i] == 0 {
            0.0
        } else {
            sums[i] / counts[i] as f64
        }
    };
    let (my, mu, mv) = (m(0), m(1), m(2));
    let combined_mse = (6.0 * my + mu + mv) / 8.0;
    PsnrReport {
        y: psnr(my),
        u: psnr(mu),
        v: psnr(mv),
        combined: psnr(combined_mse),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    #[test]
    fn mse_identical_is_zero() {
        assert_eq!(mse(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn mse_known_value() {
        // Differences of 3 and 4 -> (9 + 16) / 2 = 12.5
        assert_eq!(mse(&[10, 10], &[13, 6]), 12.5);
    }

    #[test]
    fn psnr_of_zero_mse_is_infinite() {
        assert!(psnr(0.0).is_infinite());
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 255^2 -> PSNR = 0 dB
        assert!((psnr(255.0 * 255.0)).abs() < 1e-9);
        // MSE = 1 -> 48.13 dB
        assert!((psnr(1.0) - 48.130803608679074).abs() < 1e-9);
    }

    #[test]
    fn frame_psnr_identical() {
        let f = Frame::filled(16, 16, 128, 128, 128);
        let r = psnr_frames(&f, &f);
        assert!(r.y.is_infinite());
        assert!(r.combined.is_infinite());
    }

    #[test]
    fn frame_psnr_detects_luma_noise() {
        let a = Frame::filled(16, 16, 128, 128, 128);
        let mut b = a.clone();
        b.fill_rect(Rect::new(0, 0, 16, 16), 129, 128, 128);
        let r = psnr_frames(&a, &b);
        // MSE_y = 1 everywhere -> 48.13 dB; chroma untouched.
        assert!((r.y - 48.130803608679074).abs() < 1e-9);
        assert!(r.u.is_infinite());
        assert!(r.combined > r.y, "combined pools chroma zeros");
        assert!(r.combined.is_finite());
    }

    #[test]
    fn sequence_psnr_pools_mse() {
        let a = Frame::filled(8, 8, 100, 128, 128);
        let mut noisy = a.clone();
        noisy.fill_rect(Rect::new(0, 0, 8, 8), 102, 128, 128);
        // One identical pair + one pair with luma MSE 4 -> pooled MSE 2.
        let seq_a = [a.clone(), a.clone()];
        let seq_b = [a.clone(), noisy];
        let r = psnr_sequence(seq_a.iter(), seq_b.iter());
        assert!((r.y - psnr(2.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn sequence_length_mismatch_panics() {
        let a = Frame::black(8, 8);
        let _ = psnr_sequence([&a], Vec::<&Frame>::new());
    }
}
