//! Planar YUV 4:2:0 frames.
//!
//! All raw video in the reproduction flows through [`Frame`]: the synthetic
//! scene generator renders into frames, the codec consumes and reconstructs
//! them, and quality metrics compare them. Dimensions must be even because
//! chroma planes are subsampled 2×2.

use crate::geometry::Rect;

/// Identifies one of the three planes of a 4:2:0 frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Plane {
    /// Luma, full resolution.
    Y,
    /// Blue-difference chroma, half resolution in both dimensions.
    U,
    /// Red-difference chroma, half resolution in both dimensions.
    V,
}

impl Plane {
    /// All three planes in canonical order.
    pub const ALL: [Plane; 3] = [Plane::Y, Plane::U, Plane::V];

    /// Log2 of the subsampling factor relative to luma (0 for Y, 1 for U/V).
    pub const fn subsample_shift(self) -> u32 {
        match self {
            Plane::Y => 0,
            Plane::U | Plane::V => 1,
        }
    }
}

/// A planar YUV 4:2:0, 8-bit video frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: u32,
    height: u32,
    y: Vec<u8>,
    u: Vec<u8>,
    v: Vec<u8>,
}

impl Frame {
    /// Creates a frame filled with black (Y=16, U=V=128, video range).
    ///
    /// # Panics
    /// Panics if either dimension is zero or odd.
    pub fn black(width: u32, height: u32) -> Self {
        Self::filled(width, height, 16, 128, 128)
    }

    /// Creates a frame with each plane filled with a constant value.
    ///
    /// # Panics
    /// Panics if either dimension is zero or odd.
    pub fn filled(width: u32, height: u32, y: u8, u: u8, v: u8) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be nonzero");
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "4:2:0 frame dimensions must be even (got {width}x{height})"
        );
        let luma = (width as usize) * (height as usize);
        let chroma = luma / 4;
        Frame {
            width,
            height,
            y: vec![y; luma],
            u: vec![u; chroma],
            v: vec![v; chroma],
        }
    }

    /// Reassembles a frame from raw plane buffers (the inverse of reading
    /// the three [`Frame::plane`] slices; used when frames arrive over a
    /// byte boundary such as the wire protocol). Returns `None` instead of
    /// panicking when the dimensions are not positive and even or a plane
    /// length does not match them — callers deserializing untrusted bytes
    /// turn that into a typed error.
    pub fn from_planes(
        width: u32,
        height: u32,
        y: Vec<u8>,
        u: Vec<u8>,
        v: Vec<u8>,
    ) -> Option<Self> {
        if width == 0 || height == 0 || !width.is_multiple_of(2) || !height.is_multiple_of(2) {
            return None;
        }
        let luma = (width as usize).checked_mul(height as usize)?;
        let chroma = luma / 4;
        if y.len() != luma || u.len() != chroma || v.len() != chroma {
            return None;
        }
        Some(Frame {
            width,
            height,
            y,
            u,
            v,
        })
    }

    /// Frame width in luma pixels.
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in luma pixels.
    pub const fn height(&self) -> u32 {
        self.height
    }

    /// The full-frame rectangle.
    pub const fn rect(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Width of the given plane.
    pub const fn plane_width(&self, plane: Plane) -> u32 {
        self.width >> plane.subsample_shift()
    }

    /// Height of the given plane.
    pub const fn plane_height(&self, plane: Plane) -> u32 {
        self.height >> plane.subsample_shift()
    }

    /// Read-only access to a plane's samples in row-major order.
    pub fn plane(&self, plane: Plane) -> &[u8] {
        match plane {
            Plane::Y => &self.y,
            Plane::U => &self.u,
            Plane::V => &self.v,
        }
    }

    /// Mutable access to a plane's samples in row-major order.
    pub fn plane_mut(&mut self, plane: Plane) -> &mut [u8] {
        match plane {
            Plane::Y => &mut self.y,
            Plane::U => &mut self.u,
            Plane::V => &mut self.v,
        }
    }

    /// Sample value at `(x, y)` in the given plane's coordinate system.
    #[inline]
    pub fn sample(&self, plane: Plane, x: u32, y: u32) -> u8 {
        let w = self.plane_width(plane) as usize;
        self.plane(plane)[y as usize * w + x as usize]
    }

    /// Sets the sample at `(x, y)` in the given plane's coordinate system.
    #[inline]
    pub fn set_sample(&mut self, plane: Plane, x: u32, y: u32, value: u8) {
        let w = self.plane_width(plane) as usize;
        self.plane_mut(plane)[y as usize * w + x as usize] = value;
    }

    /// Fills a luma-coordinate rectangle with a solid YUV colour.
    /// The rectangle is clamped to the frame.
    pub fn fill_rect(&mut self, rect: Rect, y: u8, u: u8, v: u8) {
        let r = rect.clamp_to(self.width, self.height);
        if r.is_empty() {
            return;
        }
        fill_plane_rect(&mut self.y, self.width, &r, 0, y);
        fill_plane_rect(&mut self.u, self.width / 2, &chroma_rect(&r), 0, u);
        fill_plane_rect(&mut self.v, self.width / 2, &chroma_rect(&r), 0, v);
    }

    /// Copies the luma-coordinate region `src_rect` of `src` to position
    /// `(dst_x, dst_y)` in `self`. Coordinates must be even so chroma planes
    /// stay aligned; the copy is clipped to both frames.
    pub fn blit(&mut self, src: &Frame, src_rect: Rect, dst_x: u32, dst_y: u32) {
        debug_assert!(
            src_rect.x.is_multiple_of(2)
                && src_rect.y.is_multiple_of(2)
                && dst_x.is_multiple_of(2)
                && dst_y.is_multiple_of(2),
            "blit coordinates must be chroma-aligned (even)"
        );
        let src_rect = src_rect.clamp_to(src.width, src.height);
        let avail_w = self.width.saturating_sub(dst_x).min(src_rect.w);
        let avail_h = self.height.saturating_sub(dst_y).min(src_rect.h);
        if avail_w == 0 || avail_h == 0 {
            return;
        }
        for plane in Plane::ALL {
            let shift = plane.subsample_shift();
            let sw = src.plane_width(plane) as usize;
            let dw = self.plane_width(plane) as usize;
            let (sx, sy) = (
                (src_rect.x >> shift) as usize,
                (src_rect.y >> shift) as usize,
            );
            let (dx, dy) = ((dst_x >> shift) as usize, (dst_y >> shift) as usize);
            let (cw, ch) = ((avail_w >> shift) as usize, (avail_h >> shift) as usize);
            let sp = src.plane(plane);
            let dp = self.plane_mut(plane);
            for row in 0..ch {
                let s = (sy + row) * sw + sx;
                let d = (dy + row) * dw + dx;
                dp[d..d + cw].copy_from_slice(&sp[s..s + cw]);
            }
        }
    }

    /// Extracts a luma-coordinate region as a new frame. Coordinates must be
    /// even; the rectangle must lie within the frame.
    ///
    /// # Panics
    /// Panics if `rect` exceeds the frame bounds or is not chroma-aligned.
    pub fn crop(&self, rect: Rect) -> Frame {
        assert!(
            self.rect().contains(&rect) && !rect.is_empty(),
            "crop rect {rect:?} out of bounds for {}x{} frame",
            self.width,
            self.height
        );
        assert!(
            rect.x.is_multiple_of(2)
                && rect.y.is_multiple_of(2)
                && rect.w.is_multiple_of(2)
                && rect.h.is_multiple_of(2),
            "crop rect must be chroma-aligned: {rect:?}"
        );
        let mut out = Frame::black(rect.w, rect.h);
        out.blit(self, rect, 0, 0);
        out
    }

    /// Total number of samples across all three planes (the paper's decode
    /// cost is linear in decoded pixels; we count luma+chroma samples).
    pub fn sample_count(&self) -> u64 {
        self.y.len() as u64 + self.u.len() as u64 + self.v.len() as u64
    }
}

/// Maps a luma-coordinate rect to chroma coordinates (rounding outward so the
/// chroma area covers the full luma area).
fn chroma_rect(r: &Rect) -> Rect {
    let x = r.x / 2;
    let y = r.y / 2;
    let right = r.right().div_ceil(2);
    let bottom = r.bottom().div_ceil(2);
    Rect::new(x, y, right - x, bottom - y)
}

fn fill_plane_rect(plane: &mut [u8], plane_w: u32, r: &Rect, _shift: u32, value: u8) {
    let w = plane_w as usize;
    for row in r.y..r.bottom() {
        let start = row as usize * w + r.x as usize;
        plane[start..start + r.w as usize].fill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_dimensions_and_planes() {
        let f = Frame::filled(16, 8, 100, 110, 120);
        assert_eq!(f.width(), 16);
        assert_eq!(f.height(), 8);
        assert_eq!(f.plane(Plane::Y).len(), 128);
        assert_eq!(f.plane(Plane::U).len(), 32);
        assert_eq!(f.plane(Plane::V).len(), 32);
        assert!(f.plane(Plane::Y).iter().all(|&s| s == 100));
        assert!(f.plane(Plane::U).iter().all(|&s| s == 110));
        assert!(f.plane(Plane::V).iter().all(|&s| s == 120));
        assert_eq!(f.sample_count(), 128 + 64);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_dimensions_rejected() {
        let _ = Frame::black(15, 8);
    }

    #[test]
    fn sample_roundtrip() {
        let mut f = Frame::black(8, 8);
        f.set_sample(Plane::Y, 3, 2, 200);
        f.set_sample(Plane::U, 1, 1, 42);
        assert_eq!(f.sample(Plane::Y, 3, 2), 200);
        assert_eq!(f.sample(Plane::U, 1, 1), 42);
        assert_eq!(f.sample(Plane::Y, 0, 0), 16);
    }

    #[test]
    fn fill_rect_covers_chroma() {
        let mut f = Frame::black(16, 16);
        f.fill_rect(Rect::new(4, 4, 8, 8), 235, 50, 60);
        assert_eq!(f.sample(Plane::Y, 4, 4), 235);
        assert_eq!(f.sample(Plane::Y, 11, 11), 235);
        assert_eq!(f.sample(Plane::Y, 3, 4), 16);
        assert_eq!(f.sample(Plane::U, 2, 2), 50);
        assert_eq!(f.sample(Plane::V, 5, 5), 60);
    }

    #[test]
    fn fill_rect_clamps_out_of_bounds() {
        let mut f = Frame::black(8, 8);
        f.fill_rect(Rect::new(6, 6, 10, 10), 200, 128, 128);
        assert_eq!(f.sample(Plane::Y, 7, 7), 200);
        // Entirely outside: no panic, no effect.
        f.fill_rect(Rect::new(100, 100, 4, 4), 0, 0, 0);
    }

    #[test]
    fn blit_and_crop_roundtrip() {
        let mut src = Frame::black(32, 32);
        src.fill_rect(Rect::new(8, 8, 8, 8), 180, 90, 200);
        let cropped = src.crop(Rect::new(8, 8, 8, 8));
        assert_eq!(cropped.width(), 8);
        assert!(cropped.plane(Plane::Y).iter().all(|&s| s == 180));
        assert!(cropped.plane(Plane::U).iter().all(|&s| s == 90));

        let mut dst = Frame::black(32, 32);
        dst.blit(&cropped, cropped.rect(), 16, 16);
        assert_eq!(dst.sample(Plane::Y, 16, 16), 180);
        assert_eq!(dst.sample(Plane::Y, 23, 23), 180);
        assert_eq!(dst.sample(Plane::Y, 24, 24), 16);
        assert_eq!(dst.sample(Plane::V, 8, 8), 200);
    }

    #[test]
    fn blit_clips_to_destination() {
        let src = Frame::filled(8, 8, 77, 128, 128);
        let mut dst = Frame::black(8, 8);
        dst.blit(&src, src.rect(), 4, 4);
        assert_eq!(dst.sample(Plane::Y, 4, 4), 77);
        assert_eq!(dst.sample(Plane::Y, 7, 7), 77);
        assert_eq!(dst.sample(Plane::Y, 3, 3), 16);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn crop_out_of_bounds_panics() {
        let f = Frame::black(8, 8);
        let _ = f.crop(Rect::new(4, 4, 8, 8));
    }

    #[test]
    fn chroma_rect_rounds_outward() {
        let r = chroma_rect(&Rect::new(1, 1, 3, 3));
        assert_eq!(r, Rect::new(0, 0, 2, 2));
    }
}
