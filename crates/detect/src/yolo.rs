//! Simulated YOLO-family detectors.
//!
//! A real network is neither available nor necessary: TASM's behaviour
//! depends only on which boxes come back and what they cost. The simulation
//! degrades ground truth with the failure modes that matter to the paper's
//! evaluation:
//!
//! * **recall** — a fraction of objects is missed (deterministically per
//!   object and frame);
//! * **minimum size** — small objects are missed preferentially (the actual
//!   dominant failure of YOLOv3-tiny, which drives §5.2.4's finding that
//!   tiny-YOLO layouts reach only ~16% improvement);
//! * **jitter** — box corners are perturbed by a fraction of the box size.
//!
//! Cost per frame follows the sources the paper cites: full YOLOv3 runs at
//! ~16 fps on an embedded GPU \[20\] and ~45 fps on a server GPU; tiny at
//! ~220 fps.

use crate::{Detector, RawDetection};
use tasm_video::{Frame, Rect};

/// Where the detector runs — sets the simulated per-frame cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// Server-class GPU (the paper's P5000 testbed).
    ServerGpu,
    /// Embedded GPU on an edge camera.
    EdgeGpu,
}

/// Configuration of a simulated detector.
#[derive(Debug, Clone)]
pub struct YoloConfig {
    /// Report name.
    pub name: &'static str,
    /// Probability an object (large enough) is detected on a given frame.
    pub recall: f64,
    /// Objects smaller than this fraction of the frame area are missed.
    pub min_area_frac: f64,
    /// Box corners move by up to this fraction of box dimensions.
    pub jitter_frac: f64,
    /// Seconds per frame on a server GPU.
    pub server_spf: f64,
    /// Seconds per frame on an edge GPU.
    pub edge_spf: f64,
}

/// A deterministic simulated YOLO detector.
pub struct SimulatedYolo {
    cfg: YoloConfig,
    platform: Platform,
    seed: u64,
}

impl SimulatedYolo {
    /// Full YOLOv3: high recall, small jitter. ~45 fps server, ~16 fps edge.
    pub fn full(seed: u64) -> Self {
        SimulatedYolo {
            cfg: YoloConfig {
                name: "yolov3",
                recall: 0.95,
                min_area_frac: 0.00005,
                jitter_frac: 0.04,
                server_spf: 1.0 / 45.0,
                edge_spf: 1.0 / 16.0,
            },
            platform: Platform::ServerGpu,
            seed,
        }
    }

    /// YOLOv3-tiny: fast but misses roughly half of the objects, all small
    /// ones, and localizes poorly.
    pub fn tiny(seed: u64) -> Self {
        SimulatedYolo {
            cfg: YoloConfig {
                name: "yolov3-tiny",
                recall: 0.55,
                min_area_frac: 0.002,
                jitter_frac: 0.15,
                server_spf: 1.0 / 220.0,
                edge_spf: 1.0 / 60.0,
            },
            platform: Platform::ServerGpu,
            seed,
        }
    }

    /// A custom configuration (for ablations).
    pub fn with_config(cfg: YoloConfig, seed: u64) -> Self {
        SimulatedYolo {
            cfg,
            platform: Platform::ServerGpu,
            seed,
        }
    }

    /// Moves the detector to a platform (changes only the cost profile).
    pub fn on(mut self, platform: Platform) -> Self {
        self.platform = platform;
        self
    }
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[inline]
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

impl Detector for SimulatedYolo {
    fn name(&self) -> &'static str {
        self.cfg.name
    }

    fn seconds_per_frame(&self) -> f64 {
        match self.platform {
            Platform::ServerGpu => self.cfg.server_spf,
            Platform::EdgeGpu => self.cfg.edge_spf,
        }
    }

    fn needs_pixels(&self) -> bool {
        false
    }

    fn detect(
        &mut self,
        frame_idx: u32,
        pixels: Option<&Frame>,
        truth: &[(&'static str, Rect)],
    ) -> Vec<RawDetection> {
        // Frame bounds for jitter clamping: from pixels when available,
        // otherwise from the hull of the truth boxes (jitter stays inside).
        let (fw, fh) = match pixels {
            Some(f) => (f.width(), f.height()),
            None => {
                let hull = Rect::hull(truth.iter().map(|(_, b)| b));
                (hull.right().max(1), hull.bottom().max(1))
            }
        };
        let frame_area = fw as f64 * fh as f64;
        let mut out = Vec::with_capacity(truth.len());
        for (i, (label, bbox)) in truth.iter().enumerate() {
            let h =
                splitmix(self.seed ^ ((frame_idx as u64) << 24) ^ (i as u64) ^ hash_label(label));
            // Size gate: small objects are invisible to this detector.
            if (bbox.area() as f64) < self.cfg.min_area_frac * frame_area {
                continue;
            }
            // Recall gate.
            if unit(splitmix(h ^ 1)) >= self.cfg.recall {
                continue;
            }
            // Jitter each edge independently.
            let jx = (self.cfg.jitter_frac * bbox.w as f64) as i64;
            let jy = (self.cfg.jitter_frac * bbox.h as f64) as i64;
            let dx = jitter(splitmix(h ^ 2), jx);
            let dy = jitter(splitmix(h ^ 3), jy);
            let dw = jitter(splitmix(h ^ 4), jx);
            let dh = jitter(splitmix(h ^ 5), jy);
            let x = (bbox.x as i64 + dx).max(0) as u32;
            let y = (bbox.y as i64 + dy).max(0) as u32;
            let w = ((bbox.w as i64 + dw).max(4)) as u32;
            let hgt = ((bbox.h as i64 + dh).max(4)) as u32;
            let jittered = Rect::new(x, y, w, hgt).clamp_to(fw, fh);
            if jittered.is_empty() {
                continue;
            }
            out.push(RawDetection {
                label: label.to_string(),
                bbox: jittered,
                confidence: 0.5 + 0.5 * unit(splitmix(h ^ 6)),
            });
        }
        out
    }
}

fn hash_label(label: &str) -> u64 {
    label.bytes().fold(0xcbf29ce484222325u64, |acc, b| {
        (acc ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Signed jitter in [-range, range].
fn jitter(h: u64, range: i64) -> i64 {
    if range == 0 {
        return 0;
    }
    (h % (2 * range as u64 + 1)) as i64 - range
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> Vec<(&'static str, Rect)> {
        vec![
            ("car", Rect::new(100, 100, 64, 40)),
            ("person", Rect::new(300, 200, 20, 52)),
            ("car", Rect::new(500, 80, 60, 36)),
        ]
    }

    #[test]
    fn full_yolo_detects_most_objects() {
        let mut d = SimulatedYolo::full(7);
        let mut total = 0;
        for f in 0..100 {
            total += d.detect(f, None, &truth()).len();
        }
        // recall 0.95 over 300 opportunities.
        assert!((265..=300).contains(&total), "detected {total}/300");
    }

    #[test]
    fn detection_is_deterministic() {
        let mut a = SimulatedYolo::full(7);
        let mut b = SimulatedYolo::full(7);
        assert_eq!(a.detect(5, None, &truth()), b.detect(5, None, &truth()));
    }

    #[test]
    fn tiny_misses_small_objects() {
        let mut tiny = SimulatedYolo::tiny(7);
        // 640x360-ish scene: the 20x52 person is ~0.45% of the frame — above
        // tiny's gate; shrink it below.
        let small = vec![("person", Rect::new(300, 200, 8, 12))];
        let frame = Frame::black(640, 352);
        for f in 0..50 {
            assert!(
                tiny.detect(f, Some(&frame), &small).is_empty(),
                "tiny-YOLO should never see an 8x12 object"
            );
        }
    }

    #[test]
    fn tiny_detects_fewer_than_full() {
        let mut full = SimulatedYolo::full(7);
        let mut tiny = SimulatedYolo::tiny(7);
        let frame = Frame::black(640, 352);
        let (mut nf, mut nt) = (0, 0);
        for f in 0..100 {
            nf += full.detect(f, Some(&frame), &truth()).len();
            nt += tiny.detect(f, Some(&frame), &truth()).len();
        }
        assert!(nt < nf, "tiny ({nt}) should trail full ({nf})");
    }

    #[test]
    fn jitter_keeps_boxes_in_frame_and_overlapping() {
        let mut d = SimulatedYolo::full(3);
        let frame = Frame::black(640, 352);
        let t = truth();
        for f in 0..50 {
            for det in d.detect(f, Some(&frame), &t) {
                assert!(det.bbox.right() <= 640 && det.bbox.bottom() <= 352);
                let overlaps_truth = t
                    .iter()
                    .any(|(l, b)| *l == det.label && det.bbox.iou(b) > 0.3);
                assert!(
                    overlaps_truth,
                    "jittered box {:?} drifted too far",
                    det.bbox
                );
                assert!((0.5..=1.0).contains(&det.confidence));
            }
        }
    }

    #[test]
    fn edge_platform_is_slower() {
        let server = SimulatedYolo::full(1);
        let edge = SimulatedYolo::full(1).on(Platform::EdgeGpu);
        assert!(edge.seconds_per_frame() > server.seconds_per_frame());
        // Paper: embedded GPUs reach up to 16 fps on full YOLOv3.
        assert!((edge.seconds_per_frame() - 1.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn empty_truth_yields_empty() {
        let mut d = SimulatedYolo::full(1);
        assert!(d.detect(0, None, &[]).is_empty());
    }
}
