//! Background subtraction.
//!
//! §5.2.4 of the paper evaluates tile layouts built from "KNN-based
//! background segmentation implemented in OpenCV" and finds they perform
//! about 3% *worse* than not tiling: the detector does not find the right
//! foreground pixels, especially when the camera moves, and queried objects
//! are sometimes stationary (background by definition).
//!
//! This module implements a genuine (if simple) subtractor so those failure
//! modes arise from real pixel processing, not a hard-coded penalty: a
//! per-pixel running-average background model, thresholded difference,
//! occupancy pooling into 8×8 cells, and connected-component box extraction.

use crate::{Detector, RawDetection};
use tasm_video::{Frame, Plane, Rect};

/// Label attached to foreground regions (there is no class information).
pub const FOREGROUND_LABEL: &str = "foreground";

/// Running-average background subtractor.
pub struct BackgroundSubtractor {
    /// Per-pixel background model in 8.8 fixed point (luma only).
    model: Vec<u32>,
    width: u32,
    height: u32,
    /// Learning rate numerator: model += (pixel - model) / RATE.
    rate: u32,
    /// |pixel − background| threshold for foreground.
    threshold: i32,
    /// Fraction of foreground pixels for a cell to count as occupied.
    cell_occupancy: f64,
    frames_seen: u32,
}

impl BackgroundSubtractor {
    /// Creates a subtractor with the default parameters.
    pub fn new() -> Self {
        BackgroundSubtractor {
            model: Vec::new(),
            width: 0,
            height: 0,
            rate: 16,
            threshold: 24,
            cell_occupancy: 0.25,
            frames_seen: 0,
        }
    }

    /// Number of frames consumed so far.
    pub fn frames_seen(&self) -> u32 {
        self.frames_seen
    }

    fn ensure_model(&mut self, frame: &Frame) {
        let (w, h) = (frame.width(), frame.height());
        if self.width != w || self.height != h {
            self.width = w;
            self.height = h;
            self.model = frame
                .plane(Plane::Y)
                .iter()
                .map(|&p| (p as u32) << 8)
                .collect();
        }
    }

    /// Updates the model with one frame and returns a per-cell foreground
    /// mask (cells are 8×8 luma pixels), dimensions (cells_w, cells_h).
    fn foreground_cells(&mut self, frame: &Frame) -> (Vec<bool>, usize, usize) {
        self.ensure_model(frame);
        let w = self.width as usize;
        let h = self.height as usize;
        let cw = w / 8;
        let ch = h / 8;
        let mut counts = vec![0u32; cw * ch];
        let luma = frame.plane(Plane::Y);
        for y in 0..h {
            let row = y * w;
            for x in 0..w {
                let pix = luma[row + x] as i32;
                let bg = (self.model[row + x] >> 8) as i32;
                if (pix - bg).abs() > self.threshold {
                    counts[(y / 8) * cw + x / 8] += 1;
                }
                // Exponential update toward the new pixel.
                let m = self.model[row + x] as i64;
                let target = (pix as i64) << 8;
                self.model[row + x] = (m + (target - m) / self.rate as i64) as u32;
            }
        }
        let need = (64.0 * self.cell_occupancy) as u32;
        (counts.iter().map(|&c| c >= need).collect(), cw, ch)
    }
}

impl Default for BackgroundSubtractor {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for BackgroundSubtractor {
    fn name(&self) -> &'static str {
        "bg-subtraction"
    }

    fn seconds_per_frame(&self) -> f64 {
        // Cheap classical CV: hundreds of fps even on modest hardware.
        1.0 / 400.0
    }

    fn needs_pixels(&self) -> bool {
        true
    }

    fn detect(
        &mut self,
        _frame_idx: u32,
        pixels: Option<&Frame>,
        _truth: &[(&'static str, Rect)],
    ) -> Vec<RawDetection> {
        let Some(frame) = pixels else {
            debug_assert!(false, "background subtraction requires pixels");
            return Vec::new();
        };
        let first = self.frames_seen == 0 && self.model.is_empty();
        let (cells, cw, ch) = self.foreground_cells(frame);
        self.frames_seen += 1;
        if first {
            // The model was just initialized from this frame: everything
            // matches the background, nothing to report.
            return Vec::new();
        }
        components(&cells, cw, ch)
            .into_iter()
            .map(|cell_rect| RawDetection {
                label: FOREGROUND_LABEL.to_string(),
                bbox: Rect::new(
                    cell_rect.x * 8,
                    cell_rect.y * 8,
                    cell_rect.w * 8,
                    cell_rect.h * 8,
                ),
                confidence: 0.5,
            })
            .collect()
    }
}

/// 4-connected component bounding boxes over a boolean cell grid.
fn components(cells: &[bool], cw: usize, ch: usize) -> Vec<Rect> {
    let mut seen = vec![false; cells.len()];
    let mut out = Vec::new();
    let mut stack = Vec::new();
    for start in 0..cells.len() {
        if !cells[start] || seen[start] {
            continue;
        }
        let (mut min_x, mut min_y) = (cw as u32, ch as u32);
        let (mut max_x, mut max_y) = (0u32, 0u32);
        stack.push(start);
        seen[start] = true;
        while let Some(i) = stack.pop() {
            let (x, y) = ((i % cw) as u32, (i / cw) as u32);
            min_x = min_x.min(x);
            min_y = min_y.min(y);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
            let neighbours = [
                (x > 0).then(|| i - 1),
                (x + 1 < cw as u32).then(|| i + 1),
                (y > 0).then(|| i - cw),
                (y + 1 < ch as u32).then(|| i + cw),
            ];
            for n in neighbours.into_iter().flatten() {
                if cells[n] && !seen[n] {
                    seen[n] = true;
                    stack.push(n);
                }
            }
        }
        out.push(Rect::new(
            min_x,
            min_y,
            max_x - min_x + 1,
            max_y - min_y + 1,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with_square(x: u32, luma: u8) -> Frame {
        let mut f = Frame::filled(128, 96, 80, 128, 128);
        f.fill_rect(Rect::new(x, 32, 24, 24), luma, 128, 128);
        f
    }

    #[test]
    fn static_scene_has_no_foreground() {
        let mut d = BackgroundSubtractor::new();
        let f = Frame::filled(128, 96, 80, 128, 128);
        for i in 0..5 {
            assert!(d.detect(i, Some(&f), &[]).is_empty(), "frame {i}");
        }
    }

    #[test]
    fn moving_object_detected() {
        let mut d = BackgroundSubtractor::new();
        // Warm up the model on the empty scene.
        let bg = Frame::filled(128, 96, 80, 128, 128);
        for i in 0..10 {
            d.detect(i, Some(&bg), &[]);
        }
        // A bright square appears.
        let dets = d.detect(10, Some(&frame_with_square(40, 220)), &[]);
        assert!(!dets.is_empty(), "appearing object should be foreground");
        let b = dets[0].bbox;
        assert!(
            b.intersects(&Rect::new(40, 32, 24, 24)),
            "box {b:?} should cover the square"
        );
        assert_eq!(dets[0].label, FOREGROUND_LABEL);
    }

    #[test]
    fn stationary_object_absorbs_into_background() {
        let mut d = BackgroundSubtractor::new();
        let f = frame_with_square(40, 220);
        // Model initialized from the first frame: the square is background
        // immediately — the paper's "queried objects will occasionally be in
        // the background" failure.
        d.detect(0, Some(&f), &[]);
        let dets = d.detect(1, Some(&f), &[]);
        assert!(dets.is_empty(), "stationary object must vanish: {dets:?}");
    }

    #[test]
    fn camera_pan_floods_the_mask() {
        let mut d = BackgroundSubtractor::new();
        // Textured background that shifts every frame (camera pan).
        let textured = |off: u32| {
            let mut f = Frame::black(128, 96);
            for y in 0..96 {
                for x in 0..128u32 {
                    let v = (((x + off) / 4 + y / 4) % 2) as u8 * 120 + 60;
                    f.set_sample(Plane::Y, x, y, v);
                }
            }
            f
        };
        for i in 0..5 {
            d.detect(i, Some(&textured(i)), &[]);
        }
        let dets = d.detect(5, Some(&textured(5 * 4)), &[]);
        // Everything moves -> huge useless foreground regions.
        let covered: u64 = dets.iter().map(|d| d.bbox.area()).sum();
        assert!(
            covered > (128 * 96) / 3,
            "pan should flood the mask, covered only {covered}"
        );
    }

    #[test]
    fn components_merges_adjacent_cells() {
        let mut cells = vec![false; 16];
        // 4x4 grid: cells (0,0), (1,0), (1,1) touch; (3,3) isolated.
        cells[0] = true;
        cells[1] = true;
        cells[5] = true;
        cells[15] = true;
        let boxes = components(&cells, 4, 4);
        assert_eq!(boxes.len(), 2);
        assert!(boxes.contains(&Rect::new(0, 0, 2, 2)));
        assert!(boxes.contains(&Rect::new(3, 3, 1, 1)));
    }
}
