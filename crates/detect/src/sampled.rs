//! Frame-sampled detection.
//!
//! Edge cameras cannot run a heavy detector at capture rate (§4.3, §5.2.4):
//! "executing object detection every few frames yields tile layouts that
//! perform similarly to layouts created around detections from every frame".
//! [`SampledDetector`] wraps any detector and runs it on every k-th frame,
//! returning the last detections (held boxes) for skipped frames.

use crate::{Detector, RawDetection};
use tasm_video::{Frame, Rect};

/// Runs an inner detector every `stride` frames.
pub struct SampledDetector<D: Detector> {
    inner: D,
    stride: u32,
    /// Detections from the most recent processed frame, replayed on
    /// skipped frames (objects persist across a few frames).
    held: Vec<RawDetection>,
    processed: u64,
    offered: u64,
}

impl<D: Detector> SampledDetector<D> {
    /// Wraps `inner`, running it on frames where `frame_idx % stride == 0`.
    ///
    /// # Panics
    /// Panics if `stride` is zero.
    pub fn new(inner: D, stride: u32) -> Self {
        assert!(stride > 0, "stride must be positive");
        SampledDetector {
            inner,
            stride,
            held: Vec::new(),
            processed: 0,
            offered: 0,
        }
    }

    /// Frames actually run through the inner detector.
    pub fn frames_processed(&self) -> u64 {
        self.processed
    }

    /// Total detection cost so far in simulated seconds (only processed
    /// frames cost anything).
    pub fn total_cost_seconds(&self) -> f64 {
        self.processed as f64 * self.inner.seconds_per_frame()
    }

    /// Access the wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: Detector> Detector for SampledDetector<D> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn seconds_per_frame(&self) -> f64 {
        // Amortized: inner cost spread over the stride.
        self.inner.seconds_per_frame() / self.stride as f64
    }

    fn needs_pixels(&self) -> bool {
        self.inner.needs_pixels()
    }

    fn detect(
        &mut self,
        frame_idx: u32,
        pixels: Option<&Frame>,
        truth: &[(&'static str, Rect)],
    ) -> Vec<RawDetection> {
        self.offered += 1;
        if frame_idx.is_multiple_of(self.stride) {
            self.held = self.inner.detect(frame_idx, pixels, truth);
            self.processed += 1;
        }
        self.held.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yolo::SimulatedYolo;

    fn truth(x: u32) -> Vec<(&'static str, Rect)> {
        vec![("car", Rect::new(x, 50, 60, 40))]
    }

    #[test]
    fn processes_every_kth_frame() {
        let mut d = SampledDetector::new(SimulatedYolo::full(1), 5);
        for f in 0..20 {
            d.detect(f, None, &truth(f * 2));
        }
        assert_eq!(d.frames_processed(), 4); // frames 0, 5, 10, 15
    }

    #[test]
    fn holds_boxes_between_samples() {
        let mut d = SampledDetector::new(SimulatedYolo::full(1), 5);
        let at0 = d.detect(0, None, &truth(100));
        // Frame 3: object moved, but held boxes are from frame 0.
        let at3 = d.detect(3, None, &truth(130));
        assert_eq!(at0, at3);
        // Frame 5: re-detected at the new position.
        let at5 = d.detect(5, None, &truth(150));
        assert_ne!(at3, at5);
    }

    #[test]
    fn amortized_cost_scales_with_stride() {
        let every = SampledDetector::new(SimulatedYolo::full(1), 1);
        let fifth = SampledDetector::new(SimulatedYolo::full(1), 5);
        assert!((every.seconds_per_frame() / fifth.seconds_per_frame() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn total_cost_counts_only_processed() {
        let mut d = SampledDetector::new(SimulatedYolo::full(1), 2);
        for f in 0..10 {
            d.detect(f, None, &truth(f));
        }
        let expected = 5.0 * SimulatedYolo::full(1).seconds_per_frame();
        assert!((d.total_cost_seconds() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = SampledDetector::new(SimulatedYolo::full(1), 0);
    }
}
