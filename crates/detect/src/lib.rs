//! Object-detection substrate for the TASM reproduction.
//!
//! TASM never runs neural networks itself — it consumes `(label, bounding
//! box)` streams produced by detectors and reasons about their *cost* and
//! *quality* (§3.3, §4.3, §5.2.4). This crate provides those streams:
//!
//! * [`yolo`] — simulated YOLOv3 / YOLOv3-tiny: ground-truth boxes degraded
//!   by configurable recall, minimum object size, and jitter, with per-frame
//!   cost profiles taken from the figures the paper cites (full YOLOv3 at
//!   ~16 fps on an embedded GPU, faster on a server GPU);
//! * [`background`] — a real running-average background subtractor with
//!   connected-component box extraction, reproducing the §5.2.4 failure
//!   modes (poor boxes, useless under camera motion);
//! * [`sampled`] — run any detector every k-th frame (edge strategy,
//!   §5.2.4).
//!
//! Detectors are deterministic: the same frame yields the same detections.

pub mod background;
pub mod sampled;
pub mod yolo;

use tasm_video::{Frame, Rect};

/// One detector output: a labelled box with a confidence score.
#[derive(Debug, Clone, PartialEq)]
pub struct RawDetection {
    /// Object class label.
    pub label: String,
    /// Bounding box in luma pixels.
    pub bbox: Rect,
    /// Confidence in [0, 1].
    pub confidence: f64,
}

/// A source of object detections.
pub trait Detector {
    /// Short name for reports ("yolov3", "yolov3-tiny", "bg-subtraction").
    fn name(&self) -> &'static str;

    /// Simulated inference cost per processed frame, in seconds. Used by the
    /// harness to account for detection time (Figure 12) without actually
    /// running a network.
    fn seconds_per_frame(&self) -> f64;

    /// True if [`Detector::detect`] reads pixels (callers can skip rendering
    /// frames for detectors that only consume ground truth).
    fn needs_pixels(&self) -> bool;

    /// Detects objects on one frame.
    ///
    /// `truth` carries the generator's ground-truth boxes (what a perfect
    /// detector would output); pixel-based detectors ignore it and use
    /// `pixels` instead. Deterministic per (detector state, frame_idx).
    fn detect(
        &mut self,
        frame_idx: u32,
        pixels: Option<&Frame>,
        truth: &[(&'static str, Rect)],
    ) -> Vec<RawDetection>;
}

impl<D: Detector + ?Sized> Detector for Box<D> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn seconds_per_frame(&self) -> f64 {
        (**self).seconds_per_frame()
    }

    fn needs_pixels(&self) -> bool {
        (**self).needs_pixels()
    }

    fn detect(
        &mut self,
        frame_idx: u32,
        pixels: Option<&Frame>,
        truth: &[(&'static str, Rect)],
    ) -> Vec<RawDetection> {
        (**self).detect(frame_idx, pixels, truth)
    }
}

#[cfg(test)]
mod tests {
    use super::yolo::SimulatedYolo;
    use super::*;

    #[test]
    fn trait_object_usable() {
        let mut d: Box<dyn Detector> = Box::new(SimulatedYolo::full(1));
        let out = d.detect(0, None, &[("car", Rect::new(10, 10, 40, 30))]);
        assert_eq!(d.name(), "yolov3");
        assert!(!out.is_empty());
    }
}
