//! # tasm-service: a concurrent multi-query engine over TASM
//!
//! The core crate's [`Tasm`](tasm_core::Tasm) facade answers one query at a
//! time from the caller's thread. This crate turns it into a *service*: many
//! overlapping queries in flight at once, sharing decode work, while the
//! incremental layout policies (§4 of the paper) run in the background
//! instead of blocking the query path.
//!
//! ## Architecture
//!
//! ```text
//!                 submit() / try_submit()
//!   clients ────────────────────────────────► bounded queue (depth D)
//!                                                   │ pop
//!                        ┌──────────────┬───────────┴┬──────────────┐
//!                        ▼              ▼            ▼              ▼
//!                    worker 0       worker 1     worker …       worker N-1
//!                        │  Tasm::query(&self) — plans (ROI/stride/limit
//!                        │  pruning), then decodes — concurrent, sharded
//!                        ▼
//!            ┌──────────────────────────────────────────────────────────┐
//!            │ shared Tasm: RwLock'd semantic index · per-video shards  │
//!            │ (MVCC epoch table + policy Mutex) · decoded-GOP cache    │
//!            │ with single-flight shared-scan dedup (SharedScanStats)   │
//!            └──────────────────────────────────────────────────────────┘
//!                        │ observations (video, label, window)
//!                        ▼
//!                 retile daemon (1 low-priority thread)
//!                 drains the backlog, runs observe_regret /
//!                 observe_more, re-tiles when η·R(s,L) is exceeded
//! ```
//!
//! Three properties make this safe and fast:
//!
//! 1. **Shareable hot path.** `Tasm::scan` takes `&self`; the semantic
//!    index lock is released before decode starts, and per-video state is
//!    sharded so queries on different videos never contend.
//! 2. **Single-flight shared-scan dedup.** Concurrent queries needing the
//!    same `(video, SOT, tile, GOP)` decode join one in-flight decode
//!    instead of each paying for it. [`ServiceStats::shared`] counts joined
//!    vs. owned decodes; joined work never pollutes the §4.1 cost model's
//!    decode accounting.
//! 3. **Bit-exact concurrent re-tiling.** The daemon's re-tiles publish a
//!    new MVCC layout epoch immediately — never waiting on in-flight
//!    queries, which read the epoch they pinned at plan time to completion
//!    — so every scan observes exactly one consistent layout epoch and
//!    returns the same pixels a serial execution at that epoch would.
//!    Superseded epochs are reclaimed when their last reader drains.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use tasm_core::{LabelPredicate, Query, QueryMode, Tasm, TasmConfig};
//! use tasm_index::MemoryIndex;
//! use tasm_service::{QueryRequest, QueryService, RetilePolicy, ServiceConfig};
//! use tasm_video::Rect;
//!
//! let tasm = Arc::new(
//!     Tasm::open("/tmp/store", Box::new(MemoryIndex::in_memory()), TasmConfig::default())
//!         .unwrap(),
//! );
//! // ... ingest videos, add metadata ...
//!
//! let service = QueryService::start(
//!     tasm,
//!     ServiceConfig {
//!         workers: 8,
//!         queue_depth: 64,
//!         retile: RetilePolicy::Regret,
//!         ..ServiceConfig::default()
//!     },
//! );
//!
//! // Plain label scans...
//! let handles: Vec<_> = (0..100)
//!     .map(|i| {
//!         service
//!             .submit(QueryRequest::scan(
//!                 "traffic",
//!                 LabelPredicate::label("car"),
//!                 i * 30..(i + 1) * 30,
//!             ))
//!             .unwrap()
//!     })
//!     .collect();
//! // ...and full spatiotemporal queries: ROI + stride + limit, planned so
//! // that pruned tiles and GOPs are never decoded.
//! let roi = service
//!     .submit(QueryRequest::new(
//!         "traffic",
//!         Query::new(LabelPredicate::label("car"))
//!             .frames(0..3000)
//!             .roi(Rect::new(0, 0, 320, 352))
//!             .stride(5)
//!             .limit(10)
//!             .mode(QueryMode::Pixels),
//!     ))
//!     .unwrap();
//! for h in handles.into_iter().chain([roi]) {
//!     let outcome = h.wait().unwrap();
//!     println!("query {}: {} regions", outcome.id, outcome.result.regions.len());
//! }
//! // Drain: every accepted query completes before the threads join.
//! let report = service.shutdown(tasm_service::Shutdown::Drain);
//! println!(
//!     "completed {} queries, {:.0}% of GOP decodes deduped, p95 {:?}",
//!     report.completed,
//!     report.stats.shared.join_rate() * 100.0,
//!     report.stats.latency.p95()
//! );
//! ```
//!
//! The `tasm workload` CLI command drives exactly this pipeline:
//! `tasm workload --store DIR --name NAME --concurrency 16 --queue-depth 64`.

mod daemon;
mod service;
mod stats;

pub use service::{
    QueryHandle, QueryOutcome, QueryRequest, QueryService, RetileHook, RetilePolicy, ServiceConfig,
    ServiceError, Shutdown, ShutdownReport,
};
pub use stats::{LatencyHistogram, ServiceStats, LATENCY_BUCKETS};
