//! Aggregate service statistics, maintained lock-free by the workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tasm_core::{PlanStats, ScanResult, SharedScanStats};

/// Number of buckets in the bounded latency histogram: bucket `i` counts
/// latencies whose microsecond value has `i` as its floored log2 (bucket 0
/// additionally holds sub-microsecond latencies). 40 buckets reach
/// 2⁴⁰ µs ≈ 12.7 days, far past any query latency.
pub const LATENCY_BUCKETS: usize = 40;

/// Atomic side of the latency histogram: workers increment one bucket per
/// completed query with two extra `fetch_add`s for the count and the sum —
/// no locks, no allocation, and no timing syscalls beyond the two
/// timestamps the worker already takes.
pub(crate) struct LatencyCell {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Default for LatencyCell {
    fn default() -> Self {
        LatencyCell {
            buckets: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyCell {
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros() as u64;
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        // Release pairs with the Acquire count load in `snapshot`: a
        // snapshot that observes this count also observes the bucket
        // increment above.
        self.count.fetch_add(1, Ordering::Release);
    }

    pub fn snapshot(&self) -> LatencyHistogram {
        // Count is read *before* the buckets: a racing `record` then at
        // worst leaves the snapshot with count <= sum(buckets), which
        // `quantile` handles, rather than a count the buckets cannot
        // satisfy.
        let count = self.count.load(Ordering::Acquire);
        LatencyHistogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            total_micros: self.total_micros.load(Ordering::Relaxed),
        }
    }
}

/// Bucket a microsecond latency falls into (log2 scale, clamped).
fn bucket_index(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        (micros.ilog2() as usize).min(LATENCY_BUCKETS - 1)
    }
}

/// A bounded log₂-bucketed latency histogram (submit→complete wall clock).
///
/// Fixed memory regardless of query count: one counter per power-of-two
/// microsecond band. Percentiles interpolate linearly inside the resolved
/// band, so they carry band-sized (±2×) resolution — adequate for p50/p95/
/// p99 reporting without keeping per-query samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-band counts; band `i` covers `[2^i, 2^(i+1))` µs (band 0 starts
    /// at zero).
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Recorded latencies.
    pub count: u64,
    /// Sum of all recorded latencies in microseconds.
    pub total_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            total_micros: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency (the non-atomic side, used by client-side load
    /// generators; the service records through its internal atomic cell).
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros() as u64;
        self.buckets[bucket_index(micros)] += 1;
        self.count += 1;
        self.total_micros += micros;
    }

    /// Mean recorded latency.
    pub fn mean(&self) -> Duration {
        Duration::from_micros(self.total_micros.checked_div(self.count).unwrap_or(0))
    }

    /// The `q`-quantile (`0 < q <= 1`) of the recorded latencies,
    /// interpolated inside the resolved histogram band. Zero when nothing
    /// was recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        let mut last_upper = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let lower = if i == 0 { 0u64 } else { 1u64 << i };
                let upper = 1u64 << (i + 1);
                let frac = (target - seen) as f64 / n as f64;
                let micros = lower as f64 + frac * (upper - lower) as f64;
                return Duration::from_micros(micros as u64);
            }
            seen += n;
            last_upper = 1u64 << (i + 1);
        }
        // Reachable only on a racy or hand-built snapshot whose count
        // exceeds the bucket sum; the highest populated band is then the
        // honest answer (never a spurious zero).
        Duration::from_micros(last_upper)
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }
}

impl std::ops::AddAssign for LatencyHistogram {
    fn add_assign(&mut self, rhs: LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(rhs.buckets) {
            *a += b;
        }
        self.count += rhs.count;
        self.total_micros += rhs.total_micros;
    }
}

/// Atomic counters the workers and the retile daemon update in place.
#[derive(Default)]
pub(crate) struct StatsCell {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub samples_decoded: AtomicU64,
    pub samples_reused: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub shared_owned: AtomicU64,
    pub shared_joined: AtomicU64,
    pub tiles_planned: AtomicU64,
    pub tiles_pruned: AtomicU64,
    pub gops_planned: AtomicU64,
    pub gops_skipped: AtomicU64,
    pub frames_sampled: AtomicU64,
    pub retile_ops: AtomicU64,
    pub retile_errors: AtomicU64,
    pub queue_peak: AtomicU64,
    pub latency: LatencyCell,
}

impl StatsCell {
    pub fn record_scan(&self, r: &ScanResult) {
        self.samples_decoded
            .fetch_add(r.stats.samples_decoded, Ordering::Relaxed);
        self.samples_reused
            .fetch_add(r.cache.samples_reused, Ordering::Relaxed);
        self.cache_hits.fetch_add(r.cache.hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(r.cache.misses, Ordering::Relaxed);
        self.shared_owned
            .fetch_add(r.shared.owned, Ordering::Relaxed);
        self.shared_joined
            .fetch_add(r.shared.joined, Ordering::Relaxed);
        self.tiles_planned
            .fetch_add(r.plan.tiles_planned, Ordering::Relaxed);
        self.tiles_pruned
            .fetch_add(r.plan.tiles_pruned, Ordering::Relaxed);
        self.gops_planned
            .fetch_add(r.plan.gops_planned, Ordering::Relaxed);
        self.gops_skipped
            .fetch_add(r.plan.gops_skipped, Ordering::Relaxed);
        self.frames_sampled
            .fetch_add(r.plan.frames_sampled, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            samples_decoded: self.samples_decoded.load(Ordering::Relaxed),
            samples_reused: self.samples_reused.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            shared: SharedScanStats {
                owned: self.shared_owned.load(Ordering::Relaxed),
                joined: self.shared_joined.load(Ordering::Relaxed),
            },
            plan: PlanStats {
                tiles_planned: self.tiles_planned.load(Ordering::Relaxed),
                tiles_pruned: self.tiles_pruned.load(Ordering::Relaxed),
                gops_planned: self.gops_planned.load(Ordering::Relaxed),
                gops_skipped: self.gops_skipped.load(Ordering::Relaxed),
                frames_sampled: self.frames_sampled.load(Ordering::Relaxed),
            },
            retile_ops: self.retile_ops.load(Ordering::Relaxed),
            retile_errors: self.retile_errors.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

/// A point-in-time snapshot of the service's aggregate counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries completed successfully.
    pub completed: u64,
    /// Queries that returned an error.
    pub failed: u64,
    /// Samples actually decoded across all queries (cache reuse excluded).
    pub samples_decoded: u64,
    /// Samples served from the decoded-GOP cache instead of being decoded.
    pub samples_reused: u64,
    /// Decoded-GOP cache hits across all queries.
    pub cache_hits: u64,
    /// Decoded-GOP cache misses across all queries.
    pub cache_misses: u64,
    /// Shared-scan dedup accounting: GOP decodes owned vs. joined.
    pub shared: SharedScanStats,
    /// Aggregate planner accounting across all queries: decode units
    /// scheduled (`tiles_planned`/`gops_planned`) vs. pruned before decode
    /// (`tiles_pruned`/`gops_skipped`), plus the frames actually sampled.
    pub plan: PlanStats,
    /// SOT re-tile operations performed by the retile daemon.
    pub retile_ops: u64,
    /// Observations the daemon failed to process.
    pub retile_errors: u64,
    /// Deepest the submission queue has been.
    pub queue_peak: u64,
    /// Submit→complete latency distribution of completed queries
    /// (p50/p95/p99 via [`LatencyHistogram::quantile`]).
    pub latency: LatencyHistogram,
}

impl ServiceStats {
    /// Fraction of decoded-GOP lookups served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_with_clamping() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn quantiles_resolve_to_the_right_band() {
        let mut h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(Duration::from_micros(100)); // band [64, 128)
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(100)); // band [65536, 131072)
        }
        assert_eq!(h.count, 100);
        let p50 = h.p50().as_micros() as u64;
        assert!((64..128).contains(&p50), "p50 in the 100µs band, got {p50}");
        let p99 = h.p99().as_micros() as u64;
        assert!(
            (65_536..131_072).contains(&p99),
            "p99 in the 100ms band, got {p99}"
        );
        assert!(h.p95() <= h.p99());
        assert!(h.p50() <= h.p95());
    }

    #[test]
    fn racy_snapshot_with_excess_count_never_reports_zero() {
        // A snapshot can observe a count one ahead of the bucket sum when
        // it races a concurrent `record`; quantiles must then fall back to
        // the highest populated band instead of zero.
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(900)); // band [512, 1024)
        h.count += 1; // simulate the torn read
        assert_eq!(h.p99(), Duration::from_micros(1024));
        assert!(h.p50() > Duration::ZERO);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.p99(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn merge_accumulates_both_sides() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a += b;
        assert_eq!(a.count, 2);
        assert_eq!(a.total_micros, 1010);
        assert_eq!(a.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn single_bucket_quantiles_all_land_in_that_band() {
        let mut h = LatencyHistogram::default();
        for _ in 0..37 {
            h.record(Duration::from_micros(700)); // band [512, 1024)
        }
        for q in [0.01, 0.25, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile(q).as_micros() as u64;
            assert!(
                (512..=1024).contains(&v),
                "q={q} must interpolate inside the only populated band, got {v}"
            );
        }
        assert!(h.quantile(0.01) <= h.quantile(1.0));
    }

    #[test]
    fn racy_snapshot_with_count_below_bucket_sum_stays_in_band() {
        // The atomic cell's ordering guarantees a snapshot observes
        // count <= sum(buckets): bucket adds may land that the count does
        // not yet reflect. Quantiles must then resolve against the buckets
        // that are there, never read past them.
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(10)); // band [8, 16)
        h.record(Duration::from_micros(5000)); // band [4096, 8192)
        h.count -= 1; // simulate the not-yet-counted bucket add
        assert_eq!(h.count, 1);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
        // Every quantile of a count-1 histogram resolves inside the first
        // populated band (interpolation may land on its upper edge).
        let v = h.quantile(1.0).as_micros() as u64;
        assert!(
            (8..=16).contains(&v),
            "resolved into the first band, got {v}"
        );
        assert_eq!(h.quantile(0.5), h.quantile(1.0));
    }

    #[test]
    fn merge_of_disjoint_bucket_ranges_keeps_both_tails() {
        let mut low = LatencyHistogram::default();
        let mut high = LatencyHistogram::default();
        for _ in 0..60 {
            low.record(Duration::from_micros(3)); // band [2, 4)
        }
        for _ in 0..40 {
            high.record(Duration::from_secs(2)); // band [2^20, 2^21) µs
        }
        low += high;
        assert_eq!(low.count, 100);
        assert_eq!(low.total_micros, 60 * 3 + 40 * 2_000_000);
        let p50 = low.p50().as_micros() as u64;
        assert!(
            (2..4).contains(&p50),
            "p50 stays in the low band, got {p50}"
        );
        let p95 = low.p95().as_micros() as u64;
        assert!(
            (1_048_576..2_097_152).contains(&p95),
            "p95 lands in the seconds band, got {p95}"
        );
        // No bucket between the two populated bands was invented.
        assert_eq!(low.buckets.iter().filter(|&&n| n > 0).count(), 2);
    }

    #[test]
    fn merging_an_empty_histogram_changes_nothing() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(77));
        let before = h;
        h += LatencyHistogram::default();
        assert_eq!(h, before);
        let mut empty = LatencyHistogram::default();
        empty += before;
        assert_eq!(empty, before);
    }

    #[test]
    fn atomic_and_plain_sides_agree() {
        let cell = LatencyCell::default();
        let mut plain = LatencyHistogram::default();
        for micros in [0u64, 1, 7, 900, 123_456] {
            cell.record(Duration::from_micros(micros));
            plain.record(Duration::from_micros(micros));
        }
        assert_eq!(cell.snapshot(), plain);
    }
}
