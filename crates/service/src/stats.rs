//! Aggregate service statistics, maintained lock-free by the workers.

use std::sync::atomic::{AtomicU64, Ordering};
use tasm_core::{PlanStats, ScanResult, SharedScanStats};

/// Atomic counters the workers and the retile daemon update in place.
#[derive(Default)]
pub(crate) struct StatsCell {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub samples_decoded: AtomicU64,
    pub samples_reused: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub shared_owned: AtomicU64,
    pub shared_joined: AtomicU64,
    pub tiles_planned: AtomicU64,
    pub tiles_pruned: AtomicU64,
    pub gops_planned: AtomicU64,
    pub gops_skipped: AtomicU64,
    pub frames_sampled: AtomicU64,
    pub retile_ops: AtomicU64,
    pub retile_errors: AtomicU64,
    pub queue_peak: AtomicU64,
}

impl StatsCell {
    pub fn record_scan(&self, r: &ScanResult) {
        self.samples_decoded
            .fetch_add(r.stats.samples_decoded, Ordering::Relaxed);
        self.samples_reused
            .fetch_add(r.cache.samples_reused, Ordering::Relaxed);
        self.cache_hits.fetch_add(r.cache.hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(r.cache.misses, Ordering::Relaxed);
        self.shared_owned
            .fetch_add(r.shared.owned, Ordering::Relaxed);
        self.shared_joined
            .fetch_add(r.shared.joined, Ordering::Relaxed);
        self.tiles_planned
            .fetch_add(r.plan.tiles_planned, Ordering::Relaxed);
        self.tiles_pruned
            .fetch_add(r.plan.tiles_pruned, Ordering::Relaxed);
        self.gops_planned
            .fetch_add(r.plan.gops_planned, Ordering::Relaxed);
        self.gops_skipped
            .fetch_add(r.plan.gops_skipped, Ordering::Relaxed);
        self.frames_sampled
            .fetch_add(r.plan.frames_sampled, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            samples_decoded: self.samples_decoded.load(Ordering::Relaxed),
            samples_reused: self.samples_reused.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            shared: SharedScanStats {
                owned: self.shared_owned.load(Ordering::Relaxed),
                joined: self.shared_joined.load(Ordering::Relaxed),
            },
            plan: PlanStats {
                tiles_planned: self.tiles_planned.load(Ordering::Relaxed),
                tiles_pruned: self.tiles_pruned.load(Ordering::Relaxed),
                gops_planned: self.gops_planned.load(Ordering::Relaxed),
                gops_skipped: self.gops_skipped.load(Ordering::Relaxed),
                frames_sampled: self.frames_sampled.load(Ordering::Relaxed),
            },
            retile_ops: self.retile_ops.load(Ordering::Relaxed),
            retile_errors: self.retile_errors.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the service's aggregate counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries completed successfully.
    pub completed: u64,
    /// Queries that returned an error.
    pub failed: u64,
    /// Samples actually decoded across all queries (cache reuse excluded).
    pub samples_decoded: u64,
    /// Samples served from the decoded-GOP cache instead of being decoded.
    pub samples_reused: u64,
    /// Decoded-GOP cache hits across all queries.
    pub cache_hits: u64,
    /// Decoded-GOP cache misses across all queries.
    pub cache_misses: u64,
    /// Shared-scan dedup accounting: GOP decodes owned vs. joined.
    pub shared: SharedScanStats,
    /// Aggregate planner accounting across all queries: decode units
    /// scheduled (`tiles_planned`/`gops_planned`) vs. pruned before decode
    /// (`tiles_pruned`/`gops_skipped`), plus the frames actually sampled.
    pub plan: PlanStats,
    /// SOT re-tile operations performed by the retile daemon.
    pub retile_ops: u64,
    /// Observations the daemon failed to process.
    pub retile_errors: u64,
    /// Deepest the submission queue has been.
    pub queue_peak: u64,
}

impl ServiceStats {
    /// Fraction of decoded-GOP lookups served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}
