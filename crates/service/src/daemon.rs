//! The background re-tiling daemon.
//!
//! Workers append an [`Observation`] per completed (query, label) to a
//! backlog; this single low-priority thread drains it and feeds the
//! observations to the configured incremental policy
//! (`Tasm::observe_regret` / `Tasm::observe_more`). Re-tiles triggered here
//! never queue behind scans: a re-tile commits a new MVCC layout epoch
//! immediately, while in-flight queries keep reading the epoch they pinned
//! at plan time — queries keep their bit-exact guarantee and the layout
//! converges in the background instead of on the query path. Superseded
//! epochs are garbage-collected once their last reader drains.
//!
//! Every re-tile runs the storage layer's atomic commit protocol
//! (`tasm_core::storage`), so killing the process while this daemon is
//! draining its backlog can never leave a video torn between two layout
//! epochs: startup recovery at the next open rolls the interrupted re-tile
//! forward or back, and shutdown ([`crate::Shutdown::Drain`]) completes the
//! backlog before the daemon exits. A re-tile that fails (e.g. the disk
//! died mid-commit) is counted in `ServiceStats::retile_errors` and does
//! not take the daemon down.

use crate::service::{RetilePolicy, Shared};
use std::ops::Range;
use std::sync::atomic::Ordering;

/// One completed query the layout policies should learn from.
#[derive(Debug, Clone)]
pub(crate) struct Observation {
    pub video: String,
    pub label: String,
    pub frames: Range<u32>,
}

pub(crate) fn daemon_loop(shared: &Shared) {
    loop {
        let batch: Vec<Observation> = {
            let mut backlog = shared.backlog.lock().expect("backlog lock");
            while backlog.is_empty() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _timeout) = shared
                    .backlog_cv
                    .wait_timeout(backlog, shared.cfg.retile_interval)
                    .expect("backlog lock");
                backlog = guard;
            }
            backlog.drain(..).collect()
        };
        process_observations(shared, batch);
    }
}

/// Feeds a batch of observations to the configured policy, accounting
/// re-tiles and errors. Shared by the daemon thread and
/// `QueryService::drain_retile_backlog`.
pub(crate) fn process_observations(shared: &Shared, batch: Vec<Observation>) {
    for obs in batch {
        let outcome = match shared.cfg.retile {
            RetilePolicy::Off => continue,
            RetilePolicy::Regret => {
                shared
                    .tasm
                    .observe_regret(&obs.video, &obs.label, obs.frames.clone())
            }
            RetilePolicy::More => {
                shared
                    .tasm
                    .observe_more(&obs.video, &obs.label, obs.frames.clone())
            }
        };
        match outcome {
            Ok(stats) => {
                if stats.encode.bytes_produced > 0 {
                    // Replication hook before the op is counted: the
                    // re-tile is only reported durable once every backup
                    // acked the new layout epoch.
                    let replicated = match &shared.hook {
                        Some(hook) => match hook.retiled(&obs.video) {
                            Ok(()) => true,
                            Err(e) => {
                                tasm_obs::log::error(
                                    "retile.replication_failed",
                                    &[("video", obs.video.clone()), ("error", e)],
                                );
                                false
                            }
                        },
                        None => true,
                    };
                    if replicated {
                        shared.stats.retile_ops.fetch_add(1, Ordering::Relaxed);
                        if tasm_obs::enabled() {
                            tasm_obs::counter(
                                "tasm_retile_commits_total",
                                "Background re-tiles committed (and replicated, when backups are configured).",
                            )
                            .inc();
                        }
                        tasm_obs::log::debug(
                            "retile.committed",
                            &[
                                ("video", obs.video.clone()),
                                ("label", obs.label.clone()),
                                ("bytes", stats.encode.bytes_produced.to_string()),
                            ],
                        );
                    } else {
                        shared.stats.retile_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) => {
                shared.stats.retile_errors.fetch_add(1, Ordering::Relaxed);
                tasm_obs::log::error(
                    "retile.failed",
                    &[
                        ("video", obs.video.clone()),
                        ("label", obs.label.clone()),
                        ("error", e.to_string()),
                    ],
                );
            }
        }
    }
}
