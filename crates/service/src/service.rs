//! The query service: bounded submission queue, worker pool, per-query
//! handles, and lifecycle management.

use crate::daemon::{self, Observation};
use crate::stats::{ServiceStats, StatsCell};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tasm_core::{LabelPredicate, Query, ScanResult, Tasm, TasmError};

/// Which incremental layout policy the background daemon applies to
/// completed queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetilePolicy {
    /// No background re-tiling.
    Off,
    /// The §4.4 regret policy (`Tasm::observe_regret`): accumulate regret
    /// per alternative layout and re-tile once it exceeds `η · R(s, L)`.
    Regret,
    /// The "incremental, more" policy (`Tasm::observe_more`): re-tile as
    /// soon as a query for a new object class arrives.
    More,
}

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Query worker threads. `0` = one per available core. Each worker runs
    /// one query at a time; the decode pipeline inside a query may use
    /// further threads (`TasmConfig::workers`).
    pub workers: usize,
    /// Capacity of the submission queue. [`QueryService::submit`] blocks
    /// while the queue is full (backpressure); [`QueryService::try_submit`]
    /// fails fast instead.
    pub queue_depth: usize,
    /// Background layout policy applied to completed queries.
    pub retile: RetilePolicy,
    /// How often the retile daemon wakes when idle.
    pub retile_interval: Duration,
    /// Slow-query log threshold: any completed query whose
    /// submission→completion time reaches this logs its full trace at
    /// `warn` through the structured logger (`None` disables the log).
    pub slow_query: Option<Duration>,
    /// Test-only fault injection: a worker panics instead of executing any
    /// request this hook returns `true` for. Exercises the panic-isolation
    /// path (worker survives, submitter gets [`ServiceError::Panicked`])
    /// without needing a corruptible storage backend. A plain `fn` pointer
    /// so the config stays `Copy`.
    #[doc(hidden)]
    pub test_panic_injector: Option<fn(&QueryRequest) -> bool>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_depth: 64,
            retile: RetilePolicy::Off,
            retile_interval: Duration::from_millis(20),
            slow_query: None,
            test_panic_injector: None,
        }
    }
}

/// Callback fired by the retile daemon after a re-tile commits locally,
/// before it is counted in `ServiceStats::retile_ops` — the hook point
/// where the cluster layer ships the new layout epoch to backups and waits
/// for their acknowledgement, so a re-tile is only reported durable once
/// every backup can answer at the new epoch.
pub trait RetileHook: Send + Sync {
    /// Called with the re-tiled video's name. An error is counted in
    /// `ServiceStats::retile_errors`; the local commit stands either way
    /// (the caller re-syncs lagging backups out of band).
    fn retiled(&self, video: &str) -> Result<(), String>;
}

/// One query to execute: a video name plus a full spatiotemporal
/// [`Query`] (label predicate ∧ optional ROI, stride, limit, and aggregate
/// mode — see `tasm_core::query` for planner semantics).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Video name (must be ingested/attached on the shared [`Tasm`]).
    pub video: String,
    /// The query to plan and execute.
    pub query: Query,
    /// Caller-supplied distributed trace id; `None` assigns one at
    /// admission. Either way the id tags the outcome's
    /// [`QueryTrace`](tasm_obs::QueryTrace).
    pub trace_id: Option<u64>,
}

impl QueryRequest {
    /// A request submitting an arbitrary [`Query`].
    pub fn new(video: impl Into<String>, query: Query) -> Self {
        QueryRequest {
            video: video.into(),
            query,
            trace_id: None,
        }
    }

    /// Tags the request with a caller-chosen trace id (a remote client's,
    /// relayed by the server).
    pub fn with_trace_id(mut self, trace_id: Option<u64>) -> Self {
        self.trace_id = trace_id;
        self
    }

    /// A plain label-predicate scan over a frame window — the shape every
    /// request had before the spatiotemporal planner existed.
    pub fn scan(video: impl Into<String>, predicate: LabelPredicate, frames: Range<u32>) -> Self {
        QueryRequest::new(video, Query::new(predicate).frames(frames))
    }
}

/// A completed query with its per-query timings.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Service-assigned query id (submission order).
    pub id: u64,
    /// The scan result, bit-identical to a serial execution against the
    /// layout epoch the query observed.
    pub result: ScanResult,
    /// Time spent waiting in the submission queue.
    pub queue_time: Duration,
    /// Submission-to-completion wall-clock time.
    pub total_time: Duration,
    /// Per-phase execution trace (queue/plan/decode filled here; the
    /// serving layer adds its stream time and instance tag).
    pub trace: tasm_obs::QueryTrace,
}

/// Errors surfaced to submitters.
#[derive(Debug)]
pub enum ServiceError {
    /// The underlying storage manager failed the query.
    Tasm(TasmError),
    /// The service is shutting down and no longer accepts queries.
    ShuttingDown,
    /// `try_submit` found the queue at capacity.
    QueueFull,
    /// The worker executing the query disappeared (panic).
    WorkerLost,
    /// The query panicked mid-execution. The worker caught the unwind and
    /// keeps serving; only this query failed.
    Panicked,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Tasm(e) => write!(f, "{e}"),
            ServiceError::ShuttingDown => write!(f, "query service is shutting down"),
            ServiceError::QueueFull => write!(f, "submission queue is full"),
            ServiceError::WorkerLost => write!(f, "query worker terminated unexpectedly"),
            ServiceError::Panicked => write!(f, "query execution panicked"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<TasmError> for ServiceError {
    fn from(e: TasmError) -> Self {
        ServiceError::Tasm(e)
    }
}

/// How [`QueryService::shutdown`] treats queries still in the submission
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shutdown {
    /// Every accepted query completes before the workers exit; the retile
    /// daemon processes its whole backlog. This is also the `Drop`
    /// behavior.
    Drain,
    /// Queued-but-unstarted queries are abandoned (their handles resolve to
    /// [`ServiceError::ShuttingDown`]) and the retile backlog is discarded;
    /// only queries already executing on a worker complete.
    Abort,
}

/// What a shutdown did: the explicit drain contract.
#[derive(Debug, Clone, Copy)]
pub struct ShutdownReport {
    /// The mode the shutdown ran under.
    pub mode: Shutdown,
    /// Queries that completed successfully over the service's lifetime.
    pub completed: u64,
    /// Accepted queries abandoned in the queue ([`Shutdown::Abort`] only;
    /// always zero for [`Shutdown::Drain`]).
    pub abandoned: u64,
    /// Final aggregate statistics.
    pub stats: ServiceStats,
}

/// Handle to one submitted query.
pub struct QueryHandle {
    id: u64,
    rx: mpsc::Receiver<Result<QueryOutcome, ServiceError>>,
}

impl QueryHandle {
    /// The service-assigned query id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the query completes.
    pub fn wait(self) -> Result<QueryOutcome, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::WorkerLost))
    }
}

/// How a job's outcome reaches its submitter: a bounded channel behind a
/// blocking [`QueryHandle`], or a callback invoked on the worker thread —
/// the completion path reactor-style servers use to get woken instead of
/// parking a waiter thread per query.
enum Completion {
    Channel(mpsc::SyncSender<Result<QueryOutcome, ServiceError>>),
    Callback(CompletionGuard),
}

impl Completion {
    fn deliver(self, result: Result<QueryOutcome, ServiceError>) {
        match self {
            Completion::Channel(tx) => {
                // A dropped handle is fine: the send just goes nowhere.
                let _ = tx.send(result);
            }
            Completion::Callback(mut guard) => {
                if let Some(f) = guard.0.take() {
                    f(result);
                }
            }
        }
    }

    /// Defuses the guard without firing it: the submission was rejected,
    /// so the caller learns the outcome from the returned error — a
    /// completion on top of it would be a duplicate response.
    fn disarm(self) {
        if let Completion::Callback(mut guard) = self {
            guard.0.take();
        }
    }
}

/// RAII completion guard: a callback job dropped without delivering —
/// a worker dying so abruptly the unwind escapes the job, or any future
/// code path that forgets — fires with [`ServiceError::WorkerLost`], so
/// no submitter ever waits on a completion that cannot arrive.
struct CompletionGuard(Option<Box<dyn FnOnce(Result<QueryOutcome, ServiceError>) + Send>>);

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if let Some(f) = self.0.take() {
            f(Err(ServiceError::WorkerLost));
        }
    }
}

struct Job {
    id: u64,
    /// Trace id resolved at admission: the request's, or a fresh one.
    trace_id: u64,
    req: QueryRequest,
    done: Completion,
    enqueued: Instant,
}

/// Queries currently waiting in the submission queue (gauge).
fn queue_depth_gauge() -> Arc<tasm_obs::Gauge> {
    tasm_obs::gauge(
        "tasm_queue_depth",
        "Queries currently waiting in the submission queue.",
    )
}

pub(crate) struct Shared {
    pub tasm: Arc<Tasm>,
    pub cfg: ServiceConfig,
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    not_full: Condvar,
    pub shutdown: AtomicBool,
    pub stats: StatsCell,
    pub backlog: Mutex<VecDeque<Observation>>,
    pub backlog_cv: Condvar,
    pub hook: Option<Arc<dyn RetileHook>>,
    next_id: AtomicU64,
}

/// A concurrent multi-query engine over one shared [`Tasm`] instance.
///
/// See the crate docs for the architecture. Dropping the service shuts it
/// down with [`Shutdown::Drain`] semantics: the queue drains, workers join,
/// and the retile daemon processes its remaining backlog. Call
/// [`QueryService::shutdown`] (or [`QueryService::shutdown_now`] when the
/// service is shared behind an `Arc`) for the explicit contract and the
/// completed/abandoned counts.
pub struct QueryService {
    shared: Arc<Shared>,
    // Behind mutexes so `shutdown_now` can join them through `&self` (the
    // server shares the service across session threads via `Arc`).
    workers: Mutex<Vec<JoinHandle<()>>>,
    daemon: Mutex<Option<JoinHandle<()>>>,
}

impl QueryService {
    /// Spawns the worker pool (and, unless [`RetilePolicy::Off`], the
    /// retile daemon) over `tasm`.
    pub fn start(tasm: Arc<Tasm>, cfg: ServiceConfig) -> Self {
        Self::start_with_hook(tasm, cfg, None)
    }

    /// [`QueryService::start`] with a [`RetileHook`] the daemon fires after
    /// every committed re-tile (replication ack-before-durable).
    pub fn start_with_hook(
        tasm: Arc<Tasm>,
        cfg: ServiceConfig,
        hook: Option<Arc<dyn RetileHook>>,
    ) -> Self {
        assert!(cfg.queue_depth > 0, "queue depth must be positive");
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            tasm,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: StatsCell::default(),
            backlog: Mutex::new(VecDeque::new()),
            backlog_cv: Condvar::new(),
            hook,
            next_id: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tasm-query-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn query worker")
            })
            .collect();
        let daemon = (cfg.retile != RetilePolicy::Off).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tasm-retile".to_string())
                .spawn(move || daemon::daemon_loop(&shared))
                .expect("spawn retile daemon")
        });
        QueryService {
            shared,
            workers: Mutex::new(handles),
            daemon: Mutex::new(daemon),
        }
    }

    /// Submits a query, blocking while the queue is at capacity
    /// (backpressure). Returns a handle resolving to the query's outcome.
    pub fn submit(&self, req: QueryRequest) -> Result<QueryHandle, ServiceError> {
        let (tx, rx) = mpsc::sync_channel(1);
        let id = self.enqueue(req, true, Completion::Channel(tx))?;
        Ok(QueryHandle { id, rx })
    }

    /// Submits a query, failing with [`ServiceError::QueueFull`] instead of
    /// blocking when the queue is at capacity.
    pub fn try_submit(&self, req: QueryRequest) -> Result<QueryHandle, ServiceError> {
        let (tx, rx) = mpsc::sync_channel(1);
        let id = self.enqueue(req, false, Completion::Channel(tx))?;
        Ok(QueryHandle { id, rx })
    }

    /// Submits a query without blocking, delivering the outcome through
    /// `done` (invoked on the worker thread) instead of a handle — the
    /// completion path for reactor-style callers that must never park.
    /// The callback fires exactly once: with the outcome, a typed
    /// execution error, [`ServiceError::ShuttingDown`] when an abort
    /// shutdown abandons the queued job, or [`ServiceError::WorkerLost`]
    /// if the job is destroyed without ever executing. Returns the
    /// service-assigned query id.
    pub fn try_submit_with(
        &self,
        req: QueryRequest,
        done: impl FnOnce(Result<QueryOutcome, ServiceError>) + Send + 'static,
    ) -> Result<u64, ServiceError> {
        let done = Completion::Callback(CompletionGuard(Some(Box::new(done))));
        self.enqueue(req, false, done)
    }

    fn enqueue(&self, req: QueryRequest, block: bool, done: Completion) -> Result<u64, ServiceError> {
        let mut queue = self.shared.queue.lock().expect("queue lock");
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                done.disarm();
                return Err(ServiceError::ShuttingDown);
            }
            if queue.len() < self.shared.cfg.queue_depth {
                break;
            }
            if !block {
                done.disarm();
                return Err(ServiceError::QueueFull);
            }
            queue = self.shared.not_full.wait(queue).expect("queue lock");
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let trace_id = req.trace_id.unwrap_or_else(tasm_obs::next_trace_id);
        queue.push_back(Job {
            id,
            trace_id,
            req,
            done,
            enqueued: Instant::now(),
        });
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared
            .stats
            .queue_peak
            .fetch_max(queue.len() as u64, Ordering::Relaxed);
        if tasm_obs::enabled() {
            tasm_obs::counter(
                "tasm_queries_submitted_total",
                "Queries accepted into the submission queue.",
            )
            .inc();
            queue_depth_gauge().set(queue.len() as i64);
        }
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(id)
    }

    /// The shared storage manager.
    pub fn tasm(&self) -> &Arc<Tasm> {
        &self.shared.tasm
    }

    /// Queries currently waiting in the submission queue.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").len()
    }

    /// Retile observations awaiting the daemon.
    pub fn pending_retiles(&self) -> usize {
        self.shared.backlog.lock().expect("backlog lock").len()
    }

    /// Synchronously processes the retile backlog on the calling thread
    /// (deterministic alternative to waiting for the daemon; used by tests
    /// and the CLI's final drain).
    pub fn drain_retile_backlog(&self) {
        let batch: Vec<Observation> = {
            let mut backlog = self.shared.backlog.lock().expect("backlog lock");
            backlog.drain(..).collect()
        };
        daemon::process_observations(&self.shared, batch);
    }

    /// A snapshot of the aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats.snapshot()
    }

    /// Stops accepting queries and shuts the service down under the given
    /// mode: [`Shutdown::Drain`] completes every accepted query and lets
    /// the retile daemon finish its backlog; [`Shutdown::Abort`] abandons
    /// queued-but-unstarted queries (their handles resolve to
    /// [`ServiceError::ShuttingDown`]) and discards the backlog. Either
    /// way all threads — workers and retile daemon — are joined before the
    /// report is returned.
    pub fn shutdown(self, mode: Shutdown) -> ShutdownReport {
        self.shutdown_now(mode)
        // Drop then finds nothing left to join.
    }

    /// [`QueryService::shutdown`] through a shared reference, for callers
    /// holding the service in an `Arc` (the TCP server's session threads).
    /// Idempotent: a second call joins nothing and reports zero additional
    /// abandoned queries.
    pub fn shutdown_now(&self, mode: Shutdown) -> ShutdownReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let mut abandoned = 0u64;
        if mode == Shutdown::Abort {
            // Pull queued jobs before waking the workers so none of them
            // starts executing; in-flight queries are left to finish.
            let dropped: Vec<Job> = {
                let mut queue = self.shared.queue.lock().expect("queue lock");
                queue.drain(..).collect()
            };
            abandoned = dropped.len() as u64;
            for job in dropped {
                job.done.deliver(Err(ServiceError::ShuttingDown));
            }
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for w in self.workers.lock().expect("workers lock").drain(..) {
            let _ = w.join();
        }
        if mode == Shutdown::Abort {
            // Discarded only *after* the workers joined: in-flight queries
            // push observations on completion, and the abort contract says
            // none of them reach the daemon.
            self.shared.backlog.lock().expect("backlog lock").clear();
        }
        // Wake the daemon after the workers stop producing observations so
        // it drains the final backlog (already cleared under Abort) before
        // exiting.
        self.shared.backlog_cv.notify_all();
        if let Some(d) = self.daemon.lock().expect("daemon lock").take() {
            let _ = d.join();
        }
        let stats = self.shared.stats.snapshot();
        ShutdownReport {
            mode,
            completed: stats.completed,
            abandoned,
            stats,
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_now(Shutdown::Drain);
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    queue_depth_gauge().set(queue.len() as i64);
                    shared.not_full.notify_one();
                    break job;
                }
                // Drain-then-exit: accepted queries complete even when
                // shutdown raced their submission.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.not_empty.wait(queue).expect("queue lock");
            }
        };
        let queue_time = job.enqueued.elapsed();
        let spans = tasm_obs::TraceSpans::shared();
        spans.add(tasm_obs::Phase::Queue, queue_time);
        if tasm_obs::enabled() {
            tasm_obs::histogram(
                "tasm_queue_wait_seconds",
                "Time queries spend waiting in the submission queue.",
            )
            .record(queue_time);
        }
        // The unwind boundary: a panic inside query execution (or the
        // test injector standing in for one) fails this query with a
        // typed error and leaves the worker alive. `job` stays outside
        // the closure, so even a panic that somehow escaped would fire
        // the job's completion guard rather than strand the submitter.
        let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(inject) = shared.cfg.test_panic_injector {
                if inject(&job.req) {
                    panic!("injected test panic");
                }
            }
            shared
                .tasm
                .query_traced(&job.req.video, &job.req.query, &spans)
        }));
        match executed {
            Err(_panic) => {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                if tasm_obs::enabled() {
                    tasm_obs::counter(
                        "tasm_queries_failed_total",
                        "Queries that returned an error.",
                    )
                    .inc();
                }
                tasm_obs::log::warn(
                    "query.panicked",
                    &[
                        ("trace_id", job.trace_id.to_string()),
                        ("video", job.req.video.clone()),
                    ],
                );
                job.done.deliver(Err(ServiceError::Panicked));
            }
            Ok(Ok(result)) => {
                shared.stats.record_scan(&result);
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                if tasm_obs::enabled() {
                    tasm_obs::counter(
                        "tasm_queries_completed_total",
                        "Queries completed successfully.",
                    )
                    .inc();
                }
                if shared.cfg.retile != RetilePolicy::Off {
                    let mut backlog = shared.backlog.lock().expect("backlog lock");
                    for label in job.req.query.predicate().labels() {
                        backlog.push_back(Observation {
                            video: job.req.video.clone(),
                            label: label.to_string(),
                            frames: job.req.query.frame_range(),
                        });
                    }
                    drop(backlog);
                    shared.backlog_cv.notify_one();
                }
                // Reuses the completion timestamp for the histogram — the
                // fast path still takes exactly two timing syscalls.
                let total_time = job.enqueued.elapsed();
                shared.stats.latency.record(total_time);
                let trace = spans.finish(job.trace_id, result.epoch, total_time);
                log_if_slow(shared, &job.req.video, &trace, total_time);
                job.done.deliver(Ok(QueryOutcome {
                    id: job.id,
                    result,
                    queue_time,
                    total_time,
                    trace,
                }));
            }
            Ok(Err(e)) => {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                if tasm_obs::enabled() {
                    tasm_obs::counter(
                        "tasm_queries_failed_total",
                        "Queries that returned an error.",
                    )
                    .inc();
                }
                tasm_obs::log::warn(
                    "query.failed",
                    &[
                        ("trace_id", job.trace_id.to_string()),
                        ("video", job.req.video.clone()),
                        ("error", e.to_string()),
                    ],
                );
                job.done.deliver(Err(ServiceError::Tasm(e)));
            }
        }
    }
}

/// Emits the slow-query log line when the configured threshold is met:
/// the full per-phase trace at `warn`, plus a counter bump.
fn log_if_slow(shared: &Shared, video: &str, trace: &tasm_obs::QueryTrace, total: Duration) {
    let Some(threshold) = shared.cfg.slow_query else {
        return;
    };
    if total < threshold {
        return;
    }
    if tasm_obs::enabled() {
        tasm_obs::counter(
            "tasm_slow_queries_total",
            "Completed queries at or above the slow-query threshold.",
        )
        .inc();
    }
    tasm_obs::log::warn(
        "slow_query",
        &[
            ("trace_id", trace.trace_id.to_string()),
            ("video", video.to_string()),
            ("epoch", trace.epoch.to_string()),
            ("queue_us", trace.queue_micros.to_string()),
            ("plan_us", trace.plan_micros.to_string()),
            ("decode_us", trace.decode_micros.to_string()),
            ("total_us", trace.total_micros.to_string()),
            ("threshold_ms", threshold.as_millis().to_string()),
        ],
    );
}
