//! Basic lifecycle tests of the query service: submission, backpressure,
//! error propagation, shutdown.

use std::sync::Arc;
use tasm_core::{LabelPredicate, PartitionConfig, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_service::{
    QueryRequest, QueryService, RetilePolicy, ServiceConfig, ServiceError, Shutdown,
};
use tasm_video::FrameSource;

fn tasm(tag: &str) -> Arc<Tasm> {
    let dir = std::env::temp_dir().join(format!("tasm-svc-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        workers: 1,
        cache_bytes: 32 << 20,
        ..Default::default()
    };
    Arc::new(Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap())
}

fn ingest(tasm: &Tasm, frames: u32) -> SyntheticVideo {
    let video = SyntheticVideo::new(SceneSpec {
        width: 192,
        height: 128,
        frames,
        seed: 11,
        ..SceneSpec::test_scene()
    });
    tasm.ingest("v", &video, 30).unwrap();
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).unwrap();
        }
        tasm.mark_processed("v", f).unwrap();
    }
    video
}

fn request(frames: std::ops::Range<u32>) -> QueryRequest {
    QueryRequest::scan("v", LabelPredicate::label("car"), frames)
}

#[test]
fn completes_queries_and_reports_stats() {
    let tasm = tasm("basic");
    ingest(&tasm, 20);
    let service = QueryService::start(
        Arc::clone(&tasm),
        ServiceConfig {
            workers: 2,
            queue_depth: 8,
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..6)
        .map(|i| {
            service
                .submit(request(i % 2 * 10..i % 2 * 10 + 10))
                .unwrap()
        })
        .collect();
    for h in handles {
        let outcome = h.wait().unwrap();
        assert!(!outcome.result.regions.is_empty());
        assert!(outcome.total_time >= outcome.queue_time);
    }
    let stats = service.shutdown(Shutdown::Drain).stats;
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.failed, 0);
    assert!(stats.samples_decoded + stats.samples_reused > 0);
}

#[test]
fn unknown_video_fails_the_query_not_the_service() {
    let tasm = tasm("unknown");
    ingest(&tasm, 10);
    let service = QueryService::start(Arc::clone(&tasm), ServiceConfig::default());
    let bad = service
        .submit(QueryRequest::scan(
            "nope",
            LabelPredicate::label("car"),
            0..10,
        ))
        .unwrap();
    assert!(matches!(bad.wait(), Err(ServiceError::Tasm(_))));
    // The service keeps serving.
    let good = service.submit(request(0..10)).unwrap();
    assert!(good.wait().is_ok());
    let stats = service.shutdown(Shutdown::Drain).stats;
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn try_submit_reports_backpressure() {
    let tasm = tasm("full");
    ingest(&tasm, 10);
    // One worker, tiny queue: flood it and expect QueueFull eventually.
    let service = QueryService::start(
        Arc::clone(&tasm),
        ServiceConfig {
            workers: 1,
            queue_depth: 1,
            ..Default::default()
        },
    );
    let mut accepted = Vec::new();
    let mut rejections = 0;
    for _ in 0..64 {
        match service.try_submit(request(0..10)) {
            Ok(h) => accepted.push(h),
            Err(ServiceError::QueueFull) => rejections += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        rejections > 0,
        "a 1-deep queue must reject a 64-query flood"
    );
    for h in accepted {
        h.wait().unwrap();
    }
    service.shutdown(Shutdown::Drain);
}

#[test]
fn completed_queries_populate_the_latency_histogram() {
    let tasm = tasm("latency");
    ingest(&tasm, 10);
    let service = QueryService::start(
        Arc::clone(&tasm),
        ServiceConfig {
            workers: 2,
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..5)
        .map(|_| service.submit(request(0..10)).unwrap())
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let report = service.shutdown(Shutdown::Drain);
    assert_eq!(report.abandoned, 0);
    assert_eq!(report.completed, 5);
    let latency = report.stats.latency;
    assert_eq!(latency.count, 5, "one histogram entry per completed query");
    assert!(latency.p50() > std::time::Duration::ZERO);
    assert!(latency.p50() <= latency.p95());
    assert!(latency.p95() <= latency.p99());
}

#[test]
fn abort_abandons_queued_queries_with_typed_errors() {
    let tasm = tasm("abort");
    ingest(&tasm, 20);
    // One worker and a deep queue: flood it, then abort while most queries
    // are still queued.
    let service = QueryService::start(
        Arc::clone(&tasm),
        ServiceConfig {
            workers: 1,
            queue_depth: 64,
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..32)
        .map(|_| service.submit(request(0..20)).unwrap())
        .collect();
    let report = service.shutdown(Shutdown::Abort);
    assert_eq!(report.mode, Shutdown::Abort);
    assert_eq!(
        report.completed + report.abandoned,
        32,
        "every accepted query is accounted for: {report:?}"
    );
    // The flood outruns a single worker; at least one query must have been
    // sitting in the queue when the abort landed.
    assert!(report.abandoned > 0, "abort should abandon queued queries");
    let mut completed = 0;
    let mut shutdown_errors = 0;
    for h in handles {
        match h.wait() {
            Ok(_) => completed += 1,
            Err(ServiceError::ShuttingDown) => shutdown_errors += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(completed as u64, report.completed);
    assert_eq!(shutdown_errors as u64, report.abandoned);
}

#[test]
fn retile_daemon_retiles_in_background() {
    let tasm = tasm("daemon");
    ingest(&tasm, 20);
    let service = QueryService::start(
        Arc::clone(&tasm),
        ServiceConfig {
            workers: 2,
            queue_depth: 16,
            retile: RetilePolicy::More,
            ..Default::default()
        },
    );
    // The first "car" query makes incremental-more tile around cars.
    let handles: Vec<_> = (0..8)
        .map(|_| service.submit(request(0..20)).unwrap())
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    // Deterministic: force any queued observations through, then make sure
    // re-tiled layouts keep serving queries.
    service.drain_retile_backlog();
    let h = service.submit(request(0..20)).unwrap();
    assert!(h.wait().is_ok());
    // Shutdown joins the daemon, so all observations are fully processed
    // before the final stats are read (the daemon may still be mid-batch
    // when `drain_retile_backlog` returns).
    let stats = service.shutdown(Shutdown::Drain).stats;
    assert!(stats.retile_ops > 0, "incremental-more must have re-tiled");
    assert_eq!(stats.retile_errors, 0);
    let manifest = tasm.manifest("v").unwrap();
    assert!(manifest.sots.iter().any(|s| !s.layout.is_untiled()));
}

#[test]
fn daemon_crash_is_contained_and_shutdown_drains() {
    use tasm_core::durable::{FaultIo, FaultKind};

    // A Tasm over fault-injecting storage: the daemon's re-tile will run
    // into a dead disk mid-commit, queries after the crash fail fast, and
    // shutdown must still drain cleanly — no hang, no panic, accurate
    // accounting. Recovery of the on-disk state is covered by
    // tests/crash_recovery.rs; this test pins the *service* behavior.
    let dir = std::env::temp_dir().join(format!("tasm-svc-crash-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let fault = FaultIo::new();
    let cfg = TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        eta: 0.01, // re-tile almost immediately
        workers: 1,
        // No decoded-GOP cache: every scan must touch the (dead) disk, so
        // post-crash queries demonstrably fail typed instead of being
        // silently served from warm cache entries.
        cache_bytes: 0,
        ..Default::default()
    };
    let tasm = Arc::new(
        Tasm::open_with_io(&dir, Box::new(MemoryIndex::in_memory()), cfg, fault.clone()).unwrap(),
    );
    ingest(&tasm, 20);

    let service = QueryService::start(
        Arc::clone(&tasm),
        ServiceConfig {
            workers: 2,
            queue_depth: 16,
            retile: RetilePolicy::Regret,
            retile_interval: std::time::Duration::from_millis(2),
            slow_query: None,
            ..Default::default()
        },
    );
    // The only mutating I/O left comes from daemon re-tiles; die mid-way
    // through the first one.
    fault.arm(fault.mutating_ops() + 3, FaultKind::FailStop);
    for round in 0..300 {
        let handles: Vec<_> = (0..2)
            .filter_map(|_| service.try_submit(request(0..20)).ok())
            .collect();
        for h in handles {
            let _ = h.wait();
        }
        service.drain_retile_backlog();
        if fault.crashed() {
            break;
        }
        assert!(round < 299, "regret daemon never attempted a re-tile");
    }
    // The service survives the dead disk: submissions still resolve
    // (with typed errors), and Drain terminates.
    let h = service.submit(request(0..20)).unwrap();
    assert!(matches!(h.wait(), Err(ServiceError::Tasm(_))));
    let report = service.shutdown(Shutdown::Drain);
    assert!(
        report.stats.retile_errors > 0,
        "the failed re-tile is counted"
    );
    assert!(report.stats.failed > 0, "post-crash queries fail typed");
    std::fs::remove_dir_all(&dir).ok();
}
