//! A hand-rolled minimal HTTP/1.1 responder for the `/metrics` endpoint.
//!
//! Standard scrapers (Prometheus, curl) only ever send a small GET, so
//! this deliberately implements just enough of HTTP/1.1: one accept
//! thread, one request per connection (`Connection: close`), a bounded
//! header read with a timeout, and three outcomes — `200` with the
//! rendered body for `GET /metrics` (or `GET /`), `404` for other paths,
//! `405` for other methods. No keep-alive, no TLS, no request bodies.
//!
//! The body callback runs per scrape, so it can snapshot live state (the
//! service latency histogram) at scrape time.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest request head accepted before the connection is dropped.
const MAX_REQUEST_BYTES: usize = 8192;

/// A running metrics endpoint; shuts down when dropped.
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (`host:0` picks an ephemeral port) and serves
    /// `body()` to every `GET /metrics` until shutdown.
    pub fn serve(
        addr: impl ToSocketAddrs,
        body: Arc<dyn Fn() -> String + Send + Sync>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("tasm-metrics".to_string())
                .spawn(move || accept_loop(&listener, &stop, &body))
                .expect("spawn metrics accept loop")
        };
        Ok(MetricsServer {
            local_addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The address the endpoint actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the endpoint and joins its thread (also runs on drop).
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    body: &Arc<dyn Fn() -> String + Send + Sync>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => handle_connection(stream, body),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Serves one request on an accepted connection; every syscall is bounded
/// by a timeout so a stalled peer cannot wedge the accept thread for long.
fn handle_connection(mut stream: TcpStream, body: &Arc<dyn Fn() -> String + Send + Sync>) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the blank line ending the request head (responses ignore
    // any body — GET has none).
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = match std::str::from_utf8(&head)
        .ok()
        .and_then(|s| s.lines().next())
    {
        Some(line) => line.to_string(),
        None => return,
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return,
    };
    let (status, payload) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == "/metrics" || path == "/" {
        ("200 OK", body())
    } else {
        ("404 Not Found", "not found; try /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
        stream.write_all(request.as_bytes()).expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    #[test]
    fn serves_the_body_on_get_metrics() {
        let body: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(|| "tasm_up 1\n".to_string());
        let server = MetricsServer::serve("127.0.0.1:0", body).expect("bind metrics endpoint");
        let addr = server.local_addr();
        let response = scrape(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.ends_with("tasm_up 1\n"), "{response}");
        // Content-Length matches the payload exactly.
        let len: usize = response
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("has content length")
            .trim()
            .parse()
            .expect("numeric content length");
        assert_eq!(len, "tasm_up 1\n".len());
        server.shutdown();
    }

    #[test]
    fn rejects_unknown_paths_and_methods() {
        let body: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(String::new);
        let server = MetricsServer::serve("127.0.0.1:0", body).expect("bind metrics endpoint");
        let addr = server.local_addr();
        let response = scrape(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        let response = scrape(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    #[test]
    fn body_callback_sees_live_state_per_scrape() {
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let body: Arc<dyn Fn() -> String + Send + Sync> = {
            let hits = Arc::clone(&hits);
            Arc::new(move || format!("scrapes {}\n", hits.fetch_add(1, Ordering::SeqCst) + 1))
        };
        let server = MetricsServer::serve("127.0.0.1:0", body).expect("bind metrics endpoint");
        let addr = server.local_addr();
        assert!(scrape(addr, "GET / HTTP/1.1\r\n\r\n").ends_with("scrapes 1\n"));
        assert!(scrape(addr, "GET / HTTP/1.1\r\n\r\n").ends_with("scrapes 2\n"));
        server.shutdown();
    }
}
