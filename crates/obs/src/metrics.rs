//! The process-global lock-free metrics registry and its Prometheus text
//! exposition.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a short mutex to
//! insert into the name map and hands back an `Arc` handle; every update
//! after that is a plain atomic on the handle. Call sites that run once per
//! query may simply re-look-up by name — the map is a `BTreeMap` behind a
//! mutex and a lookup is nanoseconds next to a video decode. Hot loops
//! should cache the `Arc` in a `OnceLock`.
//!
//! Histograms reuse the log₂-microsecond-band shape of the service latency
//! histogram: bucket `i` counts observations whose microsecond value has
//! floored log₂ `i` (band 0 also holds sub-microsecond observations), 40
//! bands reach ≈12.7 days. The count is bumped with `Release` ordering
//! after the bucket so an `Acquire` snapshot can only observe
//! `count <= sum(buckets)`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Number of log₂ microsecond bands in a [`Histogram`].
pub const HISTOGRAM_BANDS: usize = 40;

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while instrumentation is disabled).
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed gauge (queue depth, live epoch pins, sessions).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `delta` (no-op while instrumentation is disabled).
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Overwrites the value (applies even while disabled, so a re-enable
    /// does not resurrect a stale level).
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free log₂-banded duration histogram.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BANDS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BANDS],
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
        }
    }
}

/// Band a microsecond value falls into (log₂ scale, clamped).
fn band_index(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        (micros.ilog2() as usize).min(HISTOGRAM_BANDS - 1)
    }
}

impl Histogram {
    /// Records one duration (no-op while instrumentation is disabled).
    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros() as u64);
    }

    /// Records one observation in microseconds.
    pub fn record_micros(&self, micros: u64) {
        if !crate::enabled() {
            return;
        }
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.buckets[band_index(micros)].fetch_add(1, Ordering::Relaxed);
        // Release pairs with the Acquire count load in `snapshot`: a
        // snapshot that observes this count also observes the bucket add.
        self.count.fetch_add(1, Ordering::Release);
    }

    /// A consistent-enough point-in-time copy: the count is loaded first
    /// with `Acquire`, so a racing `record_micros` leaves at worst
    /// `count <= sum(buckets)`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Acquire);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            total_micros: self.total_micros.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-band counts; band `i` covers `[2^i, 2^(i+1))` µs (band 0 starts
    /// at zero).
    pub buckets: [u64; HISTOGRAM_BANDS],
    /// Recorded observations.
    pub count: u64,
    /// Sum of all observations in microseconds.
    pub total_micros: u64,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: &'static str,
    metric: Metric,
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Entry>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns (registering on first use) the named counter.
///
/// # Panics
/// If `name` was previously registered as a different metric kind.
pub fn counter(name: &'static str, help: &'static str) -> Arc<Counter> {
    let mut reg = registry().lock().expect("metrics registry lock");
    let entry = reg.entry(name).or_insert_with(|| Entry {
        help,
        metric: Metric::Counter(Arc::new(Counter::default())),
    });
    match &entry.metric {
        Metric::Counter(c) => Arc::clone(c),
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// Returns (registering on first use) the named gauge.
///
/// # Panics
/// If `name` was previously registered as a different metric kind.
pub fn gauge(name: &'static str, help: &'static str) -> Arc<Gauge> {
    let mut reg = registry().lock().expect("metrics registry lock");
    let entry = reg.entry(name).or_insert_with(|| Entry {
        help,
        metric: Metric::Gauge(Arc::new(Gauge::default())),
    });
    match &entry.metric {
        Metric::Gauge(g) => Arc::clone(g),
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// Returns (registering on first use) the named histogram.
///
/// # Panics
/// If `name` was previously registered as a different metric kind.
pub fn histogram(name: &'static str, help: &'static str) -> Arc<Histogram> {
    let mut reg = registry().lock().expect("metrics registry lock");
    let entry = reg.entry(name).or_insert_with(|| Entry {
        help,
        metric: Metric::Histogram(Arc::new(Histogram::default())),
    });
    match &entry.metric {
        Metric::Histogram(h) => Arc::clone(h),
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// Renders the whole registry in Prometheus text exposition format 0.0.4
/// (`# HELP` / `# TYPE` headers, cumulative `_bucket{le="..."}` series plus
/// `_sum`/`_count` for histograms, durations in seconds).
pub fn render() -> String {
    let reg = registry().lock().expect("metrics registry lock");
    let mut out = String::new();
    for (name, entry) in reg.iter() {
        match &entry.metric {
            Metric::Counter(c) => {
                out.push_str(&format!(
                    "# HELP {name} {}\n# TYPE {name} counter\n{name} {}\n",
                    entry.help,
                    c.get()
                ));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!(
                    "# HELP {name} {}\n# TYPE {name} gauge\n{name} {}\n",
                    entry.help,
                    g.get()
                ));
            }
            Metric::Histogram(h) => {
                let snap = h.snapshot();
                render_histogram_into(
                    &mut out,
                    name,
                    entry.help,
                    &snap.buckets,
                    snap.count,
                    snap.total_micros,
                );
            }
        }
    }
    out
}

/// Appends one histogram in exposition format. Band counts are the
/// per-band (non-cumulative) log₂-microsecond counts; the rendered
/// `le` bounds are the band upper edges converted to seconds, cumulated
/// as Prometheus requires, with `+Inf` pinned to the total observation
/// count (which can exceed the band sum on a racy snapshot).
///
/// Shared by [`render`] and by callers exposing an external histogram of
/// the same shape (the service latency histogram).
pub fn render_histogram_into(
    out: &mut String,
    name: &str,
    help: &str,
    band_counts: &[u64],
    count: u64,
    total_micros: u64,
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, n) in band_counts.iter().enumerate() {
        cumulative += n;
        let le = (1u128 << (i + 1)) as f64 / 1e6;
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"}} {}\n",
        cumulative.max(count)
    ));
    out.push_str(&format!("{name}_sum {}\n", total_micros as f64 / 1e6));
    out.push_str(&format!("{name}_count {count}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_accumulate() {
        let _serial = crate::test_serial();
        let c = counter("test_obs_counter_total", "test counter");
        c.inc();
        c.add(4);
        assert_eq!(counter("test_obs_counter_total", "ignored").get(), 5);
        let g = gauge("test_obs_gauge", "test gauge");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(gauge("test_obs_gauge", "ignored").get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_bands_match_the_service_shape() {
        let _serial = crate::test_serial();
        assert_eq!(band_index(0), 0);
        assert_eq!(band_index(1), 0);
        assert_eq!(band_index(2), 1);
        assert_eq!(band_index(1024), 10);
        assert_eq!(band_index(u64::MAX), HISTOGRAM_BANDS - 1);
        let h = Histogram::default();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(10));
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.total_micros, 10_200);
        assert_eq!(snap.buckets[6], 2); // [64, 128) µs
        assert_eq!(snap.buckets[13], 1); // [8192, 16384) µs
    }

    #[test]
    fn exposition_buckets_are_cumulative_and_well_formed() {
        let _serial = crate::test_serial();
        let mut bands = [0u64; HISTOGRAM_BANDS];
        bands[6] = 2;
        bands[13] = 1;
        let mut out = String::new();
        render_histogram_into(
            &mut out,
            "test_hist_seconds",
            "help text",
            &bands,
            3,
            10_200,
        );
        assert!(out.contains("# TYPE test_hist_seconds histogram\n"));
        // Band 6 upper edge is 128 µs = 0.000128 s; cumulative count 2.
        assert!(out.contains("test_hist_seconds_bucket{le=\"0.000128\"} 2\n"));
        // Band 13 upper edge is 16384 µs; cumulative count 3.
        assert!(out.contains("test_hist_seconds_bucket{le=\"0.016384\"} 3\n"));
        assert!(out.contains("test_hist_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(out.contains("test_hist_seconds_sum 0.0102\n"));
        assert!(out.contains("test_hist_seconds_count 3\n"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn racy_snapshot_pins_inf_bucket_to_count() {
        let _serial = crate::test_serial();
        let mut bands = [0u64; HISTOGRAM_BANDS];
        bands[0] = 1;
        let mut out = String::new();
        // count=2 but only one banded observation: the torn-read shape.
        render_histogram_into(&mut out, "racy_seconds", "h", &bands, 2, 5);
        assert!(out.contains("racy_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(out.contains("racy_seconds_count 2\n"));
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _serial = crate::test_serial();
        let c = counter("test_obs_disabled_total", "t");
        let h = histogram("test_obs_disabled_seconds", "t");
        crate::set_enabled(false);
        c.inc();
        h.record(Duration::from_micros(10));
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn render_emits_every_registered_series() {
        let _serial = crate::test_serial();
        counter("test_obs_render_total", "a counter").inc();
        gauge("test_obs_render_gauge", "a gauge").set(7);
        histogram("test_obs_render_seconds", "a histogram").record(Duration::from_micros(3));
        let text = render();
        assert!(text.contains("test_obs_render_total 1\n"));
        assert!(text.contains("test_obs_render_gauge 7\n"));
        assert!(text.contains("# TYPE test_obs_render_seconds histogram\n"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            value.parse::<f64>().expect("metric value parses");
        }
    }
}
