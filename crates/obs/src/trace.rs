//! Per-query distributed tracing: trace ids, RAII phase spans, and the
//! wire-portable [`QueryTrace`] summary.
//!
//! A query's life is divided into four fixed phases:
//!
//! | phase  | covers                                                    |
//! |--------|-----------------------------------------------------------|
//! | queue  | admission → a worker dequeues the job                     |
//! | plan   | shard/epoch pin, manifest lookup, semantic index scan     |
//! | decode | tile decode fan-out, cache lookups, predicate evaluation  |
//! | stream | serializing ResultHeader/Region*/ResultDone to the socket |
//!
//! Workers share one [`TraceSpans`] accumulator per query; code holds a
//! phase open by keeping the RAII [`PhaseSpan`] guard alive (elapsed wall
//! time is added on drop), or adds an already-measured duration with
//! [`TraceSpans::add`]. The finished accumulator plus identity tags
//! (trace id, serving instance, executed layout epoch) fold into a
//! [`QueryTrace`], which travels back to the client on the `ResultDone`
//! frame and through the router unchanged — a cluster query therefore
//! shows exactly which shard served it and where the time went.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The four fixed query phases, in lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Admission until a worker picks the job up.
    Queue = 0,
    /// Epoch pin, manifest lookup, and semantic-index scan.
    Plan = 1,
    /// Tile decode fan-out and predicate evaluation.
    Decode = 2,
    /// Writing the result frames to the client socket.
    Stream = 3,
}

impl Phase {
    /// Stable lower-case name used in logs and `--explain` output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queue => "queue",
            Phase::Plan => "plan",
            Phase::Decode => "decode",
            Phase::Stream => "stream",
        }
    }
}

/// Lock-free per-query accumulator of phase wall time in microseconds.
#[derive(Debug, Default)]
pub struct TraceSpans {
    micros: [AtomicU64; 4],
}

impl TraceSpans {
    /// A fresh shared accumulator.
    pub fn shared() -> Arc<TraceSpans> {
        Arc::new(TraceSpans::default())
    }

    /// Adds an already-measured duration to a phase.
    pub fn add(&self, phase: Phase, d: Duration) {
        self.add_micros(phase, d.as_micros() as u64);
    }

    /// Adds microseconds to a phase.
    pub fn add_micros(&self, phase: Phase, micros: u64) {
        self.micros[phase as usize].fetch_add(micros, Ordering::Relaxed);
    }

    /// Microseconds accumulated in a phase so far.
    pub fn get(&self, phase: Phase) -> u64 {
        self.micros[phase as usize].load(Ordering::Relaxed)
    }

    /// Opens an RAII span: the guard adds its elapsed wall time to `phase`
    /// when dropped. Returns an inert guard (no clock reads) while
    /// instrumentation is disabled.
    pub fn span(self: &Arc<Self>, phase: Phase) -> PhaseSpan {
        PhaseSpan {
            spans: crate::enabled().then(|| Arc::clone(self)),
            phase,
            start: Instant::now(),
        }
    }

    /// Folds the accumulated phases plus identity tags into the
    /// wire-portable summary.
    pub fn finish(&self, trace_id: u64, epoch: u64, total: Duration) -> QueryTrace {
        QueryTrace {
            trace_id,
            instance: String::new(),
            epoch,
            queue_micros: self.get(Phase::Queue),
            plan_micros: self.get(Phase::Plan),
            decode_micros: self.get(Phase::Decode),
            stream_micros: self.get(Phase::Stream),
            total_micros: total.as_micros() as u64,
        }
    }
}

/// RAII guard for one open phase; adds elapsed wall time on drop.
pub struct PhaseSpan {
    spans: Option<Arc<TraceSpans>>,
    phase: Phase,
    start: Instant,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(spans) = &self.spans {
            spans.add(self.phase, self.start.elapsed());
        }
    }
}

/// The finished per-query breakdown a server attaches to `ResultDone`.
///
/// All durations are microseconds of wall time. `total_micros` is the
/// server-side admission→completion measurement; the phase fields are a
/// decomposition of (most of) it — scheduling gaps between phases mean
/// the phase sum is `<= total` plus the stream time measured after the
/// total was taken.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryTrace {
    /// Process-unique id, client-supplied on the Query frame or assigned
    /// at admission.
    pub trace_id: u64,
    /// The serving node's listen address — identifies the shard that
    /// executed a routed query.
    pub instance: String,
    /// Layout epoch the query executed against.
    pub epoch: u64,
    /// Time spent waiting in the submission queue.
    pub queue_micros: u64,
    /// Time spent pinning the epoch and scanning the semantic index.
    pub plan_micros: u64,
    /// Time spent decoding tiles and evaluating the predicate.
    pub decode_micros: u64,
    /// Time spent streaming result frames to the socket.
    pub stream_micros: u64,
    /// Admission→completion wall time on the serving node.
    pub total_micros: u64,
}

impl QueryTrace {
    /// Sum of the four phase durations.
    pub fn phase_sum(&self) -> u64 {
        self.queue_micros + self.plan_micros + self.decode_micros + self.stream_micros
    }

    /// Time inside the total not attributed to any phase (scheduling gaps,
    /// result assembly); saturates at zero when streaming — measured after
    /// the total — pushes the phase sum past it.
    pub fn unattributed_micros(&self) -> u64 {
        (self.total_micros + self.stream_micros).saturating_sub(self.phase_sum())
    }
}

/// A process-unique trace id: the process id in the high 32 bits over a
/// monotonically increasing counter, so ids from different nodes of a
/// cluster cannot collide in practice.
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let seq = NEXT.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff;
    ((std::process::id() as u64) << 32) | seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_into_their_phase() {
        let _serial = crate::test_serial();
        let spans = TraceSpans::shared();
        {
            let _plan = spans.span(Phase::Plan);
            std::thread::sleep(Duration::from_millis(2));
        }
        spans.add(Phase::Queue, Duration::from_micros(150));
        spans.add_micros(Phase::Queue, 50);
        assert!(spans.get(Phase::Plan) >= 2_000, "plan span records elapsed");
        assert_eq!(spans.get(Phase::Queue), 200);
        assert_eq!(spans.get(Phase::Decode), 0);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = crate::test_serial();
        let spans = TraceSpans::shared();
        crate::set_enabled(false);
        {
            let _decode = spans.span(Phase::Decode);
            std::thread::sleep(Duration::from_millis(1));
        }
        crate::set_enabled(true);
        assert_eq!(spans.get(Phase::Decode), 0);
    }

    #[test]
    fn finish_folds_phases_and_tags() {
        let spans = TraceSpans::shared();
        spans.add_micros(Phase::Queue, 10);
        spans.add_micros(Phase::Plan, 20);
        spans.add_micros(Phase::Decode, 30);
        let trace = spans.finish(42, 7, Duration::from_micros(100));
        assert_eq!(trace.trace_id, 42);
        assert_eq!(trace.epoch, 7);
        assert_eq!(trace.queue_micros, 10);
        assert_eq!(trace.total_micros, 100);
        assert_eq!(trace.phase_sum(), 60);
        assert_eq!(trace.unattributed_micros(), 40);
    }

    #[test]
    fn unattributed_time_saturates_at_zero() {
        let trace = QueryTrace {
            queue_micros: 50,
            plan_micros: 50,
            decode_micros: 50,
            stream_micros: 500,
            total_micros: 100,
            ..QueryTrace::default()
        };
        assert_eq!(trace.unattributed_micros(), 0);
    }

    #[test]
    fn trace_ids_are_unique_and_tagged_with_the_process() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_eq!(a >> 32, std::process::id() as u64);
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(Phase::Queue.name(), "queue");
        assert_eq!(Phase::Plan.name(), "plan");
        assert_eq!(Phase::Decode.name(), "decode");
        assert_eq!(Phase::Stream.name(), "stream");
    }
}
