//! # tasm-obs: observability primitives for the TASM stack
//!
//! A dependency-free leaf crate every other layer (core, service, server,
//! cluster, cli) can share without cycles. Four pieces:
//!
//! - [`metrics`] — a process-global, lock-free metrics registry. Counters
//!   and gauges are single atomics; histograms use the same log₂-banded
//!   atomic shape as the service latency histogram (40 power-of-two
//!   microsecond bands, `Release` count paired with an `Acquire` snapshot
//!   load so a racy snapshot can only under-count). [`metrics::render`]
//!   emits the whole registry in Prometheus text exposition format 0.0.4,
//!   including cumulative `_bucket{le="..."}` series.
//! - [`trace`] — per-query distributed tracing: a process-unique
//!   [`trace::next_trace_id`], RAII [`trace::PhaseSpan`]s that accumulate
//!   wall time into one of four fixed phases (queue / plan / decode /
//!   stream), and the wire-portable [`QueryTrace`] summary a server
//!   attaches to its `ResultDone` frame.
//! - [`log`] — a leveled structured logger writing `key=value` lines (or
//!   JSON lines) to stderr, used for the slow-query log, retile-daemon
//!   errors, and recovery reports.
//! - [`http`] — a hand-rolled minimal HTTP/1.1 GET responder for
//!   `/metrics`, so `tasm serve --metrics-addr` needs no HTTP crate.
//!
//! ## Overhead and the kill switch
//!
//! Every record path early-returns when [`set_enabled`]`(false)` has been
//! called, so a benchmark can measure the instrumented stack against a
//! no-op baseline in one binary (`obs_bench` asserts the enabled overhead
//! stays under 3% on warm scans). Enabled is the default.

pub mod http;
pub mod log;
pub mod metrics;
pub mod trace;

pub use http::MetricsServer;
pub use log::Level;
pub use metrics::{
    counter, gauge, histogram, render, render_histogram_into, Counter, Gauge, Histogram,
    HistogramSnapshot, HISTOGRAM_BANDS,
};
pub use trace::{next_trace_id, Phase, PhaseSpan, QueryTrace, TraceSpans};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables every metric record path and phase span
/// (registration and rendering still work). Used by `obs_bench` to compare
/// the instrumented stack against a no-op baseline.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is live (the default).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Serializes tests that record metrics or toggle the global kill switch,
/// so a test flipping [`set_enabled`] cannot swallow another test's
/// increments.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}
