//! A leveled structured logger for headless runs.
//!
//! Every line is one event on stderr, either `key=value` text (default)
//!
//! ```text
//! ts=1754500000123 level=warn event=slow_query trace_id=281479271677953 video="cam-3" total_ms=412
//! ```
//!
//! or a JSON object per line after [`set_json`]`(true)`:
//!
//! ```text
//! {"ts":1754500000123,"level":"warn","event":"slow_query","trace_id":"281479271677953",...}
//! ```
//!
//! Both shapes are grep- and machine-parseable, which is the point: the
//! retile daemon's errors, recovery reports, and the slow-query log all
//! flow through here instead of ad-hoc `println!`s. Lines below the
//! global level ([`set_level`], default [`Level::Info`]) are dropped
//! before any formatting work.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic chatter, off by default.
    Debug = 0,
    /// Normal lifecycle events.
    Info = 1,
    /// Something degraded but the process continues (slow queries,
    /// failed retiles).
    Warn = 2,
    /// An operation failed.
    Error = 3,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static JSON: AtomicBool = AtomicBool::new(false);

/// Sets the minimum level that reaches stderr.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Switches between `key=value` text lines (false, the default) and JSON
/// lines (true).
pub fn set_json(json: bool) {
    JSON.store(json, Ordering::Relaxed);
}

/// Whether a line at `level` would currently be emitted.
pub fn level_enabled(level: Level) -> bool {
    level as u8 >= LEVEL.load(Ordering::Relaxed)
}

/// Emits one structured event. `fields` are appended in order after the
/// timestamp, level, and event name.
pub fn log(level: Level, event: &str, fields: &[(&str, String)]) {
    if !level_enabled(level) {
        return;
    }
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let line = if JSON.load(Ordering::Relaxed) {
        let mut line = format!(
            "{{\"ts\":{ts},\"level\":\"{}\",\"event\":\"{}\"",
            level.name(),
            json_escape(event)
        );
        for (k, v) in fields {
            line.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        line.push('}');
        line
    } else {
        let mut line = format!("ts={ts} level={} event={}", level.name(), event);
        for (k, v) in fields {
            if v.chars()
                .all(|c| c.is_ascii_graphic() && c != '"' && c != '\\')
                && !v.is_empty()
            {
                line.push_str(&format!(" {k}={v}"));
            } else {
                line.push_str(&format!(
                    " {k}=\"{}\"",
                    v.replace('\\', "\\\\").replace('"', "\\\"")
                ));
            }
        }
        line
    };
    // One write_all per line keeps concurrent loggers from interleaving
    // inside a line (stderr is unbuffered; the lock covers the call).
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(line.as_bytes());
    let _ = handle.write_all(b"\n");
}

/// [`log`] at [`Level::Debug`].
pub fn debug(event: &str, fields: &[(&str, String)]) {
    log(Level::Debug, event, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(event: &str, fields: &[(&str, String)]) {
    log(Level::Info, event, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(event: &str, fields: &[(&str, String)]) {
    log(Level::Warn, event, fields);
}

/// [`log`] at [`Level::Error`].
pub fn error(event: &str, fields: &[(&str, String)]) {
    log(Level::Error, event, fields);
}

/// Escapes a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_gate_emission() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        // Default level is Info.
        assert!(level_enabled(Level::Info));
        assert!(level_enabled(Level::Error));
        assert!(!level_enabled(Level::Debug));
    }

    #[test]
    fn json_escaping_covers_control_and_quote_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
