//! Query workload generators (§5.3 of the paper).
//!
//! A workload is an ordered list of [`Query`]s, each naming an object class
//! and a frame range. The six generators below reproduce the paper's
//! Workloads 1–6; lengths are expressed in frames so the same generators
//! work at any scaled duration.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One query: "SELECT `label` FROM video WHERE start ≤ t < end".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Target object class.
    pub label: String,
    /// Frame range scanned.
    pub frames: Range<u32>,
}

impl Query {
    /// Convenience constructor.
    pub fn new(label: &str, frames: Range<u32>) -> Self {
        Query {
            label: label.to_string(),
            frames,
        }
    }
}

/// Parameters shared by the workload generators.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Total frames in the target video.
    pub video_frames: u32,
    /// Length of each query's frame window.
    pub query_frames: u32,
    /// RNG seed (workloads are deterministic given their parameters).
    pub seed: u64,
}

impl WorkloadParams {
    /// Standard parameters: windows of `query_frames` over a video.
    pub fn new(video_frames: u32, query_frames: u32, seed: u64) -> Self {
        assert!(video_frames > 0 && query_frames > 0);
        WorkloadParams {
            video_frames,
            query_frames,
            seed,
        }
    }

    fn clamp_window(&self, start: u32) -> Range<u32> {
        let start = start.min(self.video_frames.saturating_sub(self.query_frames));
        start..(start + self.query_frames).min(self.video_frames)
    }
}

/// Workload 1: 100 queries for the same class ("car"), start frames uniform
/// over the entire video.
pub fn workload1(p: WorkloadParams) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    (0..100)
        .map(|_| {
            let start = rng.gen_range(0..p.video_frames);
            Query::new("car", p.clamp_window(start))
        })
        .collect()
}

/// Workload 2: 100 queries, 50/50 cars or people, restricted to the first
/// 25% of the video.
pub fn workload2(p: WorkloadParams) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let limit = (p.video_frames / 4).max(1);
    (0..100)
        .map(|_| {
            let label = if rng.gen_bool(0.5) { "car" } else { "person" };
            let start = rng.gen_range(0..limit);
            Query::new(label, p.clamp_window(start))
        })
        .collect()
}

/// Workload 3: 100 queries — 47.5% cars, 47.5% people, 5% traffic lights —
/// with Zipfian start frames (biased toward the beginning).
pub fn workload3(p: WorkloadParams) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let zipf = Zipf::new(p.video_frames as usize, 1.0);
    (0..100)
        .map(|_| {
            let r: f64 = rng.gen();
            let label = if r < 0.475 {
                "car"
            } else if r < 0.95 {
                "person"
            } else {
                "traffic_light"
            };
            let start = zipf.sample(&mut rng) as u32;
            Query::new(label, p.clamp_window(start))
        })
        .collect()
}

/// Workload 4: 200 queries whose target drifts over time — first third cars,
/// middle third people, final third cars again — with Zipfian starts.
pub fn workload4(p: WorkloadParams) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let zipf = Zipf::new(p.video_frames as usize, 1.0);
    (0..200)
        .map(|i| {
            let label = if (67..134).contains(&i) {
                "person"
            } else {
                "car"
            };
            let start = zipf.sample(&mut rng) as u32;
            Query::new(label, p.clamp_window(start))
        })
        .collect()
}

/// Workload 5: 200 queries over diverse dense scenes where tiling does not
/// help — uniform starts, each query randomly targeting one of the scene's
/// primary classes.
pub fn workload5(p: WorkloadParams, primary_labels: &[&str]) -> Vec<Query> {
    assert!(
        !primary_labels.is_empty(),
        "need at least one primary label"
    );
    let mut rng = StdRng::seed_from_u64(p.seed);
    (0..200)
        .map(|_| {
            let label = primary_labels[rng.gen_range(0..primary_labels.len())];
            let start = rng.gen_range(0..p.video_frames);
            Query::new(label, p.clamp_window(start))
        })
        .collect()
}

/// Workload 6: 200 queries for a single class with uniform starts, on videos
/// where tiling around that class helps but tiling around everything hurts.
pub fn workload6(p: WorkloadParams, label: &str) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    (0..200)
        .map(|_| {
            let start = rng.gen_range(0..p.video_frames);
            Query::new(label, p.clamp_window(start))
        })
        .collect()
}

/// The microbenchmark query of §5.2: "SELECT o FROM v" — all frames.
pub fn select_all(label: &str, video_frames: u32) -> Query {
    Query::new(label, 0..video_frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams::new(3000, 60, 99)
    }

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(workload1(params()), workload1(params()));
        assert_eq!(workload3(params()), workload3(params()));
    }

    #[test]
    fn w1_single_label_uniform() {
        let w = workload1(params());
        assert_eq!(w.len(), 100);
        assert!(w.iter().all(|q| q.label == "car"));
        assert!(w.iter().all(|q| q.frames.end <= 3000));
        assert!(w.iter().all(|q| q.frames.len() == 60));
        // Uniform: a decent share of queries land in the back half.
        let back = w.iter().filter(|q| q.frames.start >= 1500).count();
        assert!(back > 25, "only {back} queries in the back half");
    }

    #[test]
    fn w2_restricted_to_first_quarter() {
        let w = workload2(params());
        assert!(w.iter().all(|q| q.frames.start < 750));
        let cars = w.iter().filter(|q| q.label == "car").count();
        assert!((25..=75).contains(&cars), "car share {cars} should be ~50");
    }

    #[test]
    fn w3_label_mix_and_zipf_bias() {
        let w = workload3(params());
        let lights = w.iter().filter(|q| q.label == "traffic_light").count();
        assert!(lights <= 20, "traffic lights should be rare, got {lights}");
        let front = w.iter().filter(|q| q.frames.start < 750).count();
        assert!(front > 50, "Zipf should bias to the front, got {front}");
    }

    #[test]
    fn w4_label_drift_in_thirds() {
        let w = workload4(params());
        assert_eq!(w.len(), 200);
        assert!(w[..67].iter().all(|q| q.label == "car"));
        assert!(w[67..134].iter().all(|q| q.label == "person"));
        assert!(w[134..].iter().all(|q| q.label == "car"));
    }

    #[test]
    fn w5_uses_primary_labels() {
        let w = workload5(params(), &["person", "food"]);
        assert_eq!(w.len(), 200);
        assert!(w.iter().all(|q| q.label == "person" || q.label == "food"));
        assert!(w.iter().any(|q| q.label == "person"));
        assert!(w.iter().any(|q| q.label == "food"));
    }

    #[test]
    fn w6_single_label() {
        let w = workload6(params(), "bird");
        assert!(w.iter().all(|q| q.label == "bird"));
    }

    #[test]
    fn windows_clamped_to_video() {
        let p = WorkloadParams::new(50, 60, 1); // window longer than video
        let w = workload1(p);
        assert!(w.iter().all(|q| q.frames.start == 0 && q.frames.end == 50));
    }

    #[test]
    fn select_all_covers_video() {
        let q = select_all("car", 777);
        assert_eq!(q.frames, 0..777);
    }
}
