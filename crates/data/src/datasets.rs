//! Dataset presets mirroring Table 1 of the paper.
//!
//! Each preset instantiates a [`SceneSpec`] whose object classes and
//! per-frame coverage band match the corresponding corpus row. Resolutions
//! and durations are scaled down uniformly so experiments run on CPU
//! (see DESIGN.md); the scale factor is explicit and adjustable.
//!
//! | Paper corpus        | Classes               | Coverage band | Character |
//! |---------------------|-----------------------|---------------|-----------|
//! | Visual Road (synth) | car, person           | 0.06–10 %     | sparse    |
//! | Netflix public      | person, car, bird     | 0.3–49 %      | mixed     |
//! | Netflix Open Source | person, car, sheep    | 25–45 %       | dense     |
//! | XIPH                | car, person, boat     | 2–59 %        | mixed     |
//! | MOT16               | car, person           | 3–36 %        | mixed     |
//! | El Fuente (scenes)  | person, car, boat, bicycle, food | 1–47 % | both |

use crate::scene::{ObjectClass, SceneSpec, SyntheticVideo};
use serde::{Deserialize, Serialize};

/// Simulated "2K" resolution (uniformly scaled from 1920×1080; multiple of 16).
pub const RES_2K: (u32, u32) = (640, 352);

/// Simulated "4K" resolution (uniformly scaled from 3840×2160).
pub const RES_4K: (u32, u32) = (1280, 704);

/// The corpora of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Visual Road synthetic traffic (2K variant): sparse cars + people.
    VisualRoad2K,
    /// Visual Road synthetic traffic (4K variant).
    VisualRoad4K,
    /// Netflix public dataset: single-subject clips (person or bird).
    NetflixPublic,
    /// Netflix Open Source content: dense scenes with people, cars, sheep.
    NetflixOpenSource,
    /// XIPH test clips: mixed density, cars/people/boats.
    Xiph,
    /// MOT16 pedestrian/vehicle tracking scenes.
    Mot16,
    /// El Fuente, sparse outdoor scene (boats on water).
    ElFuenteSparse,
    /// El Fuente, dense market scene (people, food stalls).
    ElFuenteDense,
}

impl Dataset {
    /// All presets in a stable order.
    pub const ALL: [Dataset; 8] = [
        Dataset::VisualRoad2K,
        Dataset::VisualRoad4K,
        Dataset::NetflixPublic,
        Dataset::NetflixOpenSource,
        Dataset::Xiph,
        Dataset::Mot16,
        Dataset::ElFuenteSparse,
        Dataset::ElFuenteDense,
    ];

    /// The sparse subset used where the paper evaluates on Visual Road.
    pub const SPARSE: [Dataset; 3] = [Dataset::VisualRoad2K, Dataset::VisualRoad4K, Dataset::Mot16];

    /// The dense subset used in Workloads 5–6.
    pub const DENSE: [Dataset; 3] = [
        Dataset::NetflixOpenSource,
        Dataset::ElFuenteDense,
        Dataset::Xiph,
    ];

    /// Human-readable name matching Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::VisualRoad2K => "visual-road-2k",
            Dataset::VisualRoad4K => "visual-road-4k",
            Dataset::NetflixPublic => "netflix-public",
            Dataset::NetflixOpenSource => "netflix-open-source",
            Dataset::Xiph => "xiph",
            Dataset::Mot16 => "mot16",
            Dataset::ElFuenteSparse => "el-fuente-sparse",
            Dataset::ElFuenteDense => "el-fuente-dense",
        }
    }

    /// The most frequently occurring object classes (query targets in §5.1).
    pub fn primary_labels(&self) -> &'static [&'static str] {
        match self {
            Dataset::VisualRoad2K | Dataset::VisualRoad4K => &["car", "person"],
            Dataset::NetflixPublic => &["person", "bird"],
            Dataset::NetflixOpenSource => &["person", "car", "sheep"],
            Dataset::Xiph => &["car", "person", "boat"],
            Dataset::Mot16 => &["car", "person"],
            Dataset::ElFuenteSparse => &["boat", "person"],
            Dataset::ElFuenteDense => &["person", "food"],
        }
    }

    /// Whether objects are dense (≥ 20% mean coverage) in this preset.
    pub fn is_dense(&self) -> bool {
        matches!(self, Dataset::NetflixOpenSource | Dataset::ElFuenteDense)
    }

    /// Builds the scene spec. `duration_s` is the simulated duration in
    /// seconds at 30 fps; the paper's durations (Table 1) are scaled down by
    /// the caller to fit CPU budgets.
    pub fn spec(&self, duration_s: u32, seed: u64) -> SceneSpec {
        let frames = (duration_s * 30).max(30);
        let (w, h) = self.resolution();
        let (objects, size_scale, camera_pan) = match self {
            Dataset::VisualRoad2K | Dataset::VisualRoad4K => (
                vec![
                    (ObjectClass::Car, 3),
                    (ObjectClass::Person, 3),
                    (ObjectClass::TrafficLight, 1),
                ],
                0.9,
                0.0,
            ),
            Dataset::NetflixPublic => (
                vec![(ObjectClass::Person, 1), (ObjectClass::Bird, 2)],
                1.6,
                0.0,
            ),
            Dataset::NetflixOpenSource => (
                vec![
                    (ObjectClass::Person, 9),
                    (ObjectClass::Car, 4),
                    (ObjectClass::Sheep, 7),
                ],
                2.9,
                0.1,
            ),
            Dataset::Xiph => (
                vec![
                    (ObjectClass::Car, 2),
                    (ObjectClass::Person, 2),
                    (ObjectClass::Boat, 1),
                ],
                1.4,
                0.0,
            ),
            Dataset::Mot16 => (
                vec![(ObjectClass::Person, 6), (ObjectClass::Car, 2)],
                1.0,
                0.3,
            ),
            Dataset::ElFuenteSparse => (
                vec![(ObjectClass::Boat, 2), (ObjectClass::Person, 1)],
                1.0,
                0.05,
            ),
            Dataset::ElFuenteDense => (
                vec![
                    (ObjectClass::Person, 11),
                    (ObjectClass::Food, 9),
                    (ObjectClass::Bicycle, 3),
                ],
                2.7,
                0.15,
            ),
        };
        SceneSpec {
            width: w,
            height: h,
            fps: 30,
            frames,
            objects,
            size_scale,
            camera_pan,
            seed: seed ^ (*self as u64) << 32,
        }
    }

    /// Simulated resolution of the preset.
    pub fn resolution(&self) -> (u32, u32) {
        match self {
            Dataset::VisualRoad4K | Dataset::NetflixOpenSource | Dataset::ElFuenteDense => RES_4K,
            _ => RES_2K,
        }
    }

    /// Instantiates the video.
    pub fn build(&self, duration_s: u32, seed: u64) -> SyntheticVideo {
        SyntheticVideo::new(self.spec(duration_s, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_video::FrameSource;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Dataset::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Dataset::ALL.len());
    }

    #[test]
    fn density_classification_matches_generated_coverage() {
        for d in Dataset::ALL {
            let v = d.build(2, 42);
            let cov = v.mean_coverage();
            if d.is_dense() {
                assert!(
                    cov >= 0.20,
                    "{}: coverage {cov:.3} should be dense",
                    d.name()
                );
            } else {
                assert!(
                    cov < 0.20,
                    "{}: coverage {cov:.3} should be sparse",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn primary_labels_exist_in_video() {
        for d in Dataset::ALL {
            let v = d.build(2, 9);
            let labels = v.labels();
            for l in d.primary_labels() {
                assert!(labels.contains(l), "{}: missing label {l}", d.name());
            }
        }
    }

    #[test]
    fn resolutions_are_codec_aligned() {
        for d in Dataset::ALL {
            let (w, h) = d.resolution();
            assert_eq!(w % 16, 0);
            assert_eq!(h % 16, 0);
        }
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = Dataset::Xiph.build(1, 5);
        let b = Dataset::Xiph.build(1, 5);
        assert_eq!(a.frame(10), b.frame(10));
    }
}
