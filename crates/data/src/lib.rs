//! Synthetic video corpus and query workloads for the TASM reproduction.
//!
//! The paper evaluates on seven video corpora (Table 1) and six query
//! workloads (§5.3). This crate generates faithful synthetic equivalents:
//!
//! * [`scene`] — a procedural renderer producing textured moving objects
//!   over textured backgrounds, with exact ground-truth bounding boxes and
//!   O(1) random access to any frame;
//! * [`datasets`] — presets matching each Table 1 row's object classes and
//!   per-frame coverage band (sparse vs dense);
//! * [`workloads`] — generators for Workloads 1–6 plus the microbenchmark
//!   `SELECT o FROM v` query;
//! * [`zipf`] — the Zipfian start-frame sampler used by Workloads 3–4.

pub mod datasets;
pub mod scene;
pub mod workloads;
pub mod zipf;

pub use datasets::{Dataset, RES_2K, RES_4K};
pub use scene::{ObjectClass, SceneSpec, SyntheticVideo};
pub use workloads::{
    select_all, workload1, workload2, workload3, workload4, workload5, workload6, Query,
    WorkloadParams,
};
pub use zipf::Zipf;
