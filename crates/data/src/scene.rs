//! Procedural scene generation.
//!
//! The paper evaluates on real and synthetic corpora (Visual Road, Netflix,
//! XIPH, MOT16, El Fuente — Table 1). None of those are redistributable
//! here, so this module generates the *geometry* those experiments depend
//! on: textured moving objects of known classes over a textured background,
//! with exact ground-truth bounding boxes per frame. Every TASM experiment
//! is driven by object coverage, sparsity, and motion — which the generator
//! controls precisely (see DESIGN.md, substitution table).
//!
//! Rendering is deterministic and random-access: `frame(i)` is a pure
//! function of the spec and `i`, so videos never need to be buffered.

use serde::{Deserialize, Serialize};
use tasm_video::{Frame, FrameSource, Plane, Rect};

/// Object classes appearing in the corpora of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Vehicles (Visual Road, MOT16, El Fuente).
    Car,
    /// Pedestrians (all datasets).
    Person,
    /// Birds (Netflix public).
    Bird,
    /// Boats (XIPH, El Fuente).
    Boat,
    /// Sheep (Netflix Open Source).
    Sheep,
    /// Bicycles (El Fuente).
    Bicycle,
    /// Traffic lights (Visual Road; rare query class in Workload 3).
    TrafficLight,
    /// Market-stall food items (El Fuente dense scenes).
    Food,
}

impl ObjectClass {
    /// The label string stored in the semantic index.
    pub fn label(&self) -> &'static str {
        match self {
            ObjectClass::Car => "car",
            ObjectClass::Person => "person",
            ObjectClass::Bird => "bird",
            ObjectClass::Boat => "boat",
            ObjectClass::Sheep => "sheep",
            ObjectClass::Bicycle => "bicycle",
            ObjectClass::TrafficLight => "traffic_light",
            ObjectClass::Food => "food",
        }
    }

    /// Characteristic size as a fraction of frame width (w, h), and speed in
    /// pixels/frame at 640-wide scale. Rough visual plausibility only.
    fn profile(&self) -> ClassProfile {
        match self {
            ObjectClass::Car => ClassProfile {
                w: 0.11,
                h: 0.07,
                speed: 2.4,
                base_luma: 150,
            },
            ObjectClass::Person => ClassProfile {
                w: 0.035,
                h: 0.095,
                speed: 0.8,
                base_luma: 110,
            },
            ObjectClass::Bird => ClassProfile {
                w: 0.05,
                h: 0.04,
                speed: 3.2,
                base_luma: 190,
            },
            ObjectClass::Boat => ClassProfile {
                w: 0.16,
                h: 0.09,
                speed: 1.0,
                base_luma: 170,
            },
            ObjectClass::Sheep => ClassProfile {
                w: 0.06,
                h: 0.05,
                speed: 0.5,
                base_luma: 210,
            },
            ObjectClass::Bicycle => ClassProfile {
                w: 0.06,
                h: 0.06,
                speed: 1.8,
                base_luma: 90,
            },
            ObjectClass::TrafficLight => ClassProfile {
                w: 0.02,
                h: 0.05,
                speed: 0.0,
                base_luma: 60,
            },
            ObjectClass::Food => ClassProfile {
                w: 0.05,
                h: 0.05,
                speed: 0.2,
                base_luma: 140,
            },
        }
    }
}

struct ClassProfile {
    w: f64,
    h: f64,
    speed: f64,
    base_luma: u8,
}

/// Specification of a synthetic scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneSpec {
    /// Frame width (must be a multiple of 16 for the codec).
    pub width: u32,
    /// Frame height (must be a multiple of 16).
    pub height: u32,
    /// Frames per second (metadata; affects nothing in rendering).
    pub fps: u32,
    /// Total number of frames.
    pub frames: u32,
    /// How many objects of each class populate the scene.
    pub objects: Vec<(ObjectClass, u32)>,
    /// Scales object sizes (1.0 = class defaults). Dense scenes use > 1.
    pub size_scale: f64,
    /// Horizontal camera pan in pixels/frame (breaks background
    /// subtraction, §5.2.4).
    pub camera_pan: f64,
    /// Deterministic seed for layout and texture.
    pub seed: u64,
}

impl SceneSpec {
    /// A small default scene for tests.
    pub fn test_scene() -> Self {
        SceneSpec {
            width: 128,
            height: 96,
            fps: 30,
            frames: 60,
            objects: vec![(ObjectClass::Car, 2), (ObjectClass::Person, 2)],
            size_scale: 1.0,
            camera_pan: 0.0,
            seed: 7,
        }
    }
}

/// One object instance with a deterministic closed-form trajectory.
#[derive(Debug, Clone)]
struct SceneObject {
    class: ObjectClass,
    /// Initial top-left position.
    x0: f64,
    y0: f64,
    /// Velocity in pixels/frame.
    vx: f64,
    vy: f64,
    w: u32,
    h: u32,
    /// Frames during which the object exists.
    birth: u32,
    death: u32,
    /// Texture seed.
    tex: u64,
    base_luma: u8,
    chroma_u: u8,
    chroma_v: u8,
}

impl SceneObject {
    /// Top-left position at frame `t`, bouncing off the frame edges
    /// (closed-form triangle-wave reflection, so access is O(1)).
    fn position(&self, t: u32, frame_w: u32, frame_h: u32) -> (u32, u32) {
        let dt = t.saturating_sub(self.birth) as f64;
        let x = reflect(self.x0 + self.vx * dt, (frame_w - self.w) as f64);
        let y = reflect(self.y0 + self.vy * dt, (frame_h - self.h) as f64);
        (x as u32, y as u32)
    }

    fn bbox(&self, t: u32, frame_w: u32, frame_h: u32) -> Option<Rect> {
        if t < self.birth || t >= self.death {
            return None;
        }
        let (x, y) = self.position(t, frame_w, frame_h);
        Some(Rect::new(x, y, self.w, self.h))
    }
}

/// Reflects `v` into `[0, max]` as a triangle wave (elastic bounce).
fn reflect(v: f64, max: f64) -> f64 {
    if max <= 0.0 {
        return 0.0;
    }
    let period = 2.0 * max;
    let m = v.rem_euclid(period);
    if m <= max {
        m
    } else {
        period - m
    }
}

/// SplitMix64: cheap deterministic hashing for textures and layout.
#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Uniform f64 in [0, 1) from a hash state.
#[inline]
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A fully specified synthetic video: renders frames on demand and exposes
/// exact ground truth.
pub struct SyntheticVideo {
    spec: SceneSpec,
    objects: Vec<SceneObject>,
}

impl SyntheticVideo {
    /// Instantiates the scene (places objects deterministically from the
    /// spec's seed).
    ///
    /// # Panics
    /// Panics if dimensions are not multiples of 16 or the scene is empty.
    pub fn new(spec: SceneSpec) -> Self {
        assert!(
            spec.width.is_multiple_of(16) && spec.height.is_multiple_of(16),
            "scene dimensions must be multiples of 16 (codec tile alignment)"
        );
        assert!(spec.frames > 0, "scene must have at least one frame");
        let mut objects = Vec::new();
        let mut n = 0u64;
        for &(class, count) in &spec.objects {
            let p = class.profile();
            for _ in 0..count {
                let s = splitmix(spec.seed ^ (0xABCD << 16) ^ n);
                n += 1;
                let speed_scale = spec.width as f64 / 640.0;
                // Per-instance size variation: real corpora mix near and far
                // objects (distant pedestrians are what YOLOv3-tiny misses,
                // §5.2.4), from 60% to 150% of the class default.
                let instance_scale = 0.6 + 0.9 * unit(splitmix(s ^ 10));
                let w = ((p.w * spec.size_scale * instance_scale * spec.width as f64) as u32)
                    .clamp(4, spec.width / 2)
                    & !1;
                let h = ((p.h * spec.size_scale * instance_scale * spec.width as f64) as u32)
                    .clamp(4, spec.height / 2)
                    & !1;
                let angle = unit(splitmix(s ^ 1)) * std::f64::consts::TAU;
                // A quarter of the objects are stationary (parked cars,
                // standing people) — queried objects that sit in the
                // *background*, the failure mode the paper observes for
                // background-subtraction-driven layouts (§5.2.4).
                let parked = unit(splitmix(s ^ 9)) < 0.25;
                let speed = if parked {
                    0.0
                } else {
                    p.speed * speed_scale * (0.6 + 0.8 * unit(splitmix(s ^ 2)))
                };
                // Most objects live for the whole video; a third appear or
                // disappear partway (new content for the encoder and for
                // incremental detection).
                let (birth, death) = match splitmix(s ^ 3) % 3 {
                    0 => (0, spec.frames),
                    1 => (0, spec.frames - spec.frames / 4),
                    _ => (spec.frames / 4, spec.frames),
                };
                objects.push(SceneObject {
                    class,
                    x0: unit(splitmix(s ^ 4)) * (spec.width.saturating_sub(w)) as f64,
                    y0: unit(splitmix(s ^ 5)) * (spec.height.saturating_sub(h)) as f64,
                    vx: speed * angle.cos(),
                    vy: speed * angle.sin() * 0.4, // mostly horizontal motion
                    w: w.max(4),
                    h: h.max(4),
                    birth,
                    death,
                    tex: splitmix(s ^ 6),
                    base_luma: p.base_luma,
                    chroma_u: (96 + (splitmix(s ^ 7) % 64)) as u8,
                    chroma_v: (96 + (splitmix(s ^ 8) % 64)) as u8,
                });
            }
        }
        SyntheticVideo { spec, objects }
    }

    /// The scene specification.
    pub fn spec(&self) -> &SceneSpec {
        &self.spec
    }

    /// Ground-truth bounding boxes on frame `t` as (label, box) pairs.
    pub fn ground_truth(&self, t: u32) -> Vec<(&'static str, Rect)> {
        self.objects
            .iter()
            .filter_map(|o| {
                o.bbox(t, self.spec.width, self.spec.height)
                    .map(|b| (o.class.label(), b))
            })
            .collect()
    }

    /// Ground truth restricted to one class.
    pub fn ground_truth_for(&self, t: u32, label: &str) -> Vec<Rect> {
        self.ground_truth(t)
            .into_iter()
            .filter(|(l, _)| *l == label)
            .map(|(_, b)| b)
            .collect()
    }

    /// Fraction of the frame covered by objects at frame `t` (the paper's
    /// per-frame object coverage, Table 1; sparse < 20% ≤ dense, §5.2.2).
    pub fn coverage(&self, t: u32) -> f64 {
        // Approximate union by summing areas (objects rarely overlap much);
        // clamp at 1.
        let total: u64 = self.ground_truth(t).iter().map(|(_, b)| b.area()).sum();
        (total as f64 / (self.spec.width as f64 * self.spec.height as f64)).min(1.0)
    }

    /// Mean coverage over the whole video.
    pub fn mean_coverage(&self) -> f64 {
        let n = self.spec.frames;
        (0..n).map(|t| self.coverage(t)).sum::<f64>() / n as f64
    }

    /// Distinct labels present anywhere in the video.
    pub fn labels(&self) -> Vec<&'static str> {
        let mut labels: Vec<&'static str> = self.objects.iter().map(|o| o.class.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    fn render_background(&self, frame: &mut Frame, t: u32) {
        let w = frame.width();
        let h = frame.height();
        let pan = (self.spec.camera_pan * t as f64) as i64;
        let seed = self.spec.seed;
        // Luma: low-frequency gradient + a coarse (4×4-cell) texture pattern,
        // shifted by camera pan. Texture repeats every 65px so panning is
        // seamless. The texture is piecewise-constant over 4×4 cells —
        // natural video is smooth at pixel scale, and per-pixel white noise
        // would both defeat compression and mask codec quality effects. The
        // 5-pixel cell period is deliberately coprime with the 8-pixel
        // transform blocks so texture edges rarely coincide with block
        // boundaries.
        let yplane = frame.plane_mut(Plane::Y);
        for y in 0..h as usize {
            let row = y * w as usize;
            for x in 0..w as usize {
                let wx = ((x as i64 + pan).rem_euclid(65) / 5) as u64;
                let wy = ((y % 65) / 5) as u64;
                let grad = (40 + (x * 30) / w as usize + (y * 50) / h as usize) as u64;
                let noise = splitmix(seed ^ (wx << 32) ^ (wy << 8)) % 36;
                yplane[row + x] = (grad + noise + 40) as u8;
            }
        }
        let (cw, ch) = (w / 2, h / 2);
        let uplane = frame.plane_mut(Plane::U);
        for y in 0..ch as usize {
            for x in 0..cw as usize {
                let wx = ((x as i64 + pan / 2).rem_euclid(33) / 3) as u64;
                uplane[y * cw as usize + x] =
                    (118 + splitmix(seed ^ 0xAA ^ (wx << 24) ^ ((y % 33 / 3) as u64)) % 14) as u8;
            }
        }
        let vplane = frame.plane_mut(Plane::V);
        for y in 0..ch as usize {
            for x in 0..cw as usize {
                let wx = ((x as i64 + pan / 2).rem_euclid(33) / 3) as u64;
                vplane[y * cw as usize + x] =
                    (118 + splitmix(seed ^ 0xBB ^ (wx << 24) ^ ((y % 33 / 3) as u64)) % 14) as u8;
            }
        }
    }

    fn render_object(&self, frame: &mut Frame, obj: &SceneObject, rect: Rect) {
        let w = frame.width();
        let yplane = frame.plane_mut(Plane::Y);
        for y in rect.y..rect.bottom() {
            let row = y as usize * w as usize;
            for x in rect.x..rect.right() {
                // Striped texture unique to the object, so motion search has
                // something to lock onto; smooth at pixel scale.
                let local = splitmix(
                    obj.tex ^ (((x - rect.x) / 5) as u64) ^ ((((y - rect.y) / 5) as u64) << 20),
                );
                let stripe = if ((x - rect.x) / 5 + (y - rect.y) / 5).is_multiple_of(2) {
                    25
                } else {
                    0
                };
                let v = obj.base_luma as i32 + stripe + (local % 14) as i32 - 7;
                yplane[row + x as usize] = v.clamp(0, 255) as u8;
            }
        }
        // Chroma: flat per-object colour.
        let crect = Rect::new(
            rect.x / 2,
            rect.y / 2,
            rect.w.div_ceil(2),
            rect.h.div_ceil(2),
        );
        let cw = (w / 2) as usize;
        let uplane = frame.plane_mut(Plane::U);
        for y in crect.y..crect.bottom() {
            let row = y as usize * cw;
            uplane[row + crect.x as usize..row + crect.right() as usize].fill(obj.chroma_u);
        }
        let vplane = frame.plane_mut(Plane::V);
        for y in crect.y..crect.bottom() {
            let row = y as usize * cw;
            vplane[row + crect.x as usize..row + crect.right() as usize].fill(obj.chroma_v);
        }
    }
}

impl FrameSource for SyntheticVideo {
    fn width(&self) -> u32 {
        self.spec.width
    }

    fn height(&self) -> u32 {
        self.spec.height
    }

    fn len(&self) -> u32 {
        self.spec.frames
    }

    fn frame(&self, idx: u32) -> Frame {
        assert!(idx < self.spec.frames, "frame {idx} out of range");
        let mut f = Frame::black(self.spec.width, self.spec.height);
        self.render_background(&mut f, idx);
        for obj in &self.objects {
            if let Some(rect) = obj.bbox(idx, self.spec.width, self.spec.height) {
                self.render_object(&mut f, obj, rect);
            }
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflect_triangle_wave() {
        assert_eq!(reflect(0.0, 10.0), 0.0);
        assert_eq!(reflect(7.0, 10.0), 7.0);
        assert_eq!(reflect(13.0, 10.0), 7.0); // bounced off max
        assert_eq!(reflect(20.0, 10.0), 0.0);
        assert_eq!(reflect(23.0, 10.0), 3.0);
        assert_eq!(reflect(-3.0, 10.0), 3.0); // bounced off zero
        assert_eq!(reflect(5.0, 0.0), 0.0);
    }

    #[test]
    fn rendering_is_deterministic() {
        let v1 = SyntheticVideo::new(SceneSpec::test_scene());
        let v2 = SyntheticVideo::new(SceneSpec::test_scene());
        assert_eq!(v1.frame(17), v2.frame(17));
        assert_eq!(v1.ground_truth(17), v2.ground_truth(17));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticVideo::new(SceneSpec {
            seed: 1,
            ..SceneSpec::test_scene()
        });
        let b = SyntheticVideo::new(SceneSpec {
            seed: 2,
            ..SceneSpec::test_scene()
        });
        assert_ne!(a.frame(0), b.frame(0));
    }

    #[test]
    fn ground_truth_boxes_lie_in_frame() {
        let v = SyntheticVideo::new(SceneSpec::test_scene());
        for t in 0..v.len() {
            for (label, b) in v.ground_truth(t) {
                assert!(!b.is_empty(), "{label} box empty at t={t}");
                assert!(
                    b.right() <= v.width() && b.bottom() <= v.height(),
                    "{label} box {b:?} out of frame at t={t}"
                );
            }
        }
    }

    #[test]
    fn some_objects_move_and_some_may_park() {
        // With several cars, at least one must move over 30 frames (only a
        // quarter of objects are stationary in expectation).
        let v = SyntheticVideo::new(SceneSpec {
            objects: vec![(ObjectClass::Car, 6)],
            frames: 40,
            ..SceneSpec::test_scene()
        });
        let b0 = v.ground_truth_for(0, "car");
        let b30 = v.ground_truth_for(30, "car");
        assert!(!b0.is_empty() && !b30.is_empty());
        let moved = b0.iter().zip(&b30).filter(|(a, b)| a != b).count();
        assert!(moved >= 1, "at least one car should move over 30 frames");
    }

    #[test]
    fn object_sizes_vary_between_instances() {
        let v = SyntheticVideo::new(SceneSpec {
            objects: vec![(ObjectClass::Person, 8)],
            width: 640,
            height: 352,
            ..SceneSpec::test_scene()
        });
        let areas: Vec<u64> = v.ground_truth(0).iter().map(|(_, b)| b.area()).collect();
        let min = areas.iter().min().unwrap();
        let max = areas.iter().max().unwrap();
        assert!(max > min, "instances should differ in size: {areas:?}");
    }

    #[test]
    fn objects_render_visibly() {
        let v = SyntheticVideo::new(SceneSpec {
            objects: vec![(ObjectClass::Bird, 1)],
            ..SceneSpec::test_scene()
        });
        let f = v.frame(5);
        let boxes = v.ground_truth_for(5, "bird");
        if let Some(b) = boxes.first() {
            // Bird base luma 190 stands out from the darker background.
            let cx = b.x + b.w / 2;
            let cy = b.y + b.h / 2;
            let inside = f.sample(Plane::Y, cx, cy);
            assert!(inside > 150, "object pixel {inside} should be bright");
        } else {
            panic!("bird should exist at t=5");
        }
    }

    #[test]
    fn labels_enumerates_classes() {
        let v = SyntheticVideo::new(SceneSpec::test_scene());
        assert_eq!(v.labels(), vec!["car", "person"]);
    }

    #[test]
    fn coverage_scales_with_object_count() {
        let sparse = SyntheticVideo::new(SceneSpec {
            objects: vec![(ObjectClass::Person, 1)],
            ..SceneSpec::test_scene()
        });
        let dense = SyntheticVideo::new(SceneSpec {
            objects: vec![(ObjectClass::Boat, 8)],
            size_scale: 2.0,
            ..SceneSpec::test_scene()
        });
        assert!(sparse.mean_coverage() < dense.mean_coverage());
        assert!(sparse.mean_coverage() < 0.2, "1 person should be sparse");
    }

    #[test]
    #[should_panic(expected = "multiples of 16")]
    fn misaligned_dimensions_rejected() {
        let _ = SyntheticVideo::new(SceneSpec {
            width: 100,
            ..SceneSpec::test_scene()
        });
    }
}
