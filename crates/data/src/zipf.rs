//! Zipfian sampling over frame positions.
//!
//! Workloads 3 and 4 in the paper pick query start frames "according to a
//! Zipfian distribution, so queries are more likely to target frames at the
//! beginning of the video" (§5.3).

use rand::Rng;

/// A Zipf distribution over `{0, 1, …, n-1}` with exponent `s`.
///
/// Sampling uses the precomputed CDF with binary search — O(log n) per draw,
/// exact for any `s >= 0` (s = 0 degenerates to uniform).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution.
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one outcome");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one sample (0-based rank).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose CDF value exceeds u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (n ≥ 1 by construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_biases_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 should beat rank 10");
        assert!(counts[0] > counts[50] * 5, "rank 0 should dwarf rank 50");
        // All mass within range.
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let expected = 5_000.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.15,
                "uniform bin off: {c}"
            );
        }
    }

    #[test]
    fn single_outcome() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
