//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! fine vs coarse granularity on the query path, the regret threshold η,
//! the not-tiling threshold α, and codec knobs (deblocking, motion search)
//! that the cost model's robustness depends on.

use criterion::{criterion_group, criterion_main, Criterion};
use tasm_bench::{bench_dir, micro_partition, micro_storage, BenchVideo};
use tasm_codec::{encode_video, EncoderConfig, TileLayout};
use tasm_core::{partition, run_workload, Granularity, RunQuery, Strategy, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_detect::yolo::SimulatedYolo;
use tasm_index::MemoryIndex;
use tasm_video::{FrameSource, VecFrameSource};

fn scene(frames: u32) -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames,
        ..SceneSpec::test_scene()
    })
}

/// Fine vs coarse tiles on the decode path for the same query.
fn granularity_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/granularity");
    g.sample_size(10);
    for granularity in [Granularity::Fine, Granularity::Coarse] {
        let name = format!("{granularity:?}").to_lowercase();
        let video = scene(30);
        let mut bv = BenchVideo::from_video(video, &format!("abl-gran-{name}"));
        bv.apply_layout(|video, frames| {
            let boxes: Vec<_> = frames
                .clone()
                .flat_map(|f| video.ground_truth_for(f, "car"))
                .collect();
            Some(partition(
                video.width(),
                video.height(),
                &boxes,
                &micro_partition(granularity),
            ))
        });
        g.bench_function(format!("query_{name}"), move |b| {
            b.iter(|| bv.time_select("car"))
        });
    }
    g.finish();
}

/// Workload cost under different regret thresholds η (η=0 re-tiles
/// immediately; η=1 is the paper's default; η=4 is very conservative).
fn eta_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/eta");
    g.sample_size(10);
    let video = scene(60);
    let queries: Vec<RunQuery> = (0..8)
        .map(|i| RunQuery {
            label: "car".into(),
            frames: (i % 2) * 30..(i % 2) * 30 + 30,
        })
        .collect();
    for eta in [0.0, 1.0, 4.0] {
        let video_ref = &video;
        let queries_ref = &queries;
        g.bench_function(format!("eta_{eta}"), move |b| {
            b.iter(|| {
                let cfg = TasmConfig {
                    eta,
                    storage: micro_storage(),
                    partition: micro_partition(Granularity::Fine),
                    // Serial + uncached so the eta comparison measures
                    // decode/retile cost, not cache-hit latency.
                    workers: 1,
                    cache_bytes: 0,
                    ..Default::default()
                };
                let mut tasm = Tasm::open(
                    bench_dir(&format!("abl-eta-{eta}")),
                    Box::new(MemoryIndex::in_memory()),
                    cfg,
                )
                .unwrap();
                tasm.ingest("v", video_ref, 30).unwrap();
                let truth = |f: u32| video_ref.ground_truth(f);
                let mut det = SimulatedYolo::full(1);
                run_workload(
                    &mut tasm,
                    "v",
                    queries_ref,
                    Strategy::IncrementalRegret,
                    &mut det,
                    &truth,
                    None,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

/// Codec knobs: encode cost with and without deblocking / motion search.
/// The cost model assumes decode ∝ pixels; these verify the proportionality
/// constant is robust to configuration.
fn codec_knob_ablation(c: &mut Criterion) {
    let video = scene(30);
    let frames: Vec<_> = (0..30).map(|i| video.frame(i)).collect();
    let src = VecFrameSource::new(frames);
    let layout = TileLayout::untiled(320, 192);

    let mut g = c.benchmark_group("ablation/codec");
    g.sample_size(10);
    for (name, cfg) in [
        ("default", EncoderConfig::default()),
        (
            "no_deblock",
            EncoderConfig {
                deblock: false,
                ..Default::default()
            },
        ),
        (
            "no_motion",
            EncoderConfig {
                search_range: 0,
                ..Default::default()
            },
        ),
        (
            "gop_5",
            EncoderConfig {
                gop_len: 5,
                ..Default::default()
            },
        ),
    ] {
        let src_ref = &src;
        let layout_ref = &layout;
        g.bench_function(format!("encode_{name}"), move |b| {
            b.iter(|| encode_video(src_ref, layout_ref, &cfg, false).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    granularity_ablation,
    eta_ablation,
    codec_knob_ablation
);
criterion_main!(benches);
