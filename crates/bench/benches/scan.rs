//! Criterion benchmarks of the `Scan` access method end to end: untiled vs
//! object-tiled decode for the same query, narrow vs wide time ranges, and
//! CNF predicate evaluation against the index.

use criterion::{criterion_group, criterion_main, Criterion};
use tasm_bench::{micro_partition, BenchVideo};
use tasm_core::{partition, Granularity, LabelPredicate};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_video::FrameSource;

fn prepare(tag: &str, tiled: bool) -> BenchVideo {
    let video = SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames: 60,
        ..SceneSpec::test_scene()
    });
    let mut bv = BenchVideo::from_video(video, tag);
    if tiled {
        bv.apply_layout(|video, frames| {
            let boxes: Vec<_> = frames
                .clone()
                .flat_map(|f| video.ground_truth_for(f, "car"))
                .collect();
            Some(partition(
                video.width(),
                video.height(),
                &boxes,
                &micro_partition(Granularity::Fine),
            ))
        });
    }
    bv
}

fn scan_benches(c: &mut Criterion) {
    let mut untiled = prepare("scan-bench-untiled", false);
    let mut tiled = prepare("scan-bench-tiled", true);

    let mut g = c.benchmark_group("scan");
    g.sample_size(20);
    g.bench_function("untiled_full_video", |b| {
        b.iter(|| {
            untiled
                .tasm
                .scan("v", &LabelPredicate::label("car"), 0..60)
                .unwrap()
        })
    });
    g.bench_function("tiled_full_video", |b| {
        b.iter(|| {
            tiled
                .tasm
                .scan("v", &LabelPredicate::label("car"), 0..60)
                .unwrap()
        })
    });
    g.bench_function("tiled_one_second", |b| {
        b.iter(|| {
            tiled
                .tasm
                .scan("v", &LabelPredicate::label("car"), 30..60)
                .unwrap()
        })
    });
    g.bench_function("tiled_disjunction", |b| {
        b.iter(|| {
            tiled
                .tasm
                .scan("v", &LabelPredicate::any_of(&["car", "person"]), 0..60)
                .unwrap()
        })
    });
    g.bench_function("tiled_conjunction", |b| {
        b.iter(|| {
            tiled
                .tasm
                .scan("v", &LabelPredicate::label("car").and(&["person"]), 0..60)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, scan_benches);
criterion_main!(benches);
