//! Criterion benchmarks of the `Scan` access method end to end: untiled vs
//! object-tiled decode for the same query, narrow vs wide time ranges, CNF
//! predicate evaluation against the index, and the execution pipeline's
//! scaling axes — worker count and decoded-GOP cache warmth.

use criterion::{criterion_group, criterion_main, Criterion};
use tasm_bench::{micro_partition, BenchVideo};
use tasm_core::{partition, Granularity, LabelPredicate};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_video::FrameSource;

fn prepare(tag: &str, tiled: bool) -> BenchVideo {
    // Serial + uncached, like micro_config(): the untiled-vs-tiled groups
    // measure tiling benefit alone, not multicore speedup.
    prepare_exec(tag, tiled, 1, 0)
}

/// Like `prepare`, with explicit pipeline settings (worker count and
/// decoded-GOP cache budget).
fn prepare_exec(tag: &str, tiled: bool, workers: usize, cache_bytes: u64) -> BenchVideo {
    let video = SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames: 60,
        ..SceneSpec::test_scene()
    });
    let mut bv = BenchVideo::from_video_exec(video, tag, workers, cache_bytes);
    if tiled {
        bv.apply_layout(|video, frames| {
            let boxes: Vec<_> = frames
                .clone()
                .flat_map(|f| video.ground_truth_for(f, "car"))
                .collect();
            Some(partition(
                video.width(),
                video.height(),
                &boxes,
                &micro_partition(Granularity::Fine),
            ))
        });
    }
    bv
}

fn scan_benches(c: &mut Criterion) {
    let untiled = prepare("scan-bench-untiled", false);
    let tiled = prepare("scan-bench-tiled", true);

    let mut g = c.benchmark_group("scan");
    g.sample_size(20);
    g.bench_function("untiled_full_video", |b| {
        b.iter(|| {
            untiled
                .tasm
                .scan("v", &LabelPredicate::label("car"), 0..60)
                .unwrap()
        })
    });
    g.bench_function("tiled_full_video", |b| {
        b.iter(|| {
            tiled
                .tasm
                .scan("v", &LabelPredicate::label("car"), 0..60)
                .unwrap()
        })
    });
    g.bench_function("tiled_one_second", |b| {
        b.iter(|| {
            tiled
                .tasm
                .scan("v", &LabelPredicate::label("car"), 30..60)
                .unwrap()
        })
    });
    g.bench_function("tiled_disjunction", |b| {
        b.iter(|| {
            tiled
                .tasm
                .scan("v", &LabelPredicate::any_of(&["car", "person"]), 0..60)
                .unwrap()
        })
    });
    g.bench_function("tiled_conjunction", |b| {
        b.iter(|| {
            tiled
                .tasm
                .scan("v", &LabelPredicate::label("car").and(&["person"]), 0..60)
                .unwrap()
        })
    });
    g.finish();
}

/// The pipeline's scaling axes: serial vs multi-worker decode on a cold
/// cache, and cold vs warm decoded-GOP cache at a fixed worker count. The
/// warm variants are what repeated-query workloads (Figures 8/9) hit.
fn pipeline_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan/pipeline");
    g.sample_size(10);

    let serial = prepare_exec("scan-pipe-serial", true, 1, 0);
    g.bench_function("workers_1_cold", |b| {
        b.iter(|| {
            serial
                .tasm
                .scan("v", &LabelPredicate::label("car"), 0..60)
                .unwrap()
        })
    });
    let auto = prepare_exec("scan-pipe-auto", true, 0, 0);
    g.bench_function("workers_auto_cold", |b| {
        b.iter(|| {
            auto.tasm
                .scan("v", &LabelPredicate::label("car"), 0..60)
                .unwrap()
        })
    });

    let warm = prepare_exec("scan-pipe-warm", true, 0, 256 << 20);
    // Populate the cache once, then measure steady-state warm scans.
    warm.tasm
        .scan("v", &LabelPredicate::label("car"), 0..60)
        .unwrap();
    g.bench_function("workers_auto_warm", |b| {
        b.iter(|| {
            warm.tasm
                .scan("v", &LabelPredicate::label("car"), 0..60)
                .unwrap()
        })
    });

    let warm_serial = prepare_exec("scan-pipe-warm-serial", true, 1, 256 << 20);
    warm_serial
        .tasm
        .scan("v", &LabelPredicate::label("car"), 0..60)
        .unwrap();
    g.bench_function("workers_1_warm", |b| {
        b.iter(|| {
            warm_serial
                .tasm
                .scan("v", &LabelPredicate::label("car"), 0..60)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, scan_benches, pipeline_benches);
criterion_main!(benches);
