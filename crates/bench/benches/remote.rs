//! Criterion benchmarks of the networked serving layer: loopback loadgen
//! throughput at connection-pool sizes 1 / 4 / 16 on both serving engines
//! (the nonblocking reactor and the thread-per-connection baseline), with
//! the submit→complete latency percentiles, next to an in-process
//! `QueryService` run of the same workload so the wire + session overhead
//! is directly visible. The large-fan-in sweep (16/256/1k connections,
//! 10k behind `TASM_REACTOR_BENCH_10K=1`) lives in the `reactor_bench`
//! binary, which also records thread counts and RSS to
//! `results/BENCH_reactor.json`.
//!
//! The workload mirrors `benches/service.rs`: overlapping windows over one
//! video so the decoded-GOP cache and shared-scan dedup carry most
//! repeats, leaving the serving layer itself as the measured quantity.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tasm_bench::{bench_dir, micro_partition, scaled_count};
use tasm_client::{LoadGen, LoadGenConfig, LoadReport};
use tasm_core::{Granularity, LabelPredicate, Query, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_server::{ServeEngine, ServerConfig, TasmServer};
use tasm_service::{QueryRequest, QueryService, ServiceConfig, ServiceStats, Shutdown};
use tasm_video::FrameSource;

const FRAMES: u32 = 60;
const WINDOW: u32 = 12;

fn scene() -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 256,
        height: 160,
        frames: FRAMES,
        seed: 23,
        ..SceneSpec::test_scene()
    })
}

fn remote_config() -> TasmConfig {
    TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        partition: micro_partition(Granularity::Fine),
        workers: 1, // decode threads per query; concurrency comes from the pool
        cache_bytes: 128 << 20,
        ..Default::default()
    }
}

fn populate(tasm: &Tasm, video: &SyntheticVideo) {
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).expect("metadata");
        }
        tasm.mark_processed("v", f).expect("mark");
    }
}

fn prepare_store(video: &SyntheticVideo) -> PathBuf {
    let dir = bench_dir("remote");
    let tasm =
        Tasm::open(&dir, Box::new(MemoryIndex::in_memory()), remote_config()).expect("open store");
    tasm.ingest("v", video, 30).expect("ingest");
    populate(&tasm, video);
    tasm.kqko_retile_all("v", &["car".to_string()])
        .expect("pre-tile");
    dir
}

fn warm_tasm(dir: &PathBuf, video: &SyntheticVideo) -> Arc<Tasm> {
    let tasm =
        Tasm::open(dir, Box::new(MemoryIndex::in_memory()), remote_config()).expect("open store");
    tasm.attach("v").expect("attach");
    populate(&tasm, video);
    Arc::new(tasm)
}

fn start_server(tasm: Arc<Tasm>, workers: usize, engine: ServeEngine) -> TasmServer {
    TasmServer::bind(
        tasm,
        ServiceConfig {
            workers,
            queue_depth: 64,
            ..Default::default()
        },
        ServerConfig {
            engine,
            max_connections: 64,
            max_inflight: 8,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback server")
}

fn engine_tag(engine: ServeEngine) -> &'static str {
    match engine {
        ServeEngine::Reactor => "reactor",
        ServeEngine::Threads => "threads",
    }
}

fn loadgen(requests: u64, connections: usize) -> LoadGen {
    LoadGen::new(LoadGenConfig {
        connections,
        requests,
        video: "v".to_string(),
        query: Query::new(LabelPredicate::label("car")),
        window: WINDOW,
        frames: FRAMES,
        busy_backoff: Duration::from_millis(1),
        reconnect_attempts: 0,
    })
}

/// The same sliding-window workload submitted straight to a
/// `QueryService`, for the in-process baseline.
fn run_in_process(tasm: &Arc<Tasm>, requests: u64, workers: usize) -> ServiceStats {
    let service = QueryService::start(
        Arc::clone(tasm),
        ServiceConfig {
            workers,
            queue_depth: 64,
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..requests)
        .map(|seq| {
            let window = WINDOW.min(FRAMES);
            let span = (FRAMES - window) as u64;
            let start = ((seq * 37) % (span + 1)) as u32;
            service
                .submit(QueryRequest::scan(
                    "v",
                    LabelPredicate::label("car"),
                    start..start + window,
                ))
                .expect("submit")
        })
        .collect();
    for h in handles {
        h.wait().expect("query");
    }
    service.shutdown(Shutdown::Drain).stats
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn remote_benches(c: &mut Criterion) {
    let video = scene();
    let dir = prepare_store(&video);
    let requests = scaled_count(48) as u64;

    let mut g = c.benchmark_group("remote");
    g.sample_size(10);
    for engine in [ServeEngine::Reactor, ServeEngine::Threads] {
        for connections in [1usize, 4, 16] {
            // One warm server per pool size; the timed quantity is a whole
            // loadgen run against it (connect, query stream, goodbye).
            let server = start_server(warm_tasm(&dir, &video), connections, engine);
            let addr = server.local_addr();
            let gen = loadgen(requests, connections);
            g.bench_function(format!("loadgen_{}_c{connections}", engine_tag(engine)), |b| {
                b.iter(|| gen.run(addr).expect("loadgen run"))
            });
            server.shutdown();
        }
    }
    g.finish();

    // Summary: remote vs. in-process on identical work, one untimed
    // verification pass per configuration.
    eprintln!("\nremote serving summary ({requests} sliding-window queries):");
    eprintln!("  config               queries/s   p50 ms   p95 ms   p99 ms   busy");
    for engine in [ServeEngine::Reactor, ServeEngine::Threads] {
        for connections in [1usize, 4, 16] {
            let server = start_server(warm_tasm(&dir, &video), connections, engine);
            let addr = server.local_addr();
            // Warm pass, then the measured pass.
            loadgen(requests, connections).run(addr).expect("warm pass");
            let report: LoadReport = loadgen(requests, connections)
                .run(addr)
                .expect("measured pass");
            let stats = server.shutdown().service.stats;
            let tag = format!("{}_c{connections}", engine_tag(engine));
            eprintln!(
                "  remote_{tag:<12} {:>8.1}   {:>6} {:>8} {:>8}   {:>4}",
                report.throughput(),
                fmt_ms(report.latency.p50()),
                fmt_ms(report.latency.p95()),
                fmt_ms(report.latency.p99()),
                report.busy,
            );
            eprintln!(
                "   └ server            {:>8}   {:>6} {:>8} {:>8}      -",
                "-",
                fmt_ms(stats.latency.p50()),
                fmt_ms(stats.latency.p95()),
                fmt_ms(stats.latency.p99()),
            );
        }
    }
    for workers in [1usize, 4, 16] {
        let tasm = warm_tasm(&dir, &video);
        run_in_process(&tasm, requests, workers); // warm
        let t0 = Instant::now();
        let stats = run_in_process(&tasm, requests, workers);
        let dt = t0.elapsed().as_secs_f64();
        eprintln!(
            "  inproc_c{workers:<2}    {:>8.1}   {:>6} {:>8} {:>8}      -",
            requests as f64 / dt.max(1e-9),
            fmt_ms(stats.latency.p50()),
            fmt_ms(stats.latency.p95()),
            fmt_ms(stats.latency.p99()),
        );
    }
}

criterion_group!(benches, remote_benches);
criterion_main!(benches);
