//! Criterion benchmarks of the concurrent query service: scan throughput
//! over a Zipf-skewed *overlapping* workload at concurrency 1 / 4 / 16,
//! cold cache vs. warm cache.
//!
//! The Zipf bias toward early start frames makes concurrent queries target
//! the same GOPs, so this is the workload shape where shared-scan dedup and
//! the decoded-GOP cache matter: at higher concurrency, overlapping queries
//! join each other's in-flight decodes instead of repeating them. A summary
//! table (queries/s, cache hit rate, shared-scan join rate per
//! configuration) is printed after the timed runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use tasm_bench::{bench_dir, micro_partition, scaled_count};
use tasm_core::{Granularity, LabelPredicate, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo, Zipf};
use tasm_index::MemoryIndex;
use tasm_service::{QueryRequest, QueryService, ServiceConfig, ServiceStats, Shutdown};
use tasm_video::FrameSource;

const FRAMES: u32 = 60;
const WINDOW: u32 = 12;

fn scene() -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 256,
        height: 160,
        frames: FRAMES,
        seed: 17,
        ..SceneSpec::test_scene()
    })
}

fn service_config(tag: &str) -> TasmConfig {
    let _ = tag;
    TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        partition: micro_partition(Granularity::Fine),
        workers: 1, // decode threads per query; concurrency comes from the service
        cache_bytes: 128 << 20,
        ..Default::default()
    }
}

/// Ingests the bench video once; later instances attach to the same store
/// (no re-encode), so a "cold" run means a cold decoded-GOP cache, not a
/// fresh encode.
fn prepare_store(video: &SyntheticVideo) -> PathBuf {
    let dir = bench_dir("service");
    let tasm = Tasm::open(
        &dir,
        Box::new(MemoryIndex::in_memory()),
        service_config("prepare"),
    )
    .expect("open store");
    tasm.ingest("v", video, 30).expect("ingest");
    populate(&tasm, video);
    tasm.kqko_retile_all("v", &["car".to_string()])
        .expect("pre-tile");
    dir
}

fn populate(tasm: &Tasm, video: &SyntheticVideo) {
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).expect("metadata");
        }
        tasm.mark_processed("v", f).expect("mark");
    }
}

/// A fresh `Tasm` over the prepared store: attached manifest, repopulated
/// in-memory index, cold decoded-GOP cache.
fn cold_tasm(dir: &PathBuf, video: &SyntheticVideo) -> Arc<Tasm> {
    let tasm = Tasm::open(
        dir,
        Box::new(MemoryIndex::in_memory()),
        service_config("cold"),
    )
    .expect("open store");
    tasm.attach("v").expect("attach");
    populate(&tasm, video);
    Arc::new(tasm)
}

/// Zipf-skewed overlapping workload: start frames biased toward the
/// beginning of the video (the paper's Workload 3 shape), alternating
/// car/person queries over `WINDOW`-frame windows.
fn zipf_queries(n: usize) -> Vec<QueryRequest> {
    let zipf = Zipf::new((FRAMES - WINDOW) as usize, 1.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    (0..n)
        .map(|i| {
            let start = zipf.sample(&mut rng) as u32;
            QueryRequest::scan(
                "v",
                LabelPredicate::label(if i % 4 == 3 { "person" } else { "car" }),
                start..start + WINDOW,
            )
        })
        .collect()
}

use rand::SeedableRng;

/// Drives the whole workload through a service at the given concurrency and
/// returns the final stats (the timed quantity is the caller's concern).
fn run_workload(tasm: &Arc<Tasm>, queries: &[QueryRequest], concurrency: usize) -> ServiceStats {
    let service = QueryService::start(
        Arc::clone(tasm),
        ServiceConfig {
            workers: concurrency,
            queue_depth: 64,
            ..Default::default()
        },
    );
    let handles: Vec<_> = queries
        .iter()
        .map(|q| service.submit(q.clone()).expect("submit"))
        .collect();
    for h in handles {
        h.wait().expect("query");
    }
    service.shutdown(Shutdown::Drain).stats
}

fn service_benches(c: &mut Criterion) {
    let video = scene();
    let dir = prepare_store(&video);
    let queries = zipf_queries(scaled_count(48));

    let mut g = c.benchmark_group("service");
    g.sample_size(10);

    for concurrency in [1usize, 4, 16] {
        // Cold: a fresh decoded-GOP cache per iteration.
        g.bench_function(format!("zipf_cold_c{concurrency}"), |b| {
            b.iter_batched(
                || cold_tasm(&dir, &video),
                |tasm| run_workload(&tasm, &queries, concurrency),
                BatchSize::PerIteration,
            )
        });
        // Warm: one long-lived instance, cache warmed by a first pass.
        let tasm = cold_tasm(&dir, &video);
        run_workload(&tasm, &queries, concurrency);
        g.bench_function(format!("zipf_warm_c{concurrency}"), |b| {
            b.iter(|| run_workload(&tasm, &queries, concurrency))
        });
    }
    g.finish();

    // Summary table: throughput and reuse per configuration (one untimed
    // verification pass each, cold then warm).
    eprintln!(
        "\nservice workload summary ({} Zipf queries):",
        queries.len()
    );
    eprintln!("  config         queries/s   cache-hit   join-rate   joined/owned");
    for concurrency in [1usize, 4, 16] {
        for warm in [false, true] {
            let tasm = cold_tasm(&dir, &video);
            if warm {
                run_workload(&tasm, &queries, concurrency);
            }
            let t0 = Instant::now();
            let stats = run_workload(&tasm, &queries, concurrency);
            let dt = t0.elapsed().as_secs_f64();
            eprintln!(
                "  {}_c{concurrency:<2}      {:>8.1}   {:>6.1}%    {:>6.1}%   {:>6}/{}",
                if warm { "warm" } else { "cold" },
                queries.len() as f64 / dt,
                stats.cache_hit_rate() * 100.0,
                stats.shared.join_rate() * 100.0,
                stats.shared.joined,
                stats.shared.owned,
            );
        }
    }
}

criterion_group!(benches, service_benches);
criterion_main!(benches);
