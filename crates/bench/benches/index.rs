//! Criterion microbenchmarks of the semantic index: insert throughput,
//! clustered range scans, and label skip-scans, for both the in-memory and
//! persistent (paged B+tree) backends.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tasm_index::{MemoryIndex, PersistentIndex, SemanticIndex};
use tasm_video::Rect;

fn populate(idx: &mut dyn SemanticIndex, frames: u32, boxes_per_frame: u32) {
    for f in 0..frames {
        for i in 0..boxes_per_frame {
            let label = if i % 2 == 0 { "car" } else { "person" };
            idx.add_metadata(0, label, f, Rect::new(10 * i, 20, 48, 32))
                .unwrap();
        }
    }
}

fn insert_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("index/insert");
    g.sample_size(10);
    g.throughput(Throughput::Elements(3000 * 4));
    g.bench_function("memory_12k_detections", |b| {
        b.iter_batched(
            MemoryIndex::in_memory,
            |mut idx| populate(&mut idx, 3000, 4),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("persistent_12k_detections", |b| {
        let dir = std::env::temp_dir().join(format!("tasm-bench-idx-{}", std::process::id()));
        b.iter_batched(
            || {
                std::fs::remove_dir_all(&dir).ok();
                PersistentIndex::open(&dir).unwrap()
            },
            |mut idx| {
                populate(&mut idx, 3000, 4);
                idx.flush().unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn query_benches(c: &mut Criterion) {
    let mut idx = MemoryIndex::in_memory();
    populate(&mut idx, 10_000, 4);

    let mut g = c.benchmark_group("index/query");
    g.bench_function("range_100_frames", |b| {
        b.iter(|| idx.query(0, "car", 5000..5100).unwrap())
    });
    g.bench_function("range_all_frames", |b| {
        b.iter(|| idx.query(0, "car", 0..10_000).unwrap())
    });
    g.bench_function("labels_skip_scan", |b| b.iter(|| idx.labels(0).unwrap()));
    g.bench_function("query_all_labels_100_frames", |b| {
        b.iter(|| idx.query_all(0, 5000..5100).unwrap())
    });
    g.bench_function("processed_count", |b| {
        b.iter(|| idx.processed_count(0, 0..10_000).unwrap())
    });
    g.finish();
}

criterion_group!(benches, insert_benches, query_benches);
criterion_main!(benches);
