//! Criterion benchmarks of the spatiotemporal query planner: the same
//! Zipf-skewed workload executed as full-frame scans vs. ROI-pruned,
//! stride-sampled, limited, and aggregate (`Exists`) queries.
//!
//! The planner prunes the decode plan against the semantic index before any
//! byte is read, so the interesting quantity is how much decode work each
//! predicate removes. Execution is pinned serial and uncached: every
//! iteration pays the true decode cost of its plan, and the speedups below
//! are pure planning wins, not cache or multicore effects. A summary table
//! (decoded samples, GOPs decoded/skipped, tiles pruned per shape) is
//! printed after the timed runs.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use tasm_bench::{bench_dir, micro_partition, scaled_count};
use tasm_core::{Granularity, LabelPredicate, Query, QueryMode, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo, Zipf};
use tasm_index::MemoryIndex;
use tasm_video::{FrameSource, Rect};

const FRAMES: u32 = 60;
const WINDOW: u32 = 20;

fn prepare() -> (Tasm, SyntheticVideo) {
    let video = SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames: FRAMES,
        seed: 21,
        ..SceneSpec::test_scene()
    });
    // Serial + uncached (each iteration measures its plan's true decode
    // work), with short GOPs so temporal pruning has GOPs to skip.
    let tasm = Tasm::open(
        bench_dir("query-bench"),
        Box::new(MemoryIndex::in_memory()),
        TasmConfig {
            storage: StorageConfig {
                gop_len: 6,
                sot_frames: 30,
                ..Default::default()
            },
            partition: micro_partition(Granularity::Fine),
            workers: 1,
            cache_bytes: 0,
            ..Default::default()
        },
    )
    .expect("open tasm");
    tasm.ingest("v", &video, 30).expect("ingest");
    for f in 0..video.len() {
        for (label, bbox) in video.ground_truth(f) {
            tasm.add_metadata("v", label, f, bbox).expect("metadata");
        }
        tasm.mark_processed("v", f).expect("mark");
    }
    // Object-tiled layout, so spatial pruning has tiles to prune.
    let all: Vec<String> = vec!["car".to_string(), "person".to_string()];
    tasm.kqko_retile_all("v", &all).expect("retile");
    (tasm, video)
}

/// Zipf-skewed window starts (the paper's Workload 3 shape).
fn zipf_windows(n: usize) -> Vec<std::ops::Range<u32>> {
    let zipf = Zipf::new((FRAMES - WINDOW) as usize, 1.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    (0..n)
        .map(|_| {
            let start = zipf.sample(&mut rng) as u32;
            start..start + WINDOW
        })
        .collect()
}

/// The query shapes under comparison. The ROI is the center of the frame,
/// covering under 25% of its area — most trajectories cross it somewhere,
/// so it prunes tiles without degenerating to an empty answer.
fn shapes(width: u32, height: u32) -> Vec<(&'static str, Query)> {
    let base = || Query::new(LabelPredicate::label("car"));
    let roi = Rect::new(width / 4, height / 4, width / 2 - 8, height / 2 - 8);
    vec![
        ("full_scan", base()),
        ("roi_quarter", base().roi(roi)),
        ("stride_5", base().stride(5)),
        ("limit_4", base().limit(4)),
        ("exists", base().mode(QueryMode::Exists)),
    ]
}

fn run_shape(tasm: &Tasm, windows: &[std::ops::Range<u32>], shape: &Query) -> (u64, u64, u64, u64) {
    let (mut samples, mut gops, mut skipped, mut pruned) = (0u64, 0u64, 0u64, 0u64);
    for w in windows {
        let r = tasm
            .query("v", &shape.clone().frames(w.clone()))
            .expect("query");
        samples += r.stats.samples_decoded;
        gops += r.plan.gops_planned;
        skipped += r.plan.gops_skipped;
        pruned += r.plan.tiles_pruned;
    }
    (samples, gops, skipped, pruned)
}

fn query_benches(c: &mut Criterion) {
    let (tasm, video) = prepare();
    let windows = zipf_windows(scaled_count(24));
    let shapes = shapes(video.width(), video.height());

    let mut g = c.benchmark_group("query");
    g.sample_size(10);
    for (name, shape) in &shapes {
        g.bench_function(*name, |b| b.iter(|| run_shape(&tasm, &windows, shape)));
    }
    g.finish();

    eprintln!(
        "\nquery planner summary ({} Zipf windows of {WINDOW} frames):",
        windows.len()
    );
    eprintln!("  shape          samples-decoded   gops-decoded   gops-skipped   tiles-pruned");
    let rows: Vec<_> = shapes
        .iter()
        .map(|(name, shape)| (*name, run_shape(&tasm, &windows, shape)))
        .collect();
    let full = rows[0].1 .0.max(1);
    for (name, (samples, gops, skipped, pruned)) in rows {
        eprintln!(
            "  {name:<12} {samples:>12} ({:>4.0}%)   {gops:>9}   {skipped:>9}   {pruned:>9}",
            100.0 * samples as f64 / full as f64,
        );
    }
}

criterion_group!(benches, query_benches);
criterion_main!(benches);
