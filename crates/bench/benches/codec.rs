//! Criterion microbenchmarks of the codec substrate: encode and decode
//! throughput, tiled vs untiled, and homomorphic stitching overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tasm_codec::{encode_video, EncoderConfig, StitchedVideo, TileLayout};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_video::{FrameSource, VecFrameSource};

fn scene(frames: u32) -> VecFrameSource {
    let v = SyntheticVideo::new(SceneSpec {
        width: 320,
        height: 192,
        frames,
        ..SceneSpec::test_scene()
    });
    VecFrameSource::new((0..frames).map(|i| v.frame(i)).collect())
}

fn encode_benches(c: &mut Criterion) {
    let src = scene(30);
    let samples = 30u64 * 320 * 192 * 3 / 2;
    let cfg = EncoderConfig {
        gop_len: 30,
        ..Default::default()
    };

    let mut g = c.benchmark_group("codec/encode");
    g.sample_size(10);
    g.throughput(Throughput::Elements(samples));
    g.bench_function("untiled_30f", |b| {
        let layout = TileLayout::untiled(320, 192);
        b.iter(|| encode_video(&src, &layout, &cfg, false).unwrap())
    });
    g.bench_function("tiled_2x2_30f", |b| {
        let layout = TileLayout::uniform(320, 192, 2, 2).unwrap();
        b.iter(|| encode_video(&src, &layout, &cfg, false).unwrap())
    });
    g.bench_function("tiled_2x2_parallel_30f", |b| {
        let layout = TileLayout::uniform(320, 192, 2, 2).unwrap();
        b.iter(|| encode_video(&src, &layout, &cfg, true).unwrap())
    });
    g.bench_function("no_motion_search_30f", |b| {
        let layout = TileLayout::untiled(320, 192);
        let cfg = EncoderConfig {
            search_range: 0,
            ..cfg
        };
        b.iter(|| encode_video(&src, &layout, &cfg, false).unwrap())
    });
    g.finish();
}

fn decode_benches(c: &mut Criterion) {
    let src = scene(30);
    let cfg = EncoderConfig {
        gop_len: 30,
        ..Default::default()
    };
    let untiled = {
        let layout = TileLayout::untiled(320, 192);
        encode_video(&src, &layout, &cfg, false)
            .unwrap()
            .0
            .remove(0)
    };
    let layout4 = TileLayout::uniform(320, 192, 2, 2).unwrap();
    let tiled = encode_video(&src, &layout4, &cfg, false).unwrap().0;

    let mut g = c.benchmark_group("codec/decode");
    g.sample_size(20);
    g.throughput(Throughput::Elements(30u64 * 320 * 192 * 3 / 2));
    g.bench_function("full_gop_untiled", |b| {
        b.iter(|| untiled.decode_all().unwrap())
    });
    g.bench_function("single_tile_of_4", |b| {
        b.iter(|| tiled[0].decode_all().unwrap())
    });
    g.bench_function("range_with_warmup", |b| {
        b.iter(|| untiled.decode_range(20..30).unwrap())
    });
    g.finish();
}

fn stitch_benches(c: &mut Criterion) {
    let src = scene(30);
    let cfg = EncoderConfig {
        gop_len: 30,
        ..Default::default()
    };
    let layout = TileLayout::uniform(320, 192, 2, 2).unwrap();
    let tiles = encode_video(&src, &layout, &cfg, false).unwrap().0;

    let mut g = c.benchmark_group("codec/stitch");
    g.sample_size(20);
    g.bench_function("stitch_metadata_only", |b| {
        b.iter_batched(
            || (layout.clone(), tiles.clone()),
            |(l, t)| StitchedVideo::stitch(l, t).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let stitched = StitchedVideo::stitch(layout.clone(), tiles).unwrap();
    g.bench_function("decode_stitched_30f", |b| {
        b.iter(|| stitched.decode_all().unwrap())
    });
    g.bench_function("serialize_roundtrip", |b| {
        b.iter(|| StitchedVideo::from_bytes(&stitched.to_bytes()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, encode_benches, decode_benches, stitch_benches);
criterion_main!(benches);
