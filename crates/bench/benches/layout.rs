//! Criterion microbenchmarks of layout generation and geometry: the
//! partitioner (fine/coarse), uniform grids, tile intersection, and the
//! cost-model estimator — the operations on TASM's query-time hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use tasm_codec::TileLayout;
use tasm_core::{estimate_work, partition, Granularity, PartitionConfig};
use tasm_index::Detection;
use tasm_video::Rect;

fn boxes(n: u32) -> Vec<Rect> {
    (0..n)
        .map(|i| {
            let x = (i * 97) % 560;
            let y = (i * 61) % 300;
            Rect::new(x, y, 48 + (i % 3) * 16, 32 + (i % 2) * 16)
        })
        .collect()
}

fn partition_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("layout/partition");
    for n in [4u32, 32, 256] {
        let bs = boxes(n);
        let fine = PartitionConfig {
            granularity: Granularity::Fine,
            ..Default::default()
        };
        let coarse = PartitionConfig {
            granularity: Granularity::Coarse,
            ..Default::default()
        };
        g.bench_function(format!("fine_{n}_boxes"), |b| {
            b.iter(|| partition(640, 352, &bs, &fine))
        });
        g.bench_function(format!("coarse_{n}_boxes"), |b| {
            b.iter(|| partition(640, 352, &bs, &coarse))
        });
    }
    g.bench_function("uniform_5x5", |b| {
        b.iter(|| TileLayout::uniform(640, 352, 5, 5).unwrap())
    });
    g.finish();
}

fn geometry_benches(c: &mut Criterion) {
    let layout = partition(640, 352, &boxes(32), &PartitionConfig::default());
    let query = Rect::new(200, 100, 64, 48);

    let mut g = c.benchmark_group("layout/geometry");
    g.bench_function("tiles_intersecting", |b| {
        b.iter(|| layout.tiles_intersecting(&query))
    });
    g.bench_function("boundary_intersects", |b| {
        b.iter(|| layout.boundary_intersects(&query))
    });
    g.bench_function("covered_area", |b| b.iter(|| layout.covered_area(&query)));
    g.finish();
}

fn cost_benches(c: &mut Criterion) {
    let layout = partition(640, 352, &boxes(32), &PartitionConfig::default());
    let dets: Vec<Detection> = boxes(32)
        .into_iter()
        .enumerate()
        .map(|(i, bbox)| Detection {
            frame: (i as u32) % 30,
            bbox,
        })
        .collect();

    let mut g = c.benchmark_group("layout/cost");
    g.bench_function("estimate_work_32_dets", |b| {
        b.iter(|| estimate_work(&layout, &dets, 0..30, 0, 30))
    });
    g.finish();
}

criterion_group!(benches, partition_benches, geometry_benches, cost_benches);
criterion_main!(benches);
