//! Summary statistics used throughout the evaluation: the paper reports
//! medians with interquartile ranges (IQR) for every bar chart.

use serde::{Deserialize, Serialize};

/// Median of a sample (NaN-free input expected).
///
/// # Panics
/// Panics on empty input.
pub fn median(xs: &[f64]) -> f64 {
    quartiles(xs).1
}

/// Arithmetic mean.
///
/// # Panics
/// Panics on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty sample");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// `(q1, median, q3)` using linear interpolation between order statistics.
///
/// # Panics
/// Panics on empty input.
pub fn quartiles(xs: &[f64]) -> (f64, f64, f64) {
    assert!(!xs.is_empty(), "quartiles of empty sample");
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    (
        percentile(&s, 0.25),
        percentile(&s, 0.5),
        percentile(&s, 0.75),
    )
}

/// Interpolated percentile of a **sorted** sample, `p` in [0, 1].
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let idx = p * (n - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A median-with-IQR summary, the unit the paper's bar charts report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn of(xs: &[f64]) -> Summary {
        let (q1, median, q3) = quartiles(xs);
        Summary {
            q1,
            median,
            q3,
            n: xs.len(),
        }
    }

    /// Renders as `median [q1, q3]` with the given precision.
    pub fn display(&self, decimals: usize) -> String {
        format!(
            "{:.d$} [{:.d$}, {:.d$}]",
            self.median,
            self.q1,
            self.q3,
            d = decimals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn quartiles_interpolate() {
        let (q1, m, q3) = quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(q1, 2.0);
        assert_eq!(m, 3.0);
        assert_eq!(q3, 4.0);
    }

    #[test]
    fn mean_simple() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn summary_display() {
        let s = Summary::of(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.n, 4);
        assert!(s.q1 <= s.median && s.median <= s.q3);
        assert!(s.display(1).contains('['));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = median(&[]);
    }
}
