//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one table or figure (see DESIGN.md's
//! per-experiment index); this library holds the common machinery: building
//! corpus videos, ingesting them under a fixed layout, timing object
//! queries, and summarizing with the paper's median/IQR statistics.
//!
//! Scale: experiment sizes are controlled by `TASM_BENCH_SCALE` (default
//! 1.0). The defaults are chosen so every figure regenerates in minutes on a
//! laptop CPU; the *shapes* (orderings, crossovers, rough factors) are the
//! reproduction target, not absolute GPU-decode milliseconds.

use std::path::PathBuf;
use tasm_core::{
    partition, Granularity, LabelPredicate, PartitionConfig, StorageConfig, Tasm, TasmConfig,
};
use tasm_data::{Dataset, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_video::FrameSource;

pub mod stats;

pub use stats::{mean, median, quartiles, Summary};

/// Experiment scale factor from `TASM_BENCH_SCALE` (e.g. `0.5` to halve
/// video durations for a quick pass).
pub fn scale() -> f64 {
    std::env::var("TASM_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s: &f64| s > 0.0)
        .unwrap_or(1.0)
}

/// Scaled duration in seconds (at least 1).
pub fn scaled_secs(base: u32) -> u32 {
    ((base as f64 * scale()).round() as u32).max(1)
}

/// Scaled count (at least 1).
pub fn scaled_count(base: usize) -> usize {
    ((base as f64 * scale()).round() as usize).max(1)
}

/// A fresh store directory under the system temp dir.
pub fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tasm-bench-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Directory where experiment outputs (JSON) are written.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a serializable result to `results/<name>.json`.
pub fn write_result<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_vec_pretty(value).expect("serialize"))
        .expect("write result");
    eprintln!("[results written to {}]", path.display());
}

/// The storage configuration used by the microbenchmarks: 1-second GOPs and
/// SOTs at 30 fps, QP 28 (the paper's defaults).
pub fn micro_storage() -> StorageConfig {
    StorageConfig {
        qp: 28,
        gop_len: 30,
        sot_frames: 30,
        search_range: 7,
        deblock: true,
        rate: tasm_codec::RateControl::ConstantQp,
        parallel_encode: true,
        // Figure reproductions measure DCT decode work as the paper's
        // system would incur it; the codec size trial is benchmarked
        // separately by the storage bench.
        codec: tasm_codec::CodecChoice::Dct,
    }
}

/// Partition parameters scaled to the simulated resolutions.
pub fn micro_partition(granularity: Granularity) -> PartitionConfig {
    PartitionConfig {
        min_tile_width: 64,
        min_tile_height: 32,
        granularity,
    }
}

/// Standard TASM configuration for experiments.
///
/// Decode execution is pinned to *serial and uncached* here: the figure
/// reproductions (and the cost-model fit) measure per-query decode work as
/// the paper's system — which has neither a decoded-GOP cache nor
/// tile-parallel decode — would incur it, and `ScanResult::seconds()` is
/// wall-clock, so extra workers would fold multicore speedup into the
/// measurements. The pipeline benchmarks opt back in through
/// [`BenchVideo::from_video_exec`].
pub fn micro_config() -> TasmConfig {
    TasmConfig {
        storage: micro_storage(),
        partition: micro_partition(Granularity::Fine),
        workers: 1,
        cache_bytes: 0,
        ..Default::default()
    }
}

/// A video under measurement: the synthetic scene plus its ingested,
/// ground-truth-indexed TASM instance.
pub struct BenchVideo {
    /// The scene (ground-truth oracle and frame source).
    pub video: SyntheticVideo,
    /// The storage manager holding the ingested copy.
    pub tasm: Tasm,
    /// Video name inside the store.
    pub name: String,
}

impl BenchVideo {
    /// Builds, ingests (untiled), and indexes a dataset preset.
    pub fn prepare(dataset: Dataset, duration_s: u32, seed: u64, tag: &str) -> Self {
        let video = dataset.build(duration_s, seed);
        Self::from_video(video, tag)
    }

    /// Ingests an existing scene untiled and indexes its ground truth.
    pub fn from_video(video: SyntheticVideo, tag: &str) -> Self {
        let cfg = micro_config();
        Self::from_video_exec(video, tag, cfg.workers, cfg.cache_bytes)
    }

    /// [`BenchVideo::from_video`] with explicit execution-pipeline settings
    /// (decode worker count and decoded-GOP cache budget).
    pub fn from_video_exec(
        video: SyntheticVideo,
        tag: &str,
        workers: usize,
        cache_bytes: u64,
    ) -> Self {
        let tasm = Tasm::open(
            bench_dir(tag),
            Box::new(MemoryIndex::in_memory()),
            TasmConfig {
                workers,
                cache_bytes,
                ..micro_config()
            },
        )
        .expect("open tasm");
        let name = "v".to_string();
        tasm.ingest(&name, &video, 30).expect("ingest");
        for f in 0..video.len() {
            for (label, bbox) in video.ground_truth(f) {
                tasm.add_metadata(&name, label, f, bbox).expect("metadata");
            }
            tasm.mark_processed(&name, f).expect("mark");
        }
        BenchVideo { video, tasm, name }
    }

    /// Re-tiles every SOT with the layout produced by `layout_for`
    /// (None = leave as is).
    pub fn apply_layout(
        &mut self,
        mut layout_for: impl FnMut(
            &SyntheticVideo,
            std::ops::Range<u32>,
        ) -> Option<tasm_codec::TileLayout>,
    ) {
        let sots: Vec<(usize, std::ops::Range<u32>)> = self
            .tasm
            .manifest(&self.name)
            .expect("manifest")
            .sots
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.frames()))
            .collect();
        for (i, frames) in sots {
            if let Some(layout) = layout_for(&self.video, frames) {
                self.tasm.retile(&self.name, i, layout).expect("retile");
            }
        }
    }

    /// Times the microbenchmark query `SELECT label FROM v` (full range),
    /// returning (seconds, samples, tile_chunks).
    pub fn time_select(&mut self, label: &str) -> (f64, u64, u64) {
        let frames = 0..self.video.len();
        let r = self
            .tasm
            .scan(&self.name, &LabelPredicate::label(label), frames)
            .expect("scan");
        (
            r.seconds(),
            r.stats.samples_decoded,
            r.stats.tile_chunks_decoded,
        )
    }

    /// Ground-truth boxes of `labels` over a frame range (layout design
    /// input for the microbenchmarks, which assume a populated index).
    pub fn boxes_for(
        &self,
        labels: &[&str],
        frames: std::ops::Range<u32>,
    ) -> Vec<tasm_video::Rect> {
        let mut out = Vec::new();
        for f in frames {
            for (l, b) in self.video.ground_truth(f) {
                if labels.contains(&l) {
                    out.push(b);
                }
            }
        }
        out
    }

    /// Fine or coarse non-uniform layout around `labels` for a frame range.
    pub fn object_layout(
        &self,
        labels: &[&str],
        frames: std::ops::Range<u32>,
        granularity: Granularity,
    ) -> tasm_codec::TileLayout {
        let boxes = self.boxes_for(labels, frames);
        partition(
            self.video.width(),
            self.video.height(),
            &boxes,
            &micro_partition(granularity),
        )
    }
}

/// Percentage improvement of `tiled` over `untiled` (positive = faster).
pub fn improvement_pct(untiled: f64, tiled: f64) -> f64 {
    100.0 * (1.0 - tiled / untiled)
}

/// Renders a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(10.0, 5.0), 50.0);
        assert_eq!(improvement_pct(10.0, 10.0), 0.0);
        assert!(improvement_pct(10.0, 12.0) < 0.0);
    }

    #[test]
    fn bench_video_prepare_and_select() {
        let mut bv = BenchVideo::prepare(Dataset::VisualRoad2K, 1, 3, "lib-test");
        let (secs, samples, chunks) = bv.time_select("car");
        assert!(secs > 0.0);
        assert!(samples > 0);
        assert!(chunks > 0);
        // Tiling around cars reduces decode.
        bv.apply_layout(|video, frames| {
            let boxes: Vec<_> = frames
                .clone()
                .flat_map(|f| video.ground_truth_for(f, "car"))
                .collect();
            let l = partition(
                video.width(),
                video.height(),
                &boxes,
                &micro_partition(Granularity::Fine),
            );
            (!l.is_untiled()).then_some(l)
        });
        let (_, samples_tiled, _) = bv.time_select("car");
        assert!(samples_tiled < samples);
    }
}
