//! Table 1 — the video corpus.
//!
//! Prints the statistics of the synthetic corpus presets next to the paper's
//! rows: dataset, type, duration, resolution, per-frame object coverage
//! band, and the frequently occurring object classes. Resolutions and
//! durations are uniformly scaled (see DESIGN.md).
//!
//! Run with `cargo run --release -p tasm-bench --bin table1`.

use serde::Serialize;
use tasm_bench::{scaled_secs, write_result};
use tasm_data::Dataset;
use tasm_video::FrameSource;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    resolution: String,
    duration_s: u32,
    coverage_min_pct: f64,
    coverage_max_pct: f64,
    coverage_mean_pct: f64,
    dense: bool,
    frequent_objects: Vec<&'static str>,
}

fn main() {
    let duration = scaled_secs(4);
    println!("# Table 1: video corpus (synthetic equivalents)\n");
    println!("| dataset | res. | dur. (s) | per-frame coverage (%) | class | frequent objects |");
    println!("|---|---|---|---|---|---|");

    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let v = ds.build(duration, 42);
        let coverages: Vec<f64> = (0..v.len()).map(|t| v.coverage(t) * 100.0).collect();
        let min = coverages.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = coverages.iter().cloned().fold(0.0, f64::max);
        let mean = coverages.iter().sum::<f64>() / coverages.len() as f64;
        let row = Row {
            dataset: ds.name(),
            resolution: format!("{}x{}", v.width(), v.height()),
            duration_s: duration,
            coverage_min_pct: min,
            coverage_max_pct: max,
            coverage_mean_pct: mean,
            dense: ds.is_dense(),
            frequent_objects: ds.primary_labels().to_vec(),
        };
        println!(
            "| {} | {} | {} | {:.1}-{:.1} (mean {:.1}) | {} | {} |",
            row.dataset,
            row.resolution,
            row.duration_s,
            row.coverage_min_pct,
            row.coverage_max_pct,
            row.coverage_mean_pct,
            if row.dense { "dense" } else { "sparse" },
            row.frequent_objects.join(", "),
        );
        rows.push(row);
    }

    println!("\nPaper bands for comparison: Visual Road 0.06-10%, Netflix public");
    println!("0.32-49%, Netflix Open Source 25-45%, XIPH 2-59%, MOT16 3-36%,");
    println!("El Fuente 1-47%. Sparse/dense split at 20% mean coverage (§5.2.2).");
    write_result("table1", &rows);
}
