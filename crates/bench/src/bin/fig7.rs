//! Figure 7 — uniform-layout sweep.
//!
//! Improvement in query time for uniform grids from 2×2 up to 7×10,
//! compared to the untiled video. Paper shape: improvement rises with tile
//! count (19% at 2×2 → 36% at 5×5), then falls as per-tile overhead bites
//! (28% at 7×10), while the IQR widens — the same grid does not suit every
//! video.
//!
//! Run with `cargo run --release -p tasm-bench --bin fig7`.

use serde::Serialize;
use tasm_bench::{improvement_pct, scaled_secs, write_result, BenchVideo, Summary};
use tasm_codec::TileLayout;
use tasm_data::Dataset;

#[derive(Serialize)]
struct GridResult {
    grid: String,
    tiles: u32,
    improvement: Summary,
}

fn main() {
    let duration = scaled_secs(2);
    let cases: Vec<(Dataset, u64, &str)> = vec![
        (Dataset::VisualRoad2K, 1, "car"),
        (Dataset::VisualRoad2K, 1, "person"),
        (Dataset::VisualRoad2K, 2, "car"),
        (Dataset::VisualRoad4K, 3, "car"),
        (Dataset::NetflixPublic, 4, "bird"),
        (Dataset::Xiph, 5, "car"),
        (Dataset::Xiph, 5, "boat"),
        (Dataset::Mot16, 6, "person"),
        (Dataset::ElFuenteSparse, 7, "boat"),
        (Dataset::ElFuenteDense, 8, "person"),
    ];
    let grids: [(u32, u32); 6] = [(2, 2), (3, 3), (4, 4), (5, 5), (6, 6), (7, 10)];

    // Prepare videos once; sweep layouts per video.
    let mut prepared: Vec<(BenchVideo, &str, f64)> = cases
        .into_iter()
        .map(|(ds, seed, object)| {
            let tag = format!("fig7-{}-{seed}-{object}", ds.name());
            let mut bv = BenchVideo::prepare(ds, duration, seed, &tag);
            let untiled = (0..3)
                .map(|_| bv.time_select(object).0)
                .fold(f64::INFINITY, f64::min);
            (bv, object, untiled)
        })
        .collect();

    println!("# Figure 7: query-time improvement per uniform layout\n");
    println!("| layout | tiles | improvement % median [IQR] | paper |");
    println!("|---|---|---|---|");
    let paper = ["19 (2x2)", "", "", "36 (5x5)", "", "28 (7x10)"];
    let mut results = Vec::new();
    for (gi, (r, c)) in grids.iter().enumerate() {
        let mut improvements = Vec::new();
        for (bv, object, untiled) in prepared.iter_mut() {
            let layout = TileLayout::uniform(bv.video.spec().width, bv.video.spec().height, *r, *c)
                .expect("uniform layout");
            bv.apply_layout(|_, _| Some(layout.clone()));
            let t = (0..3)
                .map(|_| bv.time_select(object).0)
                .fold(f64::INFINITY, f64::min);
            improvements.push(improvement_pct(*untiled, t));
        }
        let summary = Summary::of(&improvements);
        println!(
            "| {r}x{c} | {} | {} | {} |",
            r * c,
            summary.display(0),
            paper[gi]
        );
        results.push(GridResult {
            grid: format!("{r}x{c}"),
            tiles: r * c,
            improvement: summary,
        });
    }

    let iqr_first = results
        .first()
        .map(|g| g.improvement.q3 - g.improvement.q1)
        .unwrap_or(0.0);
    let iqr_last = results
        .last()
        .map(|g| g.improvement.q3 - g.improvement.q1)
        .unwrap_or(0.0);
    println!("\nIQR widens from {iqr_first:.0} pp (2x2) to {iqr_last:.0} pp (7x10): the same");
    println!("uniform grid does not work equally well on all videos (paper: 1%-58% IQR at 7x10).");
    write_result("fig7", &results);
}
