//! Reactor serving-layer benchmark: connection-count sweep of the
//! nonblocking reactor engine against the thread-per-connection baseline.
//!
//! The claim under test is the reactor rearchitecture's headline property:
//! one process serves 16 → 1k concurrent sessions (10k behind
//! `TASM_REACTOR_BENCH_10K=1`) with a thread count that stays O(workers)
//! instead of O(connections), a bounded resident set, and tail latency
//! that degrades gracefully — while results stay bit-identical to
//! in-process `Tasm::query`. Each sweep point records client-observed
//! p50/p95/p99, throughput, the process thread count and resident set
//! with every connection open, and a bit-exactness verification pass
//! against an in-process twin of the same store.
//!
//! Results land in `results/BENCH_reactor.json`. Run with
//! `cargo run --release -p tasm-bench --bin reactor_bench`.

use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;
use tasm_bench::{bench_dir, scaled_count, write_result};
use tasm_client::{Connection, LoadGen, LoadGenConfig};
use tasm_core::{
    LabelPredicate, PartitionConfig, Query, QueryMode, StorageConfig, Tasm, TasmConfig,
};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_server::{ServeEngine, ServerConfig, TasmServer};
use tasm_service::ServiceConfig;
use tasm_video::FrameSource;

const FRAMES: u32 = 60;
const WINDOW: u32 = 12;
/// Query-service workers: deliberately small and fixed across the sweep,
/// so an O(connections) thread count cannot hide behind it.
const WORKERS: usize = 4;

fn scene() -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 256,
        height: 160,
        frames: FRAMES,
        seed: 23,
        ..SceneSpec::test_scene()
    })
}

fn open(tag: &str) -> Arc<Tasm> {
    let tasm = Tasm::open(
        bench_dir(tag),
        Box::new(MemoryIndex::in_memory()),
        TasmConfig {
            storage: StorageConfig {
                gop_len: 10,
                sot_frames: 10,
                ..Default::default()
            },
            partition: PartitionConfig {
                min_tile_width: 32,
                min_tile_height: 32,
                ..Default::default()
            },
            workers: 1,
            cache_bytes: 128 << 20,
            ..Default::default()
        },
    )
    .expect("open store");
    Arc::new(tasm)
}

fn ingest(tasm: &Tasm, video: &SyntheticVideo) {
    tasm.ingest("v", video, 30).expect("ingest");
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).expect("metadata");
        }
        tasm.mark_processed("v", f).expect("mark");
    }
}

/// `/proc/self/status` fields (Linux; zero elsewhere — the sweep still
/// measures latency, it just cannot attribute threads/RSS).
fn proc_status(field: &str) -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix(field).map(str::trim))
                .and_then(|v| v.split_whitespace().next().and_then(|n| n.parse().ok()))
        })
        .unwrap_or(0)
}

#[derive(Serialize)]
struct SweepPoint {
    engine: &'static str,
    connections: usize,
    requests: u64,
    completed: u64,
    busy: u64,
    failed: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    /// Process threads added by holding every connection open at once
    /// (server-side per-session cost: the loadgen itself was not running).
    idle_conn_threads_added: u64,
    /// Resident set (kB) with every connection open.
    rss_kb_at_peak_conns: u64,
    /// Tail latency of a fixed 16-connection active pool while the
    /// *remaining* connections sit open and idle — the C10K quantity: a
    /// large connected-but-quiet population must not tax active sessions.
    parked_p50_ms: f64,
    parked_p95_ms: f64,
    parked_p99_ms: f64,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn run_point(tasm: &Arc<Tasm>, engine: ServeEngine, connections: usize) -> SweepPoint {
    let name = match engine {
        ServeEngine::Reactor => "reactor",
        ServeEngine::Threads => "threads",
    };
    let server = TasmServer::bind(
        Arc::clone(tasm),
        ServiceConfig {
            workers: WORKERS,
            queue_depth: 64,
            ..Default::default()
        },
        ServerConfig {
            engine,
            max_connections: connections + 16,
            max_inflight: 8,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback server");
    let addr = server.local_addr();

    // Thread/RSS probe: hold every connection open at once, idle, with the
    // loadgen not running — the delta is the server's per-session cost.
    let threads_before = proc_status("Threads:");
    let conns: Vec<Connection> = (0..connections)
        .map(|_| Connection::connect(addr).expect("probe connect"))
        .collect();
    let idle_conn_threads_added = proc_status("Threads:").saturating_sub(threads_before);
    let rss_kb_at_peak_conns = proc_status("VmRSS:");

    let gen = |pool: usize, requests: u64| {
        LoadGen::new(LoadGenConfig {
            connections: pool,
            requests,
            video: "v".to_string(),
            // Aggregate (Count-mode) sliding-window queries, so the
            // serving layer — not tile decode — dominates the measurement.
            query: Query::new(LabelPredicate::label("car")).mode(QueryMode::Count),
            window: WINDOW,
            frames: FRAMES,
            busy_backoff: Duration::from_millis(1),
            reconnect_attempts: 0,
        })
    };

    // Parked measurement: the probe population stays connected and idle
    // while a fixed 16-connection pool runs the workload. Holding 1k open
    // sockets must not tax the sessions doing work.
    let parked_requests = scaled_count(512) as u64;
    let parked_gen = gen(16, parked_requests);
    parked_gen.run(addr).expect("parked warm pass");
    let parked = parked_gen.run(addr).expect("parked measured pass");
    for conn in conns {
        conn.goodbye().expect("probe goodbye");
    }

    // Full fan-in: every connection issues queries at once. On a small
    // worker pool this measures queueing under saturation, so tails grow
    // with the offered concurrency by construction — it bounds the worst
    // case rather than the steady state.
    let requests = scaled_count(connections.max(256)) as u64;
    let fan_gen = gen(connections, requests);
    fan_gen.run(addr).expect("warm pass");
    let report = fan_gen.run(addr).expect("measured pass");
    server.shutdown();

    let point = SweepPoint {
        engine: name,
        connections,
        requests,
        completed: report.completed,
        busy: report.busy,
        failed: report.failed,
        throughput_rps: report.throughput(),
        p50_ms: ms(report.latency.p50()),
        p95_ms: ms(report.latency.p95()),
        p99_ms: ms(report.latency.p99()),
        idle_conn_threads_added,
        rss_kb_at_peak_conns,
        parked_p50_ms: ms(parked.latency.p50()),
        parked_p95_ms: ms(parked.latency.p95()),
        parked_p99_ms: ms(parked.latency.p99()),
    };
    println!(
        "{:<8} c={:<6} {:>8.1} req/s  fan-in p99 {:>7.2} ms  parked p99 {:>7.2} ms  \
         +{} threads @ idle conns  rss {} kB",
        point.engine,
        point.connections,
        point.throughput_rps,
        point.p99_ms,
        point.parked_p99_ms,
        point.idle_conn_threads_added,
        point.rss_kb_at_peak_conns,
    );
    point
}

/// Bit-exactness spot check at full fan-in: the same pixel queries through
/// a remote session and through in-process `Tasm::query` on a twin store
/// must agree byte-for-byte.
fn verify_bit_exact(tasm: &Arc<Tasm>, twin: &Tasm, engine: ServeEngine) {
    let server = TasmServer::bind(
        Arc::clone(tasm),
        ServiceConfig {
            workers: WORKERS,
            queue_depth: 64,
            ..Default::default()
        },
        ServerConfig {
            engine,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind verify server");
    let mut conn = Connection::connect(server.local_addr()).expect("verify connect");
    for start in [0u32, 11, 23, 37] {
        let query = Query::new(LabelPredicate::label("car")).frames(start..start + WINDOW);
        let remote = conn.query("v", &query).expect("remote query");
        let local = twin.query("v", &query).expect("twin query");
        assert_eq!(remote.matched, local.matched, "matched counts diverge");
        assert_eq!(remote.regions.len(), local.regions.len());
        for (r, l) in remote.regions.iter().zip(&local.regions) {
            assert!(
                r.frame == l.frame && r.rect == l.rect && r.pixels == l.pixels,
                "remote region diverges from in-process result at frame {}",
                l.frame
            );
        }
    }
    conn.goodbye().expect("verify goodbye");
    server.shutdown();
}

#[derive(Serialize)]
struct Report {
    frames: u32,
    window: u32,
    workers: usize,
    sweep: Vec<SweepPoint>,
    bit_exact_verified: bool,
    /// Reactor parked p99 at the largest sweep point over p99 at 16
    /// connections — the acceptance gate tracks this staying within 2x:
    /// holding the maximum connection count open must not degrade the
    /// latency of sessions actually doing work.
    reactor_p99_ratio_max_over_16: f64,
}

fn main() {
    let video = scene();
    let tasm = open("reactor-srv");
    ingest(&tasm, &video);
    let twin = open("reactor-twin");
    ingest(&twin, &video);

    let mut sweep = vec![16usize, 256, 1000];
    if std::env::var("TASM_REACTOR_BENCH_10K").is_ok_and(|v| v == "1") {
        sweep.push(10_000);
    }

    let mut points = Vec::new();
    for &engine in &[ServeEngine::Reactor, ServeEngine::Threads] {
        for &connections in &sweep {
            points.push(run_point(&tasm, engine, connections));
        }
    }

    verify_bit_exact(&tasm, &twin, ServeEngine::Reactor);
    verify_bit_exact(&tasm, &twin, ServeEngine::Threads);
    println!("bit-exactness verified on both engines");

    let reactor: Vec<&SweepPoint> = points.iter().filter(|p| p.engine == "reactor").collect();
    let p99_16 = reactor
        .iter()
        .find(|p| p.connections == 16)
        .map(|p| p.parked_p99_ms)
        .unwrap_or(0.0);
    let p99_max = reactor
        .iter()
        .max_by_key(|p| p.connections)
        .map(|p| p.parked_p99_ms)
        .unwrap_or(0.0);
    let ratio = if p99_16 > 0.0 { p99_max / p99_16 } else { 0.0 };
    println!("reactor parked p99 at max connections / p99 at 16: {ratio:.2}x");

    write_result(
        "BENCH_reactor",
        &Report {
            frames: FRAMES,
            window: WINDOW,
            workers: WORKERS,
            sweep: points,
            bit_exact_verified: true,
            reactor_p99_ratio_max_over_16: ratio,
        },
    );
}
