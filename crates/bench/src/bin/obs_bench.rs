//! Observability overhead benchmark: the tracing + metrics layer must be
//! close to free on the hot query path.
//!
//! The claim under test is the tasm-obs design point: phase spans are
//! inert `Instant` pairs, counters are relaxed atomics behind one global
//! `enabled` load, and nothing on the query path takes the registry lock
//! (that only happens at registration and scrape time). The benchmark
//! runs the same warm-cache query workload with observability enabled and
//! disabled in *interleaved* rounds — so frequency scaling, cache state,
//! and allocator drift hit both arms equally — and asserts the median
//! enabled-round throughput is within `OVERHEAD_BOUND_PCT` of disabled.
//!
//! Results land in `results/BENCH_obs.json`. Run with
//! `cargo run --release -p tasm-bench --bin obs_bench`.

use serde::Serialize;
use std::time::Instant;
use tasm_bench::{bench_dir, scaled_count, write_result};
use tasm_core::{LabelPredicate, PartitionConfig, Query, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_video::FrameSource;

const WIDTH: u32 = 256;
const HEIGHT: u32 = 160;
const FRAMES: u32 = 40;
/// Maximum tolerated median throughput loss with observability on.
const OVERHEAD_BOUND_PCT: f64 = 3.0;

fn open() -> Tasm {
    Tasm::open(
        bench_dir("obs"),
        Box::new(MemoryIndex::in_memory()),
        TasmConfig {
            storage: StorageConfig {
                gop_len: 10,
                sot_frames: FRAMES,
                ..Default::default()
            },
            partition: PartitionConfig {
                min_tile_width: 32,
                min_tile_height: 32,
                ..Default::default()
            },
            workers: 1,
            cache_bytes: 64 << 20,
            ..Default::default()
        },
    )
    .expect("open store")
}

fn ingest(tasm: &Tasm, video: &SyntheticVideo) {
    tasm.ingest("v", video, 30).expect("ingest");
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).expect("metadata");
        }
        tasm.mark_processed("v", f).expect("mark");
    }
}

/// One timed round: `queries` traced scans against a warm cache,
/// returning throughput in queries per second. The traced entry point is
/// used in *both* arms — when observability is disabled the spans are
/// inert and the counters early-return, which is exactly the code path
/// whose cost we are bounding.
fn round(tasm: &Tasm, queries: &[Query], reps: usize) -> f64 {
    let spans = tasm_obs::TraceSpans::shared();
    let t0 = Instant::now();
    let mut total = 0u64;
    for _ in 0..reps {
        for q in queries {
            let r = tasm.query_traced("v", q, &spans).expect("query");
            total += r.matched;
        }
    }
    std::hint::black_box(total);
    (reps * queries.len()) as f64 / t0.elapsed().as_secs_f64()
}

fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    sorted[sorted.len() / 2]
}

#[derive(Serialize)]
struct Report {
    frames: u32,
    rounds: usize,
    queries_per_round: usize,
    enabled_qps: Vec<f64>,
    disabled_qps: Vec<f64>,
    enabled_qps_median: f64,
    disabled_qps_median: f64,
    /// Median throughput loss with observability on, in percent.
    /// Negative means enabled happened to measure faster (noise floor).
    overhead_pct: f64,
}

fn main() {
    let rounds = scaled_count(9);
    let reps = scaled_count(12);
    let video = SyntheticVideo::new(SceneSpec {
        width: WIDTH,
        height: HEIGHT,
        frames: FRAMES,
        seed: 42,
        ..SceneSpec::test_scene()
    });
    let tasm = open();
    println!("ingesting {FRAMES} frames, {rounds} rounds x {reps} reps...");
    ingest(&tasm, &video);

    let queries = vec![
        Query::new(LabelPredicate::label("car")).frames(0..FRAMES),
        Query::new(LabelPredicate::label("person"))
            .frames(0..FRAMES)
            .stride(2),
        Query::new(LabelPredicate::label("car"))
            .frames(10..FRAMES)
            .limit(8),
    ];

    // Warm the decoded-GOP cache and the planner so neither arm pays the
    // cold-start cost.
    tasm_obs::set_enabled(true);
    round(&tasm, &queries, 1);
    tasm_obs::set_enabled(false);
    round(&tasm, &queries, 1);

    // Interleaved measurement: disabled then enabled within each round,
    // so slow drift cancels instead of biasing one arm.
    let mut enabled_qps = Vec::with_capacity(rounds);
    let mut disabled_qps = Vec::with_capacity(rounds);
    for i in 0..rounds {
        tasm_obs::set_enabled(false);
        disabled_qps.push(round(&tasm, &queries, reps));
        tasm_obs::set_enabled(true);
        enabled_qps.push(round(&tasm, &queries, reps));
        println!(
            "round {:>2}: disabled {:>8.1} q/s  enabled {:>8.1} q/s",
            i, disabled_qps[i], enabled_qps[i]
        );
    }
    tasm_obs::set_enabled(true);

    let disabled_med = median(&disabled_qps);
    let enabled_med = median(&enabled_qps);
    let overhead_pct = (disabled_med - enabled_med) / disabled_med * 100.0;
    println!(
        "median: disabled {disabled_med:.1} q/s, enabled {enabled_med:.1} q/s, overhead {overhead_pct:+.2}%"
    );

    let report = Report {
        frames: FRAMES,
        rounds,
        queries_per_round: queries.len() * reps,
        enabled_qps,
        disabled_qps,
        enabled_qps_median: enabled_med,
        disabled_qps_median: disabled_med,
        overhead_pct,
    };
    assert!(
        report.overhead_pct < OVERHEAD_BOUND_PCT,
        "observability overhead {:.2}% exceeds the {:.1}% budget",
        report.overhead_pct,
        OVERHEAD_BOUND_PCT
    );
    write_result("BENCH_obs", &report);
}
