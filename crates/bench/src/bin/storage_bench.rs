//! Storage-tier benchmark: entropy-coded tiles and the SSTable index.
//!
//! Two halves, matching the tiered-storage design:
//!
//! 1. **Tile codec** — ingests the same synthetic scene corpus twice, once
//!    with the DCT-only codec and once with the per-tile size trial
//!    (`CodecChoice::Auto`, which keeps the prediction + rANS payload when
//!    it is smaller), and reports on-disk bytes, the compression ratio,
//!    cold-open time, and cold/warm full-scan throughput of each store.
//! 2. **Semantic index** — loads ~1M detections (scaled by
//!    `TASM_BENCH_SCALE`) into the tiered index, reports disk and resident
//!    bytes against a fully resident in-memory map, cold-open time, and
//!    checks that planner-visible query results are identical to the
//!    in-memory reference.
//!
//! Results land in `results/BENCH_storage.json` (machine-readable; CI's
//! smoke job asserts on the ratios). Run with
//! `cargo run --release -p tasm-bench --bin storage_bench`.

use serde::Serialize;
use std::path::Path;
use std::time::Instant;
use tasm_bench::{bench_dir, micro_config, scaled_count, scaled_secs, write_result};
use tasm_codec::CodecChoice;
use tasm_core::{LabelPredicate, StorageConfig, Tasm, TasmConfig};
use tasm_data::{Dataset, SyntheticVideo};
use tasm_index::{MemoryIndex, SemanticIndex, TieredIndex};
use tasm_video::{FrameSource, Rect};

/// One ingested store variant (a codec choice) and its measurements.
#[derive(Serialize)]
struct TileCase {
    codec: &'static str,
    disk_bytes: u64,
    bytes_per_frame: f64,
    /// Raw (decoded 4:2:0) bytes divided by on-disk bytes.
    ratio_vs_raw: f64,
    /// Tiles whose size trial kept the prediction + rANS payload.
    pred_tiles: u64,
    dct_tiles: u64,
    cold_open_ms: f64,
    cold_scan_fps: f64,
    warm_scan_fps: f64,
}

#[derive(Serialize)]
struct TileReport {
    dataset: &'static str,
    frames: u32,
    raw_bytes: u64,
    cases: Vec<TileCase>,
    /// Raw pixel bytes divided by entropy-coded (lossless prediction +
    /// rANS) store bytes — the headline vs the uncompressed baseline
    /// (acceptance target: >= 1.5).
    entropy_ratio_vs_raw: f64,
    /// Cold-scan slowdown of the entropy-coded store relative to the
    /// DCT-sim store (%; acceptance target: <= 25).
    cold_scan_slowdown_pct: f64,
}

#[derive(Serialize)]
struct IndexReport {
    entries: u64,
    run_count: u64,
    disk_bytes: u64,
    resident_bytes: u64,
    /// Lower bound on a fully resident map: entries x (key + value) bytes,
    /// ignoring all per-node overhead.
    full_map_bytes: u64,
    /// resident_bytes / full_map_bytes (acceptance target: <= 0.25).
    resident_ratio: f64,
    disk_bytes_per_entry: f64,
    cold_open_ms: f64,
    filter_hit_rate: f64,
    queries_checked: u64,
    /// Query results bit-identical to the in-memory reference.
    planner_identical: bool,
}

#[derive(Serialize)]
struct Report {
    tiles: TileReport,
    index: IndexReport,
}

fn tile_config(codec: CodecChoice) -> TasmConfig {
    TasmConfig {
        storage: StorageConfig {
            codec,
            ..micro_config().storage
        },
        // A real cache so the warm scan measures the decoded-GOP hit path.
        cache_bytes: 512 << 20,
        ..micro_config()
    }
}

fn ingest_corpus(video: &SyntheticVideo, codec: CodecChoice, root: &Path) -> (Tasm, String) {
    let tasm = Tasm::open(
        root.to_path_buf(),
        Box::new(MemoryIndex::in_memory()),
        tile_config(codec),
    )
    .expect("open tasm");
    let name = "v".to_string();
    tasm.ingest(&name, video, 30).expect("ingest");
    for f in 0..video.len() {
        for (label, bbox) in video.ground_truth(f) {
            tasm.add_metadata(&name, label, f, bbox).expect("metadata");
        }
        tasm.mark_processed(&name, f).expect("mark");
    }
    (tasm, name)
}

fn scan_fps(tasm: &Tasm, name: &str, frames: u32) -> f64 {
    let t = Instant::now();
    tasm.scan(name, &LabelPredicate::label("car"), 0..frames)
        .expect("scan");
    frames as f64 / t.elapsed().as_secs_f64()
}

fn tile_case(
    video: &SyntheticVideo,
    codec: CodecChoice,
    label: &'static str,
    raw_bytes: u64,
) -> TileCase {
    let root = bench_dir(&format!("storage-{label}"));
    let (tasm, name) = ingest_corpus(video, codec, &root);
    let disk_bytes = tasm.video_size_bytes(&name).expect("size");
    let manifest = tasm.manifest(&name).expect("manifest");
    let (mut pred_tiles, mut dct_tiles) = (0u64, 0u64);
    for sot in &manifest.sots {
        for &c in &sot.tile_codecs {
            if c == 0 {
                dct_tiles += 1;
            } else {
                pred_tiles += 1;
            }
        }
    }
    drop(tasm);

    // Cold open + cold scan on fresh instances (empty decoded-GOP cache);
    // best-of-3 against scheduler noise, each round on a new instance so
    // the first scan is genuinely cold.
    let mut cold_open_ms = f64::INFINITY;
    let mut cold_scan_fps = 0.0f64;
    let mut warm_scan_fps = 0.0f64;
    for _ in 0..3 {
        let t = Instant::now();
        let tasm = Tasm::open(
            root.clone(),
            Box::new(MemoryIndex::in_memory()),
            tile_config(codec),
        )
        .expect("reopen");
        tasm.attach(&name).expect("attach");
        cold_open_ms = cold_open_ms.min(t.elapsed().as_secs_f64() * 1e3);
        for f in 0..video.len() {
            for (l, bbox) in video.ground_truth(f) {
                tasm.add_metadata(&name, l, f, bbox).expect("metadata");
            }
            tasm.mark_processed(&name, f).expect("mark");
        }
        cold_scan_fps = cold_scan_fps.max(scan_fps(&tasm, &name, video.len()));
        warm_scan_fps = warm_scan_fps.max(scan_fps(&tasm, &name, video.len()));
    }
    std::fs::remove_dir_all(&root).ok();

    TileCase {
        codec: label,
        disk_bytes,
        bytes_per_frame: disk_bytes as f64 / video.len() as f64,
        ratio_vs_raw: raw_bytes as f64 / disk_bytes as f64,
        pred_tiles,
        dct_tiles,
        cold_open_ms,
        cold_scan_fps,
        warm_scan_fps,
    }
}

fn tile_report() -> TileReport {
    let duration = scaled_secs(4);
    let video = Dataset::VisualRoad2K.build(duration, 11);
    let frames = video.len();
    let raw_bytes = frames as u64 * (video.width() as u64 * video.height() as u64 * 3 / 2);

    let dct = tile_case(&video, CodecChoice::Dct, "dct", raw_bytes);
    let pred = tile_case(&video, CodecChoice::Pred, "pred", raw_bytes);
    let auto = tile_case(&video, CodecChoice::Auto, "auto", raw_bytes);
    let entropy_ratio_vs_raw = pred.ratio_vs_raw;
    let cold_scan_slowdown_pct = 100.0 * (1.0 - pred.cold_scan_fps / dct.cold_scan_fps);

    println!("tiles: raw {raw_bytes} B over {frames} frames");
    for c in [&dct, &pred, &auto] {
        println!(
            "  {:<5} {:>10} B  ({:.2}x vs raw)  cold {:.0} fps / warm {:.0} fps  ({} pred / {} dct tiles)",
            c.codec, c.disk_bytes, c.ratio_vs_raw, c.cold_scan_fps, c.warm_scan_fps,
            c.pred_tiles, c.dct_tiles
        );
    }
    println!("  entropy ratio vs raw: {entropy_ratio_vs_raw:.2}x (target >= 1.5)");
    println!(
        "  entropy cold-scan slowdown vs dct-sim: {cold_scan_slowdown_pct:.1}% (target <= 25)"
    );

    TileReport {
        dataset: "visualroad-2k",
        frames,
        raw_bytes,
        cases: vec![dct, pred, auto],
        entropy_ratio_vs_raw,
        cold_scan_slowdown_pct,
    }
}

/// Deterministic synthetic detection stream: `n` boxes spread over videos,
/// labels, and frames.
fn load_entries(ix: &mut dyn SemanticIndex, n: u64) {
    const LABELS: [&str; 4] = ["car", "person", "bus", "truck"];
    for i in 0..n {
        let video = (i % 7) as u32;
        let label = LABELS[(i % 4) as usize];
        let frame = (i / 7) as u32;
        let x = (i % 1901) as u32;
        let y = (i % 1021) as u32;
        ix.add_metadata(video, label, frame, Rect::new(x, y, 32, 24))
            .expect("add");
    }
    ix.flush().expect("flush");
}

fn index_report() -> IndexReport {
    let entries = scaled_count(1_000_000) as u64;
    let dir = bench_dir("storage-index");

    let mut tier = TieredIndex::open(&dir).expect("open tier");
    let t = Instant::now();
    load_entries(&mut tier, entries);
    let load_s = t.elapsed().as_secs_f64();
    drop(tier);

    let t = Instant::now();
    let mut tier = TieredIndex::open(&dir).expect("reopen tier");
    let cold_open_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut reference = MemoryIndex::in_memory();
    load_entries(&mut reference, entries);

    // Planner-visible probes: per-(video, label) range queries plus
    // whole-video label listings, in several frame windows.
    let max_frame = (entries / 7 + 1) as u32;
    let windows = [0..max_frame, 0..max_frame / 2, max_frame / 3..max_frame / 2];
    let mut queries_checked = 0u64;
    let mut planner_identical = true;
    for video in 0..7u32 {
        let labels = tier.labels(video).expect("labels");
        planner_identical &= labels == reference.labels(video).expect("labels");
        for label in &labels {
            for w in &windows {
                let got = tier.query(video, label, w.clone()).expect("query");
                let want = reference.query(video, label, w.clone()).expect("query");
                planner_identical &= got == want;
                queries_checked += 1;
            }
        }
    }
    planner_identical &= tier.detection_count() == reference.detection_count();

    let stats = tier.stats();
    let full_map_bytes = entries * 32; // 16 B key + 16 B value, zero overhead
    let report = IndexReport {
        entries,
        run_count: stats.run_count as u64,
        disk_bytes: stats.disk_bytes,
        resident_bytes: stats.resident_bytes,
        full_map_bytes,
        resident_ratio: stats.resident_bytes as f64 / full_map_bytes as f64,
        disk_bytes_per_entry: stats.disk_bytes as f64 / entries as f64,
        cold_open_ms,
        filter_hit_rate: stats.filter_hit_rate(),
        queries_checked,
        planner_identical,
    };
    println!(
        "index: {entries} entries loaded in {load_s:.2}s, {} runs, {} B on disk ({:.1} B/entry)",
        report.run_count, report.disk_bytes, report.disk_bytes_per_entry
    );
    println!(
        "  resident {} B = {:.3}x of a fully resident map ({} B), cold open {:.1} ms",
        report.resident_bytes, report.resident_ratio, report.full_map_bytes, report.cold_open_ms
    );
    println!(
        "  {} planner probes, identical to in-memory reference: {}, filter hit rate {:.2}",
        report.queries_checked, report.planner_identical, report.filter_hit_rate
    );
    std::fs::remove_dir_all(&dir).ok();
    report
}

fn main() {
    let report = Report {
        tiles: tile_report(),
        index: index_report(),
    };
    assert!(
        report.index.planner_identical,
        "tiered index diverged from the in-memory reference"
    );
    assert!(
        report.tiles.entropy_ratio_vs_raw >= 1.5,
        "entropy-coded tiles must be >= 1.5x smaller than raw, got {:.2}x",
        report.tiles.entropy_ratio_vs_raw
    );
    assert!(
        report.tiles.cold_scan_slowdown_pct <= 25.0,
        "entropy cold scan must stay within 25% of the dct-sim baseline, got {:.1}%",
        report.tiles.cold_scan_slowdown_pct
    );
    assert!(
        report.index.resident_ratio <= 0.25,
        "tiered index must keep <= 1/4 the resident bytes of a full map, got {:.3}",
        report.index.resident_ratio
    );
    write_result("BENCH_storage", &report);
}
