//! Runs every table/figure harness in sequence (the full reproduction).
//!
//! `cargo run --release -p tasm-bench --bin run_all`
//!
//! Respects `TASM_BENCH_SCALE` (e.g. `TASM_BENCH_SCALE=0.3` for a quick
//! pass). Each harness also runs standalone; see DESIGN.md for the mapping
//! from paper table/figure to binary.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "fit_cost_model",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in bins {
        println!("\n================================================================");
        println!("==  {bin}");
        println!("================================================================\n");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nAll experiments complete; JSON results are in results/.");
}
