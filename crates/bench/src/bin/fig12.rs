//! Figure 12 — does up-front detection ever pay for itself?
//!
//! Re-runs Workload 5 accounting the *initial detection* cost of the
//! pre-tiling strategies: full-YOLO over every frame ("pre-tile, all
//! objects") and KNN-style background subtraction ("pre-tile, background
//! subtraction"); both then continue adapting with the regret policy. The
//! incremental-regret strategy does no up-front work.
//!
//! Paper finding: the up-front cost never amortizes, even after 200
//! queries — which motivates pushing detection to the camera (§4.3).
//!
//! Run with `cargo run --release -p tasm-bench --bin fig12`.

use serde::Serialize;
use std::collections::BTreeMap;
use tasm_bench::{bench_dir, micro_config, scaled_count, scaled_secs, write_result};
use tasm_core::{run_workload, RunQuery, Strategy, Tasm};
use tasm_data::{workload5, Dataset, WorkloadParams};
use tasm_detect::yolo::SimulatedYolo;
use tasm_index::MemoryIndex;

const STRATEGIES: [(&str, Strategy); 4] = [
    ("not-tiled", Strategy::NotTiled),
    (
        "pretile-all-objects",
        Strategy::PretileAllObjects { then_regret: true },
    ),
    (
        "pretile-background-subtraction",
        Strategy::PretileForeground,
    ),
    ("incremental-regret", Strategy::IncrementalRegret),
];

#[derive(Serialize)]
struct Fig12 {
    /// strategy -> median normalized cumulative (including detection) at
    /// each decile of the query sequence.
    curves: BTreeMap<String, Vec<f64>>,
    /// strategy -> median final value.
    finals: BTreeMap<String, f64>,
}

fn main() {
    let duration = scaled_secs(10);
    let n_seeds = scaled_count(2) as u64;

    let mut all_curves: BTreeMap<&'static str, Vec<Vec<f64>>> = BTreeMap::new();
    for seed in 0..n_seeds {
        let ds = if seed % 2 == 0 {
            Dataset::ElFuenteDense
        } else {
            Dataset::NetflixOpenSource
        };
        let video = ds.build(duration, 300 + seed);
        let truth = |f: u32| video.ground_truth(f);
        let queries: Vec<RunQuery> = workload5(
            WorkloadParams::new(duration * 30, 30, 3000 + seed),
            ds.primary_labels(),
        )
        .into_iter()
        .map(|q| RunQuery {
            label: q.label,
            frames: q.frames,
        })
        .collect();

        // Baseline costs per query (decode only).
        let mut base_costs: Vec<f64> = Vec::new();
        for (name, strategy) in STRATEGIES {
            eprintln!("[fig12] seed {seed} strategy {name}...");
            let mut tasm = Tasm::open(
                bench_dir(&format!("fig12-{seed}-{name}")),
                Box::new(MemoryIndex::in_memory()),
                micro_config(),
            )
            .expect("open");
            tasm.ingest("v", &video, 30).expect("ingest");
            let mut detector = SimulatedYolo::full(1);
            let report = run_workload(
                &mut tasm,
                "v",
                &queries,
                strategy,
                &mut detector,
                &truth,
                Some(&video),
            )
            .expect("workload");

            if name == "not-tiled" {
                let mean = (report.records.iter().map(|r| r.decode_seconds).sum::<f64>()
                    / report.records.len().max(1) as f64)
                    .max(1e-9);
                base_costs = report
                    .records
                    .iter()
                    .map(|r| r.decode_seconds.max(mean * 0.05))
                    .collect();
            }
            let mean_base = base_costs.iter().sum::<f64>() / base_costs.len() as f64;
            // Cumulative including detection, charged where it occurs:
            // initial detection + tiling on query 0 (in mean-baseline
            // units); lazy detection as the queries trigger it.
            let mut cum = 0.0;
            let mut curve = Vec::with_capacity(report.records.len());
            for (i, r) in report.records.iter().enumerate() {
                let cost = r.decode_seconds + r.retile_seconds + r.detect_seconds;
                if i == 0 {
                    cum +=
                        (report.initial_tile_seconds + report.initial_detect_seconds) / mean_base;
                }
                cum += cost / base_costs[i];
                curve.push(cum);
            }
            let deciles: Vec<f64> = (0..=10)
                .map(|d| curve[(d * (curve.len() - 1)) / 10])
                .collect();
            all_curves.entry(name).or_default().push(deciles);
        }
    }

    let mut curves: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut finals: BTreeMap<String, f64> = BTreeMap::new();
    for (name, vecs) in &all_curves {
        let mut med = Vec::new();
        for d in 0..=10 {
            let mut vals: Vec<f64> = vecs.iter().map(|v| v[d]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            med.push(vals[vals.len() / 2]);
        }
        finals.insert(name.to_string(), *med.last().expect("curve"));
        curves.insert(name.to_string(), med);
    }

    println!("# Figure 12: cumulative cost including initial detection (Workload 5)\n");
    println!("| strategy | 10% | 25% | 50% | 100% |");
    println!("|---|---|---|---|---|");
    for (name, c) in &curves {
        println!(
            "| {name} | {:.0} | {:.0} | {:.0} | {:.0} |",
            c[1], c[2], c[5], c[10]
        );
    }
    println!("\nShape check (paper): both pre-tiling strategies start far above the");
    println!("baseline because of up-front detection and never catch up, while");
    println!("incremental-regret tracks the baseline from the start.");
    let ok = finals["pretile-all-objects"] > finals["incremental-regret"]
        && finals["pretile-background-subtraction"] > finals["incremental-regret"];
    println!(
        "up-front cost fails to amortize: {}",
        if ok { "REPRODUCED" } else { "NOT reproduced" }
    );

    write_result("fig12", &Fig12 { curves, finals });
}
