//! Figure 9 — effect of SOT (layout) duration on query time and storage.
//!
//! Encodes the same videos with SOT durations of 1–5 seconds (GOP length =
//! SOT duration, as in the paper) using fine non-uniform layouts around the
//! query object, then measures (a) improvement of 1-second object queries
//! vs the untiled 1-second-GOP video, and (b) storage relative to that
//! untiled baseline.
//!
//! Paper shape: shorter SOTs give larger improvements (53% at 1 s → 36% at
//! 5 s) because tiles track objects more tightly, but cost more storage
//! (−5% vs −15% relative to the original).
//!
//! Run with `cargo run --release -p tasm-bench --bin fig9`.

use serde::Serialize;
use tasm_bench::{bench_dir, improvement_pct, micro_partition, scaled_secs, write_result, Summary};
use tasm_core::{partition, Granularity, LabelPredicate, StorageConfig, Tasm, TasmConfig};
use tasm_data::Dataset;
use tasm_index::MemoryIndex;
use tasm_video::FrameSource;

#[derive(Serialize)]
struct DurationRow {
    sot_seconds: u32,
    improvement: Summary,
    size_vs_untiled: Summary,
}

fn main() {
    let duration = scaled_secs(6);
    let cases: Vec<(Dataset, u64, &str)> = vec![
        (Dataset::VisualRoad2K, 1, "car"),
        (Dataset::VisualRoad2K, 2, "person"),
        (Dataset::Xiph, 3, "car"),
        (Dataset::Mot16, 4, "person"),
    ];
    let sot_secs = [1u32, 2, 3, 5];

    // Build one untiled baseline (1-second GOPs, "the default in most video
    // encoders") per case.
    struct Prepared {
        tasm: Tasm,
        video: tasm_data::SyntheticVideo,
        object: &'static str,
        untiled_secs: f64,
        untiled_bytes: u64,
    }
    let mut prepared: Vec<Prepared> = Vec::new();
    for (ds, seed, object) in &cases {
        let video = ds.build(duration, *seed);
        // Serial, uncached execution: this figure measures per-query
        // decode cost as the paper's system incurs it.
        let cfg = TasmConfig {
            storage: StorageConfig {
                gop_len: 30,
                sot_frames: 30,
                ..Default::default()
            },
            workers: 1,
            cache_bytes: 0,
            ..Default::default()
        };
        let tasm = Tasm::open(
            bench_dir(&format!("fig9-base-{}-{seed}", ds.name())),
            Box::new(MemoryIndex::in_memory()),
            cfg,
        )
        .expect("open");
        tasm.ingest("v", &video, 30).expect("ingest");
        for f in 0..video.len() {
            for (l, b) in video.ground_truth(f) {
                tasm.add_metadata("v", l, f, b).expect("md");
            }
        }
        let t = (0..3)
            .map(|_| {
                tasm.scan("v", &LabelPredicate::label(object), 0..video.len())
                    .expect("scan")
                    .seconds()
            })
            .fold(f64::INFINITY, f64::min);
        let bytes = tasm.video_size_bytes("v").expect("size");
        prepared.push(Prepared {
            tasm,
            video,
            object,
            untiled_secs: t,
            untiled_bytes: bytes,
        });
    }

    println!("# Figure 9: SOT duration vs query time and storage\n");
    println!("| SOT (s) | improvement % median [IQR] | size vs untiled % median [IQR] | paper |");
    println!("|---|---|---|---|");
    let paper = ["53 / -5%", "", "", "36 / -15%"];
    let mut rows = Vec::new();
    for (si, &ss) in sot_secs.iter().enumerate() {
        let mut improvements = Vec::new();
        let mut sizes = Vec::new();
        for p in prepared.iter_mut() {
            // Re-ingest under SOT duration = GOP length = ss seconds, tiled
            // per SOT around the query object.
            let frames_per_sot = ss * 30;
            let cfg = TasmConfig {
                storage: StorageConfig {
                    gop_len: frames_per_sot,
                    sot_frames: frames_per_sot,
                    ..Default::default()
                },
                workers: 1,
                cache_bytes: 0,
                ..Default::default()
            };
            let tasm = Tasm::open(
                bench_dir(&format!("fig9-{ss}s-{}", p.object)),
                Box::new(MemoryIndex::in_memory()),
                cfg,
            )
            .expect("open");
            let video = &p.video;
            let object = p.object;
            tasm.ingest_with("v", video, 30, |_, frames| {
                let boxes: Vec<_> = frames
                    .clone()
                    .flat_map(|f| video.ground_truth_for(f, object))
                    .collect();
                partition(
                    video.width(),
                    video.height(),
                    &boxes,
                    &micro_partition(Granularity::Fine),
                )
            })
            .expect("ingest");
            for f in 0..video.len() {
                for (l, b) in video.ground_truth(f) {
                    tasm.add_metadata("v", l, f, b).expect("md");
                }
            }
            // Query: 1-second windows over the whole video.
            let mut total = 0.0;
            for start in (0..video.len()).step_by(30) {
                let end = (start + 30).min(video.len());
                total += tasm
                    .scan("v", &LabelPredicate::label(object), start..end)
                    .expect("scan")
                    .seconds();
            }
            // Baseline decoded with the same windowing for fairness.
            let mut base_total = 0.0;
            for start in (0..video.len()).step_by(30) {
                let end = (start + 30).min(video.len());
                base_total += p
                    .tasm
                    .scan("v", &LabelPredicate::label(object), start..end)
                    .expect("scan")
                    .seconds();
            }
            improvements.push(improvement_pct(base_total, total));
            let bytes = tasm.video_size_bytes("v").expect("size");
            sizes.push(100.0 * (bytes as f64 / p.untiled_bytes as f64 - 1.0));
            let _ = p.untiled_secs;
        }
        let imp = Summary::of(&improvements);
        let size = Summary::of(&sizes);
        println!(
            "| {ss} | {} | {} | {} |",
            imp.display(0),
            size.display(0),
            paper[si]
        );
        rows.push(DurationRow {
            sot_seconds: ss,
            improvement: imp,
            size_vs_untiled: size,
        });
    }

    println!("\nShape check: improvement should fall and storage should shrink");
    println!("as SOT duration grows (fewer keyframes, larger tiles).");
    write_result("fig9", &rows);
}
