//! §4.1 — validate the query cost model `C = β·P + γ·T`.
//!
//! The paper fits a linear model over 1,400 (video, query object, layout)
//! decode measurements and reports R² = 0.996. This harness performs the
//! same fit against this repository's software codec: it times object
//! queries under many layouts, collects (pixels, tile-chunks, seconds)
//! samples, and solves the least squares system. It also fits the linear
//! re-encode model `R(s, L)` used by the incremental policies.
//!
//! Run with `cargo run --release -p tasm-bench --bin fit_cost_model`.

use serde::Serialize;
use tasm_bench::{micro_partition, scaled_secs, write_result, BenchVideo};
use tasm_codec::TileLayout;
use tasm_core::{fit_linear, partition, Granularity, WorkSample};
use tasm_data::Dataset;
use tasm_video::FrameSource;

#[derive(Serialize)]
struct FitReport {
    samples: usize,
    beta_seconds_per_sample: f64,
    gamma_seconds_per_chunk: f64,
    r2: f64,
    encode_seconds_per_sample: f64,
    paper_r2: f64,
}

fn main() {
    let duration = scaled_secs(2);
    let mut samples: Vec<WorkSample> = Vec::new();

    let datasets = [
        (Dataset::VisualRoad2K, 11u64),
        (Dataset::VisualRoad2K, 12),
        (Dataset::Xiph, 13),
        (Dataset::Mot16, 14),
        (Dataset::NetflixPublic, 15),
    ];
    println!("# Cost model fit (paper §4.1)\n");
    println!("collecting decode measurements over (video, object, layout) combos...");

    let mut encode_samples: Vec<(u64, f64)> = Vec::new();
    for (ds, seed) in datasets {
        let mut bv = BenchVideo::prepare(ds, duration, seed, &format!("fit-{seed}"));
        let (w, h) = (bv.video.width(), bv.video.height());
        let labels: Vec<&str> = ds.primary_labels().to_vec();

        // Layout suite: untiled, uniform grids, fine/coarse object layouts.
        let mut layouts: Vec<TileLayout> = vec![
            TileLayout::untiled(w, h),
            TileLayout::uniform(w, h, 2, 2).unwrap(),
            TileLayout::uniform(w, h, 3, 3).unwrap(),
            TileLayout::uniform(w, h, 4, 4).unwrap(),
            TileLayout::uniform(w, h, 5, 5).unwrap(),
        ];
        for label in &labels {
            for g in [Granularity::Fine, Granularity::Coarse] {
                let boxes = bv.boxes_for(&[label], 0..bv.video.len());
                layouts.push(partition(w, h, &boxes, &micro_partition(g)));
            }
        }
        layouts.dedup();

        for layout in layouts {
            let l = layout.clone();
            let t0 = std::time::Instant::now();
            bv.apply_layout(|_, _| Some(l.clone()));
            let retile_secs = t0.elapsed().as_secs_f64();
            if !layout.is_untiled() {
                let samples_encoded = (w as u64 * h as u64 * 3 / 2) * bv.video.len() as u64;
                encode_samples.push((samples_encoded, retile_secs));
            }
            for label in &labels {
                // Min of repeats suppresses scheduler noise; the minimum is
                // the standard estimator for deterministic work.
                let mut best: Option<WorkSample> = None;
                for _ in 0..3 {
                    let (secs, pixels, chunks) = bv.time_select(label);
                    if pixels == 0 {
                        continue;
                    }
                    let s = WorkSample {
                        pixels,
                        tile_chunks: chunks,
                        seconds: secs,
                    };
                    best = Some(match best {
                        Some(b) if b.seconds <= s.seconds => b,
                        _ => s,
                    });
                }
                samples.extend(best);
            }
        }
    }

    let fit = fit_linear(&samples);
    // Encode model: single-variable least squares through the origin.
    let (sxx, sxy) = encode_samples
        .iter()
        .fold((0.0f64, 0.0f64), |(sxx, sxy), &(p, s)| {
            (sxx + (p as f64) * (p as f64), sxy + p as f64 * s)
        });
    let encode_spp = if sxx > 0.0 { sxy / sxx } else { 0.0 };

    println!("\n| quantity | this repo | paper |");
    println!("|---|---|---|");
    println!("| samples fitted | {} | ~1400 |", samples.len());
    println!("| β (s/sample) | {:.3e} | n/a (GPU) |", fit.beta);
    println!("| γ (s/tile-chunk) | {:.3e} | n/a (GPU) |", fit.gamma);
    println!("| R² | {:.4} | 0.996 |", fit.r2);
    println!("| encode model (s/sample) | {encode_spp:.3e} | n/a |");
    println!("\nSuggested defaults for `CostModel`/`EncodeModel`:");
    println!(
        "  beta = {:.3e}, gamma = {:.3e}, seconds_per_sample = {:.3e}",
        fit.beta, fit.gamma, encode_spp
    );

    write_result(
        "fit_cost_model",
        &FitReport {
            samples: samples.len(),
            beta_seconds_per_sample: fit.beta,
            gamma_seconds_per_chunk: fit.gamma,
            r2: fit.r2,
            encode_seconds_per_sample: encode_spp,
            paper_r2: 0.996,
        },
    );
}
