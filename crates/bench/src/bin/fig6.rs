//! Figure 6 — headline result: tiling effect on decode cost and quality.
//!
//! (a) For each (video, query object), find the best uniform and the best
//!     non-uniform layout and report the query-time improvement over the
//!     untiled video. Paper: best uniform averages 37%, best non-uniform
//!     51%; non-uniform beats uniform by ~10% on average.
//! (b) PSNR of each tiled video (stitched homomorphically) against the raw
//!     original. Paper: best-uniform ≈ 36 dB, best-non-uniform ≈ 40 dB,
//!     re-encoded-untiled ≈ 46 dB.
//!
//! Run with `cargo run --release -p tasm-bench --bin fig6`.

use serde::Serialize;
use tasm_bench::{
    improvement_pct, micro_partition, scaled_secs, write_result, BenchVideo, Summary,
};
use tasm_codec::{StitchedVideo, TileLayout};
use tasm_core::{partition, Granularity};
use tasm_data::Dataset;
use tasm_video::quality::psnr_sequence;
use tasm_video::FrameSource;

#[derive(Serialize)]
struct Case {
    dataset: &'static str,
    seed: u64,
    object: &'static str,
    untiled_ms: f64,
    best_uniform: String,
    best_uniform_ms: f64,
    best_uniform_improvement_pct: f64,
    best_nonuniform_tiles: u32,
    best_nonuniform_ms: f64,
    best_nonuniform_improvement_pct: f64,
    psnr_uniform_db: f64,
    psnr_nonuniform_db: f64,
    psnr_reencode_db: f64,
}

#[derive(Serialize)]
struct Fig6 {
    cases: Vec<Case>,
    uniform_improvement: Summary,
    nonuniform_improvement: Summary,
    nonuniform_over_uniform: Summary,
    psnr_uniform: Summary,
    psnr_nonuniform: Summary,
    psnr_reencode: Summary,
}

/// Median decode time of repeated SELECTs (min-of-3 per §timing noise).
fn timed(bv: &mut BenchVideo, label: &str) -> f64 {
    (0..3)
        .map(|_| bv.time_select(label).0)
        .fold(f64::INFINITY, f64::min)
}

/// Sequence PSNR of the stored (tiled) video against the raw original.
fn stored_psnr(bv: &BenchVideo) -> f64 {
    let manifest = bv.tasm.manifest(&bv.name).expect("manifest");
    let mut decoded = Vec::new();
    for (i, sot) in manifest.sots.iter().enumerate() {
        let tiles: Vec<_> = (0..sot.layout.tile_count())
            .map(|t| bv.tasm.store().read_tile(&manifest, i, t).expect("tile"))
            .collect();
        let sv = StitchedVideo::stitch(sot.layout.clone(), tiles).expect("stitch");
        let (frames, _) = sv.decode_all().expect("decode");
        decoded.extend(frames);
    }
    let original: Vec<_> = (0..bv.video.len()).map(|f| bv.video.frame(f)).collect();
    psnr_sequence(original.iter(), decoded.iter()).y
}

fn main() {
    let duration = scaled_secs(2);
    let cases_spec: Vec<(Dataset, u64, &str)> = vec![
        (Dataset::VisualRoad2K, 1, "car"),
        (Dataset::VisualRoad2K, 1, "person"),
        (Dataset::VisualRoad2K, 2, "car"),
        (Dataset::VisualRoad4K, 3, "car"),
        (Dataset::NetflixPublic, 4, "bird"),
        (Dataset::NetflixPublic, 4, "person"),
        (Dataset::Xiph, 5, "car"),
        (Dataset::Xiph, 5, "boat"),
        (Dataset::Mot16, 6, "person"),
        (Dataset::Mot16, 6, "car"),
        (Dataset::ElFuenteSparse, 7, "boat"),
    ];

    let mut cases: Vec<Case> = Vec::new();
    println!("# Figure 6: tiling effect on query time and quality\n");
    for (ds, seed, object) in cases_spec {
        let tag = format!("fig6-{}-{seed}-{object}", ds.name());
        let mut bv = BenchVideo::prepare(ds, duration, seed, &tag);
        let (w, h) = (bv.video.width(), bv.video.height());
        let untiled = timed(&mut bv, object);
        // PSNR of the re-encoded untiled copy (decoders are lossy too).
        let psnr_reencode = stored_psnr(&bv);

        // --- best uniform layout ---
        let grids: [(u32, u32); 4] = [(2, 2), (3, 3), (4, 4), (5, 5)];
        let mut best_uniform = (f64::INFINITY, String::new(), 0.0);
        for (r, c) in grids {
            let layout = TileLayout::uniform(w, h, r, c).expect("uniform");
            bv.apply_layout(|_, _| Some(layout.clone()));
            let t = timed(&mut bv, object);
            if t < best_uniform.0 {
                best_uniform = (t, format!("{r}x{c}"), stored_psnr(&bv));
            }
        }

        // --- best non-uniform layout (fine, per-SOT, around the object) ---
        bv.apply_layout(|video, frames| {
            let boxes: Vec<_> = frames
                .clone()
                .flat_map(|f| video.ground_truth_for(f, object))
                .collect();
            Some(partition(w, h, &boxes, &micro_partition(Granularity::Fine)))
        });
        let nonuniform_ms = timed(&mut bv, object);
        let psnr_nonuniform = stored_psnr(&bv);
        let nu_tiles = bv
            .tasm
            .manifest(&bv.name)
            .expect("manifest")
            .sots
            .iter()
            .map(|s| s.layout.tile_count())
            .max()
            .unwrap_or(1);

        let case = Case {
            dataset: ds.name(),
            seed,
            object,
            untiled_ms: untiled * 1e3,
            best_uniform: best_uniform.1.clone(),
            best_uniform_ms: best_uniform.0 * 1e3,
            best_uniform_improvement_pct: improvement_pct(untiled, best_uniform.0),
            best_nonuniform_tiles: nu_tiles,
            best_nonuniform_ms: nonuniform_ms * 1e3,
            best_nonuniform_improvement_pct: improvement_pct(untiled, nonuniform_ms),
            psnr_uniform_db: best_uniform.2,
            psnr_nonuniform_db: psnr_nonuniform,
            psnr_reencode_db: psnr_reencode,
        };
        println!(
            "{} seed {} object {:<8} untiled {:7.1} ms | uniform {} {:6.1} ms ({:+.0}%) | non-uniform {:6.1} ms ({:+.0}%) | PSNR u/nu/re {:.1}/{:.1}/{:.1} dB",
            case.dataset,
            case.seed,
            case.object,
            case.untiled_ms,
            case.best_uniform,
            case.best_uniform_ms,
            case.best_uniform_improvement_pct,
            case.best_nonuniform_ms,
            case.best_nonuniform_improvement_pct,
            case.psnr_uniform_db,
            case.psnr_nonuniform_db,
            case.psnr_reencode_db,
        );
        cases.push(case);
    }

    // Figure 6 reports only the cases that benefit from tiling.
    let benefiting: Vec<&Case> = cases
        .iter()
        .filter(|c| c.best_nonuniform_improvement_pct > 0.0)
        .collect();
    let uni: Vec<f64> = benefiting
        .iter()
        .map(|c| c.best_uniform_improvement_pct)
        .collect();
    let non: Vec<f64> = benefiting
        .iter()
        .map(|c| c.best_nonuniform_improvement_pct)
        .collect();
    let gap: Vec<f64> = benefiting
        .iter()
        .map(|c| c.best_nonuniform_improvement_pct - c.best_uniform_improvement_pct)
        .collect();
    let pu: Vec<f64> = benefiting.iter().map(|c| c.psnr_uniform_db).collect();
    let pn: Vec<f64> = benefiting.iter().map(|c| c.psnr_nonuniform_db).collect();
    let pr: Vec<f64> = benefiting.iter().map(|c| c.psnr_reencode_db).collect();

    let report = Fig6 {
        uniform_improvement: Summary::of(&uni),
        nonuniform_improvement: Summary::of(&non),
        nonuniform_over_uniform: Summary::of(&gap),
        psnr_uniform: Summary::of(&pu),
        psnr_nonuniform: Summary::of(&pn),
        psnr_reencode: Summary::of(&pr),
        cases,
    };

    // ------------------------------------------------------------------
    // 6(b) under a shared bit budget: the paper's encoder is rate
    // controlled, so layouts that compress worse (more tile boundaries
    // severing prediction) are pushed to coarser quantization and lose
    // PSNR. We match every layout to the bitrate the untiled encode
    // achieved and compare quality.
    // ------------------------------------------------------------------
    println!("\n## 6(b) at matched bitrate (rate-controlled encoder)\n");
    println!("| dataset | untiled dB | non-uniform dB | uniform 5x5 dB |");
    println!("|---|---|---|---|");
    let mut rc_untiled = Vec::new();
    let mut rc_nonuniform = Vec::new();
    let mut rc_uniform = Vec::new();
    for (ds, seed, object) in [
        (Dataset::VisualRoad2K, 1u64, "car"),
        (Dataset::Xiph, 5, "car"),
        (Dataset::Mot16, 6, "person"),
    ] {
        let video = ds.build(duration, seed);
        let (w, h) = (video.width(), video.height());
        // Budget: the bits/sample the untiled constant-QP encode needed.
        let probe = BenchVideo::from_video(ds.build(duration, seed), "fig6-rc-probe");
        let untiled_bytes = probe.tasm.video_size_bytes(&probe.name).expect("size");
        let total_samples = (w as u64 * h as u64 * 3 / 2) * video.len() as u64;
        // A deliberately tight budget (60% of what the untiled constant-QP
        // encode used) so the compression penalty of tile boundaries shows
        // up as quantization, as it does under a loaded hardware encoder.
        let millibits = ((untiled_bytes * 8 * 1000 * 6 / 10) / total_samples).max(20) as u32;

        let psnr_at_budget = |layout_for: &dyn Fn(std::ops::Range<u32>) -> TileLayout| -> f64 {
            use tasm_codec::{encode_video, EncoderConfig, RateControl};
            let cfg = EncoderConfig {
                gop_len: 30,
                qp: 28,
                rate: RateControl::TargetRate {
                    millibits_per_sample: millibits,
                },
                ..Default::default()
            };
            let mut decoded = Vec::new();
            let mut start = 0u32;
            while start < video.len() {
                let end = (start + 30).min(video.len());
                let slice = tasm_video::SliceSource::new(&video, start, end - start);
                let layout = layout_for(start..end);
                let (tiles, _) = encode_video(&slice, &layout, &cfg, true).expect("encode");
                let sv = StitchedVideo::stitch(layout, tiles).expect("stitch");
                let (frames, _) = sv.decode_all().expect("decode");
                decoded.extend(frames);
                start = end;
            }
            let original: Vec<_> = (0..video.len()).map(|f| video.frame(f)).collect();
            psnr_sequence(original.iter(), decoded.iter()).y
        };

        let p_untiled = psnr_at_budget(&|_| TileLayout::untiled(w, h));
        let p_uniform = psnr_at_budget(&|_| TileLayout::uniform(w, h, 5, 5).expect("uniform"));
        let p_nonuniform = psnr_at_budget(&|frames| {
            let boxes: Vec<_> = frames
                .clone()
                .flat_map(|f| video.ground_truth_for(f, object))
                .collect();
            partition(w, h, &boxes, &micro_partition(Granularity::Fine))
        });
        println!(
            "| {} | {:.1} | {:.1} | {:.1} |",
            ds.name(),
            p_untiled,
            p_nonuniform,
            p_uniform
        );
        rc_untiled.push(p_untiled);
        rc_nonuniform.push(p_nonuniform);
        rc_uniform.push(p_uniform);
    }
    println!(
        "\nmatched-bitrate medians: untiled {:.1} dB > non-uniform {:.1} dB > 25-tile uniform {:.1} dB",
        tasm_bench::median(&rc_untiled),
        tasm_bench::median(&rc_nonuniform),
        tasm_bench::median(&rc_uniform)
    );
    println!("(paper: 46 dB re-encode > 40 dB non-uniform > 36 dB uniform)");

    println!("\n## Summary (median [IQR]) — paper values in parentheses\n");
    println!("| metric | this repo | paper |");
    println!("|---|---|---|");
    println!(
        "| 6(a) best uniform improvement % | {} | avg 37 |",
        report.uniform_improvement.display(0)
    );
    println!(
        "| 6(a) best non-uniform improvement % | {} | avg 51 |",
        report.nonuniform_improvement.display(0)
    );
    println!(
        "| 6(a) non-uniform gain over uniform (pp) | {} | avg ~10 |",
        report.nonuniform_over_uniform.display(0)
    );
    println!(
        "| 6(b) PSNR best uniform (dB) | {} | ~36 |",
        report.psnr_uniform.display(1)
    );
    println!(
        "| 6(b) PSNR best non-uniform (dB) | {} | ~40 |",
        report.psnr_nonuniform.display(1)
    );
    println!(
        "| 6(b) PSNR re-encoded untiled (dB) | {} | ~46 |",
        report.psnr_reencode.display(1)
    );
    write_result("fig6", &report);
}
