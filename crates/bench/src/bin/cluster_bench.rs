//! Cluster fan-out benchmark: router throughput at 1 and 3 shards against
//! a direct single-node baseline.
//!
//! The working set is sized to be the interesting case for a scale-out
//! tier: the decoded-GOP footprint of the video corpus exceeds one node's
//! cache but fits the *aggregate* cache of three shards. A single node
//! (and a router over a single shard) keeps re-decoding evicted GOPs under
//! a Zipf-skewed workload, while three shards each hold their placement's
//! share resident — so the 3-shard speedup measures what sharding actually
//! buys on this hardware: aggregate cache capacity, not CPU parallelism
//! (CI runs this on a single core).
//!
//! Every case replays the *same* per-thread Zipf request sequence, so the
//! comparison is byte-for-byte the same workload. Results land in
//! `results/BENCH_cluster.json` (acceptance target: 3-shard router
//! throughput >= 2x the single-node baseline). Run with
//! `cargo run --release -p tasm-bench --bin cluster_bench`.

use serde::Serialize;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use tasm_bench::{bench_dir, scaled_count, write_result};
use tasm_client::Connection;
use tasm_cluster::{NodeInfo, Router, RouterConfig, ShardMap};
use tasm_core::{LabelPredicate, PartitionConfig, Query, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_server::{ServerConfig, TasmServer};
use tasm_service::ServiceConfig;
use tasm_video::FrameSource;

const VIDEOS: usize = 6;
const FRAMES: u32 = 60;
/// Per-node decoded-GOP cache: comfortably holds a 3-way shard's 2 videos
/// (~3.7 MB decoded each), nowhere near all 6.
const CACHE_BYTES: u64 = 10 << 20;
const CLIENTS: usize = 2;
const ZIPF_S: f64 = 1.1;

fn cfg() -> TasmConfig {
    TasmConfig {
        storage: StorageConfig {
            gop_len: 10,
            sot_frames: 10,
            ..Default::default()
        },
        partition: PartitionConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        workers: 1,
        cache_bytes: CACHE_BYTES,
        ..Default::default()
    }
}

fn video(i: usize) -> SyntheticVideo {
    SyntheticVideo::new(SceneSpec {
        width: 256,
        height: 160,
        frames: FRAMES,
        seed: 100 + i as u64,
        ..SceneSpec::test_scene()
    })
}

fn open_node(dir: PathBuf) -> Arc<Tasm> {
    Arc::new(Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg()).expect("open store"))
}

fn ingest(tasm: &Tasm, name: &str, v: &SyntheticVideo) {
    tasm.ingest(name, v, 30).expect("ingest");
    for f in 0..v.len() {
        for (l, b) in v.ground_truth(f) {
            tasm.add_metadata(name, l, f, b).expect("metadata");
        }
        tasm.mark_processed(name, f).expect("mark");
    }
}

fn serve(tasm: Arc<Tasm>) -> TasmServer {
    TasmServer::bind(
        tasm,
        ServiceConfig {
            workers: 1,
            queue_depth: 64,
            ..Default::default()
        },
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind shard")
}

/// Deterministic Zipf(s) video picks: thread `t`'s sequence is identical
/// in every case.
fn zipf_sequence(thread: usize, n: usize) -> Vec<usize> {
    let cum: Vec<f64> = {
        let w: Vec<f64> = (0..VIDEOS)
            .map(|i| 1.0 / ((i + 1) as f64).powf(ZIPF_S))
            .collect();
        let total: f64 = w.iter().sum();
        let mut acc = 0.0;
        w.iter()
            .map(|x| {
                acc += x / total;
                acc
            })
            .collect()
    };
    let mut state = 0x9e3779b97f4a7c15u64 ^ (thread as u64).wrapping_mul(0xdeadbeef);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            cum.iter().position(|&c| u < c).unwrap_or(VIDEOS - 1)
        })
        .collect()
}

#[derive(Serialize)]
struct Case {
    name: &'static str,
    shards: usize,
    requests: u64,
    elapsed_s: f64,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Drives `CLIENTS` threads of the shared Zipf sequence against `addr`
/// (a shard or a router — same wire protocol either way).
fn drive(name: &'static str, shards: usize, addr: std::net::SocketAddr, per_thread: usize) -> Case {
    let query = Query::new(LabelPredicate::label("car")).frames(0..FRAMES);
    let barrier = Barrier::new(CLIENTS + 1);
    let mut lat_us: Vec<u64> = Vec::with_capacity(CLIENTS * per_thread);
    let started = Instant::now();
    let mut elapsed_s = 0.0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let (query, barrier) = (&query, &barrier);
                scope.spawn(move || {
                    let seq = zipf_sequence(t, per_thread);
                    let mut conn = Connection::connect(addr).expect("connect");
                    // Warm-up: touch every video once so each case starts
                    // from a populated-as-it-gets cache.
                    for v in 0..VIDEOS {
                        conn.query(&format!("v{v}"), query).expect("warmup");
                    }
                    barrier.wait();
                    let mut lat = Vec::with_capacity(per_thread);
                    for v in seq {
                        let t0 = Instant::now();
                        conn.query(&format!("v{v}"), query).expect("query");
                        lat.push(t0.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        barrier.wait();
        let run0 = Instant::now();
        for h in handles {
            lat_us.extend(h.join().expect("client thread"));
        }
        elapsed_s = run0.elapsed().as_secs_f64();
    });
    let _ = started;
    lat_us.sort_unstable();
    let pct = |p: f64| -> f64 {
        let idx = ((lat_us.len() as f64 * p) as usize).min(lat_us.len() - 1);
        lat_us[idx] as f64 / 1e3
    };
    let requests = lat_us.len() as u64;
    let case = Case {
        name,
        shards,
        requests,
        elapsed_s,
        qps: requests as f64 / elapsed_s,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
    };
    println!(
        "{:<14} {} shard(s): {:>6.1} q/s  p50 {:.1} ms  p95 {:.1} ms  p99 {:.1} ms  ({} reqs in {:.1}s)",
        case.name, case.shards, case.qps, case.p50_ms, case.p95_ms, case.p99_ms, requests, elapsed_s
    );
    case
}

#[derive(Serialize)]
struct Report {
    videos: usize,
    frames: u32,
    cache_bytes_per_node: u64,
    zipf_s: f64,
    clients: usize,
    cases: Vec<Case>,
    /// 3-shard router qps over the direct single-node qps (acceptance
    /// target: >= 2).
    speedup_3shard_vs_single: f64,
}

fn main() {
    let per_thread = scaled_count(150);
    let base = bench_dir("cluster");

    // The single node holds the whole corpus; each of the three shards
    // holds its placement's third.
    println!("ingesting {VIDEOS} videos into 1 single-node store and 3 shard stores...");
    let single = open_node(base.join("single"));
    let shards: Vec<Arc<Tasm>> = (0..3)
        .map(|i| open_node(base.join(format!("n{i}"))))
        .collect();
    for i in 0..VIDEOS {
        let v = video(i);
        ingest(&single, &format!("v{i}"), &v);
        ingest(&shards[i % 3], &format!("v{i}"), &v);
    }
    let single_srv = serve(Arc::clone(&single));
    let shard_srvs: Vec<TasmServer> = shards.iter().map(|t| serve(Arc::clone(t))).collect();

    // One map per fan-out width; videos pinned round-robin so the split is
    // exact (R=1: replication cost is not what this benchmark measures).
    let mk_router = |nodes: Vec<NodeInfo>, tag: &str| -> Router {
        let mut map = ShardMap::new(nodes, 1).expect("map");
        let ids: Vec<String> = map.nodes.iter().map(|n| n.id.clone()).collect();
        for i in 0..VIDEOS {
            map.pin(&format!("v{i}"), vec![ids[i % ids.len()].clone()]);
        }
        let path = base.join(format!("cluster-{tag}.json"));
        map.save(&path).expect("save map");
        Router::bind(
            RouterConfig {
                map_path: path,
                max_inflight: 64,
                shard_io_timeout: Duration::from_secs(30),
                ..Default::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind router")
    };
    let router1 = mk_router(
        vec![NodeInfo {
            id: "s0".to_string(),
            addr: single_srv.local_addr().to_string(),
        }],
        "1shard",
    );
    let router3 = mk_router(
        (0..3)
            .map(|i| NodeInfo {
                id: format!("n{i}"),
                addr: shard_srvs[i].local_addr().to_string(),
            })
            .collect(),
        "3shard",
    );

    let cases = vec![
        drive("single-direct", 1, single_srv.local_addr(), per_thread),
        drive("router-1shard", 1, router1.local_addr(), per_thread),
        drive("router-3shard", 3, router3.local_addr(), per_thread),
    ];
    let speedup = cases[2].qps / cases[0].qps;
    println!("3-shard router speedup vs single node: {speedup:.2}x (target >= 2)");

    router1.shutdown(false);
    router3.shutdown(false);
    single_srv.shutdown();
    for s in shard_srvs {
        s.shutdown();
    }
    std::fs::remove_dir_all(&base).ok();

    let report = Report {
        videos: VIDEOS,
        frames: FRAMES,
        cache_bytes_per_node: CACHE_BYTES,
        zipf_s: ZIPF_S,
        clients: CLIENTS,
        cases,
        speedup_3shard_vs_single: speedup,
    };
    assert!(
        report.speedup_3shard_vs_single >= 2.0,
        "3-shard fan-out must be >= 2x the single node, got {:.2}x",
        report.speedup_3shard_vs_single
    );
    write_result("BENCH_cluster", &report);
}
