//! Figure 8 — non-uniform tile granularity and layout-target microbenchmarks,
//! plus the §5.2.4 cheap-detection study.
//!
//! For sparse and dense videos, measures query-time improvement when the
//! layout is designed around:
//!   (a) the *same* object the query targets,
//!   (b) a *different* object,
//!   (c) *all* detected objects,
//!   (d) a *superset* (query object + 1-2 frequent others),
//! each at fine and coarse granularity. Paper shapes: same ≈ 79/51%
//! (sparse/dense, fine); different hurts, especially dense+coarse; all works
//! on sparse (68%) but not dense (21% fine, worse coarse); fine-grained
//! dominates coarse when the layout is not designed for the query.
//!
//! The cheap-detection section rebuilds (c) with degraded detectors:
//! background subtraction (paper: ≈ −3%), YOLOv3-tiny (≈ 16%), and full
//! YOLO every 5 frames (≈ every-frame − 5pp on sparse).
//!
//! Run with `cargo run --release -p tasm-bench --bin fig8`.

use serde::Serialize;
use std::collections::BTreeMap;
use tasm_bench::{
    improvement_pct, micro_partition, scaled_secs, write_result, BenchVideo, Summary,
};
use tasm_core::{partition, Granularity};
use tasm_data::Dataset;
use tasm_detect::background::BackgroundSubtractor;
use tasm_detect::sampled::SampledDetector;
use tasm_detect::yolo::SimulatedYolo;
use tasm_detect::Detector;
use tasm_video::{FrameSource, Rect};

#[derive(Serialize)]
struct Fig8 {
    /// condition -> granularity -> density -> improvement summary
    panels: BTreeMap<String, Summary>,
    cheap_detection: BTreeMap<String, Summary>,
}

fn time_min(bv: &mut BenchVideo, label: &str) -> f64 {
    (0..3)
        .map(|_| bv.time_select(label).0)
        .fold(f64::INFINITY, f64::min)
}

/// Applies a per-SOT layout around `layout_labels` at `granularity` and
/// returns the improvement for querying `query_label`.
fn run_condition(
    bv: &mut BenchVideo,
    untiled: f64,
    query_label: &str,
    layout_labels: &[&str],
    granularity: Granularity,
) -> f64 {
    let g = granularity;
    bv.apply_layout(|video, frames| {
        let boxes: Vec<Rect> = frames
            .clone()
            .flat_map(|f| {
                video
                    .ground_truth(f)
                    .into_iter()
                    .filter(|(l, _)| layout_labels.contains(l))
                    .map(|(_, b)| b)
            })
            .collect();
        Some(partition(
            video.width(),
            video.height(),
            &boxes,
            &micro_partition(g),
        ))
    });
    improvement_pct(untiled, time_min(bv, query_label))
}

fn main() {
    let duration = scaled_secs(2);
    // (dataset, seed, query object, different object, superset extra)
    let sparse_cases: Vec<(Dataset, u64, &str, &str, &str)> = vec![
        (Dataset::VisualRoad2K, 1, "car", "person", "person"),
        (Dataset::VisualRoad2K, 2, "person", "car", "car"),
        (Dataset::VisualRoad4K, 3, "car", "person", "person"),
        (Dataset::ElFuenteSparse, 4, "boat", "person", "person"),
    ];
    let dense_cases: Vec<(Dataset, u64, &str, &str, &str)> = vec![
        (Dataset::ElFuenteDense, 5, "person", "food", "food"),
        (Dataset::ElFuenteDense, 6, "food", "person", "person"),
        (Dataset::NetflixOpenSource, 7, "person", "sheep", "car"),
        (Dataset::NetflixOpenSource, 8, "sheep", "person", "car"),
    ];

    let mut panels: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut cheap: BTreeMap<String, Vec<f64>> = BTreeMap::new();

    for (density, cases) in [("sparse", sparse_cases), ("dense", dense_cases)] {
        for (ds, seed, query, different, extra) in cases {
            let tag = format!("fig8-{}-{seed}", ds.name());
            let mut bv = BenchVideo::prepare(ds, duration, seed, &tag);
            let untiled = time_min(&mut bv, query);
            let all_labels: Vec<&str> = bv.video.labels();

            for g in [Granularity::Fine, Granularity::Coarse] {
                let gname = match g {
                    Granularity::Fine => "fine",
                    Granularity::Coarse => "coarse",
                };
                let conditions: Vec<(&str, Vec<&str>)> = vec![
                    ("same", vec![query]),
                    ("different", vec![different]),
                    ("all", all_labels.clone()),
                    ("superset", vec![query, extra]),
                ];
                for (cond, labels) in conditions {
                    let imp = run_condition(&mut bv, untiled, query, &labels, g);
                    panels
                        .entry(format!("{cond}/{gname}/{density}"))
                        .or_default()
                        .push(imp);
                }
            }

            // --- §5.2.4 cheap detection: layouts around detector outputs ---
            let detect_layout = |bv: &mut BenchVideo, dets: &BTreeMap<u32, Vec<Rect>>| {
                bv.apply_layout(|video, frames| {
                    let boxes: Vec<Rect> = frames
                        .clone()
                        .flat_map(|f| dets.get(&f).cloned().unwrap_or_default())
                        .collect();
                    Some(partition(
                        video.width(),
                        video.height(),
                        &boxes,
                        &micro_partition(Granularity::Fine),
                    ))
                });
            };
            let collect = |d: &mut dyn Detector, bv: &BenchVideo| {
                let mut map: BTreeMap<u32, Vec<Rect>> = BTreeMap::new();
                for f in 0..bv.video.len() {
                    let truth = bv.video.ground_truth(f);
                    let frame_store;
                    let px = if d.needs_pixels() {
                        frame_store = bv.video.frame(f);
                        Some(&frame_store)
                    } else {
                        None
                    };
                    for det in d.detect(f, px, &truth) {
                        map.entry(f).or_default().push(det.bbox);
                    }
                }
                map
            };

            let mut bg = BackgroundSubtractor::new();
            let dets = collect(&mut bg, &bv);
            detect_layout(&mut bv, &dets);
            cheap
                .entry(format!("bg-subtraction/{density}"))
                .or_default()
                .push(improvement_pct(untiled, time_min(&mut bv, query)));

            let mut tiny = SimulatedYolo::tiny(seed);
            let dets = collect(&mut tiny, &bv);
            detect_layout(&mut bv, &dets);
            cheap
                .entry(format!("yolov3-tiny/{density}"))
                .or_default()
                .push(improvement_pct(untiled, time_min(&mut bv, query)));

            let mut every5 = SampledDetector::new(SimulatedYolo::full(seed), 5);
            let dets = collect(&mut every5, &bv);
            detect_layout(&mut bv, &dets);
            cheap
                .entry(format!("yolov3-every-5/{density}"))
                .or_default()
                .push(improvement_pct(untiled, time_min(&mut bv, query)));
        }
    }

    println!("# Figure 8: tile granularity and layout-target effects\n");
    println!("| condition | granularity | density | improvement % median [IQR] | paper |");
    println!("|---|---|---|---|---|");
    let paper: BTreeMap<&str, &str> = BTreeMap::from([
        ("same/fine/sparse", "79"),
        ("same/fine/dense", "51"),
        ("same/coarse/sparse", "77"),
        ("same/coarse/dense", "42"),
        ("different/fine/sparse", "41"),
        ("different/coarse/sparse", "36"),
        ("different/fine/dense", "<0 possible"),
        ("different/coarse/dense", "<0 possible"),
        ("all/fine/sparse", "68"),
        ("all/coarse/sparse", "50"),
        ("all/fine/dense", "21"),
        ("all/coarse/dense", "~-1 vs fine"),
        ("superset/fine/sparse", "~all"),
        ("superset/coarse/sparse", "~all"),
        ("superset/fine/dense", "~all"),
        ("superset/coarse/dense", "~all"),
    ]);
    let mut summaries = BTreeMap::new();
    for (key, vals) in &panels {
        let s = Summary::of(vals);
        let parts: Vec<&str> = key.split('/').collect();
        println!(
            "| {} | {} | {} | {} | {} |",
            parts[0],
            parts[1],
            parts[2],
            s.display(0),
            paper.get(key.as_str()).unwrap_or(&""),
        );
        summaries.insert(key.clone(), s);
    }

    println!("\n## §5.2.4 cheap detection (fine layouts around detector output)\n");
    println!("| detector | density | improvement % median [IQR] | paper |");
    println!("|---|---|---|---|");
    let paper_cheap: BTreeMap<&str, &str> = BTreeMap::from([
        ("bg-subtraction/sparse", "-3 (all videos)"),
        ("bg-subtraction/dense", "-3 (all videos)"),
        ("yolov3-tiny/sparse", "16 (all videos)"),
        ("yolov3-tiny/dense", "16 (all videos)"),
        ("yolov3-every-5/sparse", "63"),
        ("yolov3-every-5/dense", "5"),
    ]);
    let mut cheap_summaries = BTreeMap::new();
    for (key, vals) in &cheap {
        let s = Summary::of(vals);
        let parts: Vec<&str> = key.split('/').collect();
        println!(
            "| {} | {} | {} | {} |",
            parts[0],
            parts[1],
            s.display(0),
            paper_cheap.get(key.as_str()).unwrap_or(&""),
        );
        cheap_summaries.insert(key.clone(), s);
    }

    write_result(
        "fig8",
        &Fig8 {
            panels: summaries,
            cheap_detection: cheap_summaries,
        },
    );
}
