//! Figure 10 — the not-tiling decision rule.
//!
//! Scatter of measured query-time improvement against the estimated pixel
//! ratio `P(v,q,L) / P(v,q,ω)` over many (video, object, layout) points.
//! Paper finding: thresholding at α = 0.8 captures nearly every layout that
//! would slow queries down; the few improvements forfeited above the
//! threshold are small (< 20%).
//!
//! Run with `cargo run --release -p tasm-bench --bin fig10`.

use serde::Serialize;
use tasm_bench::{improvement_pct, micro_partition, scaled_secs, write_result, BenchVideo};
use tasm_codec::TileLayout;
use tasm_core::{partition, Granularity};
use tasm_data::Dataset;
use tasm_video::Rect;

#[derive(Serialize)]
struct Point {
    dataset: &'static str,
    object: &'static str,
    layout: String,
    pixel_ratio: f64,
    improvement_pct: f64,
}

#[derive(Serialize)]
struct Fig10 {
    alpha: f64,
    points: Vec<Point>,
    /// Layouts that hurt (< 0 improvement) and were correctly rejected.
    hurting_rejected: usize,
    /// Layouts that hurt but would have been accepted (false accepts).
    hurting_accepted: usize,
    /// Helpful layouts rejected by the rule (forfeited improvement).
    helping_rejected: usize,
    /// The largest improvement forfeited by the rule.
    max_forfeited_pct: f64,
}

fn main() {
    let duration = scaled_secs(2);
    let alpha = 0.8;
    let cases: Vec<(Dataset, u64, &str, &str)> = vec![
        (Dataset::VisualRoad2K, 1, "car", "person"),
        (Dataset::VisualRoad2K, 2, "person", "car"),
        (Dataset::NetflixPublic, 3, "bird", "person"),
        (Dataset::Xiph, 4, "car", "boat"),
        (Dataset::Mot16, 5, "person", "car"),
        (Dataset::ElFuenteDense, 6, "person", "food"),
        (Dataset::NetflixOpenSource, 7, "sheep", "person"),
        (Dataset::ElFuenteSparse, 8, "boat", "person"),
    ];

    let mut points: Vec<Point> = Vec::new();
    for (ds, seed, object, other) in cases {
        let tag = format!("fig10-{}-{seed}", ds.name());
        let mut bv = BenchVideo::prepare(ds, duration, seed, &tag);
        let (w, h) = (bv.video.spec().width, bv.video.spec().height);
        let untiled = (0..3)
            .map(|_| bv.time_select(object).0)
            .fold(f64::INFINITY, f64::min);
        let all = bv.video.labels();

        // Layout suite: object layouts (same/different/all, fine+coarse) and
        // uniform grids — a spread of good and bad choices.
        let mut suite: Vec<(String, Vec<&str>, Option<TileLayout>)> = vec![
            ("same/fine".into(), vec![object], None),
            ("same/coarse".into(), vec![object], None),
            ("different/fine".into(), vec![other], None),
            ("different/coarse".into(), vec![other], None),
            ("all/fine".into(), all.clone(), None),
        ];
        suite.push((
            "uniform3x3".into(),
            vec![],
            Some(TileLayout::uniform(w, h, 3, 3).expect("uniform")),
        ));
        suite.push((
            "uniform5x5".into(),
            vec![],
            Some(TileLayout::uniform(w, h, 5, 5).expect("uniform")),
        ));

        for (idx, (name, labels, fixed)) in suite.into_iter().enumerate() {
            let granularity = if name.contains("coarse") {
                Granularity::Coarse
            } else {
                Granularity::Fine
            };
            // Apply per-SOT layouts, tracking the estimated pixel ratio of
            // the whole query under the applied layouts.
            let mut ratio_num = 0.0f64;
            let mut ratio_den = 0.0f64;
            bv.apply_layout(|video, frames| {
                let layout = match &fixed {
                    Some(l) => l.clone(),
                    None => {
                        let boxes: Vec<Rect> = frames
                            .clone()
                            .flat_map(|f| {
                                video
                                    .ground_truth(f)
                                    .into_iter()
                                    .filter(|(l, _)| labels.contains(l))
                                    .map(|(_, b)| b)
                            })
                            .collect();
                        partition(w, h, &boxes, &micro_partition(granularity))
                    }
                };
                // Pixel ratio for the *query* object under this layout.
                let qboxes: Vec<Rect> = frames
                    .clone()
                    .flat_map(|f| video.ground_truth_for(f, object))
                    .collect();
                let mut needed = vec![false; layout.tile_count() as usize];
                for b in &qboxes {
                    for t in layout.tiles_intersecting(b) {
                        needed[t as usize] = true;
                    }
                }
                let covered: u64 = layout
                    .tiles()
                    .filter(|(i, _)| needed[*i as usize])
                    .map(|(_, r)| r.area())
                    .sum();
                if !qboxes.is_empty() {
                    ratio_num += covered as f64;
                    ratio_den += (w as u64 * h as u64) as f64;
                }
                Some(layout)
            });
            let ratio = if ratio_den > 0.0 {
                ratio_num / ratio_den
            } else {
                1.0
            };
            let t = (0..3)
                .map(|_| bv.time_select(object).0)
                .fold(f64::INFINITY, f64::min);
            let _ = idx;
            points.push(Point {
                dataset: ds.name(),
                object,
                layout: name,
                pixel_ratio: ratio,
                improvement_pct: improvement_pct(untiled, t),
            });
        }
    }

    let hurting_rejected = points
        .iter()
        .filter(|p| p.improvement_pct < 0.0 && p.pixel_ratio > alpha)
        .count();
    let hurting_accepted = points
        .iter()
        .filter(|p| p.improvement_pct < 0.0 && p.pixel_ratio <= alpha)
        .count();
    let helping_rejected = points
        .iter()
        .filter(|p| p.improvement_pct > 0.0 && p.pixel_ratio > alpha)
        .count();
    let max_forfeited = points
        .iter()
        .filter(|p| p.pixel_ratio > alpha)
        .map(|p| p.improvement_pct)
        .fold(0.0f64, f64::max);

    println!("# Figure 10: pixel-ratio threshold for the not-tiling rule\n");
    println!("| dataset | object | layout | P(L)/P(ω) | improvement % |");
    println!("|---|---|---|---|---|");
    for p in &points {
        println!(
            "| {} | {} | {} | {:.2} | {:+.0} |",
            p.dataset, p.object, p.layout, p.pixel_ratio, p.improvement_pct
        );
    }
    println!("\nWith α = {alpha}:");
    println!("  layouts that hurt and are rejected by the rule : {hurting_rejected}");
    println!("  layouts that hurt but slip past the rule       : {hurting_accepted}");
    println!("  helpful layouts forfeited by the rule          : {helping_rejected}");
    println!(
        "  largest forfeited improvement                  : {max_forfeited:.0}% (paper: < 20%)"
    );

    write_result(
        "fig10",
        &Fig10 {
            alpha,
            points,
            hurting_rejected,
            hurting_accepted,
            helping_rejected,
            max_forfeited_pct: max_forfeited,
        },
    );
}
