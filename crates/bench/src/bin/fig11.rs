//! Figure 11 + Table 2 — incremental tiling over six query workloads.
//!
//! For each workload (§5.3) and each strategy — not tiled, pre-tile around
//! all objects, incremental-more, incremental-regret — runs the query
//! sequence and reports cumulative decode + re-tiling time, normalized
//! per-query to the not-tiled baseline (so the baseline is the diagonal,
//! exactly as the paper plots it). Table 2 reports the quartiles of the
//! final cumulative value across videos.
//!
//! Paper shapes to check:
//! * W1 (uniform, one class): pre-tiling and incremental-more win;
//!   regret is slow to trigger when queries spread uniformly.
//! * W2 (first 25% of video): both incremental strategies beat pre-tiling.
//! * W3 (Zipf + rare class): regret beats incremental-more.
//! * W4 (class drift): regret adapts without big jumps.
//! * W5 (dense, tiling hopeless): only regret stays near the baseline.
//! * W6 (dense but single class): incremental strategies eventually win;
//!   pre-tiling around everything loses.
//!
//! Run with `cargo run --release -p tasm-bench --bin fig11`.

use serde::Serialize;
use std::collections::BTreeMap;
use tasm_bench::{bench_dir, micro_config, scaled_count, scaled_secs, write_result};
use tasm_core::{run_workload, RunQuery, Strategy, Tasm, WorkloadReport};
use tasm_data::{
    workload1, workload2, workload3, workload4, workload5, workload6, Dataset, Query,
    SyntheticVideo, WorkloadParams,
};
use tasm_detect::yolo::SimulatedYolo;
use tasm_index::MemoryIndex;

const STRATEGIES: [(&str, Strategy); 4] = [
    ("not-tiled", Strategy::NotTiled),
    (
        "all-objects",
        Strategy::PretileAllObjects { then_regret: false },
    ),
    ("incremental-more", Strategy::IncrementalMore),
    ("incremental-regret", Strategy::IncrementalRegret),
];

#[derive(Serialize)]
struct WorkloadResult {
    workload: String,
    /// strategy -> normalized cumulative (median across videos) at each
    /// decile of the query sequence.
    curves: BTreeMap<String, Vec<f64>>,
    /// strategy -> (q1, median, q3) of the final cumulative value — Table 2.
    table2: BTreeMap<String, (f64, f64, f64)>,
}

/// Runs one (video, workload) pair under every strategy, returning the
/// per-strategy cumulative curve normalized by the baseline per-query times.
fn run_video(
    video: &SyntheticVideo,
    queries: &[Query],
    tag: &str,
) -> BTreeMap<&'static str, Vec<f64>> {
    let truth = |f: u32| video.ground_truth(f);
    let run_queries: Vec<RunQuery> = queries
        .iter()
        .map(|q| RunQuery {
            label: q.label.clone(),
            frames: q.frames.clone(),
        })
        .collect();

    let mut reports: BTreeMap<&'static str, WorkloadReport> = BTreeMap::new();
    for (name, strategy) in STRATEGIES {
        let mut tasm = Tasm::open(
            bench_dir(&format!("fig11-{tag}-{name}")),
            Box::new(MemoryIndex::in_memory()),
            micro_config(),
        )
        .expect("open");
        tasm.ingest("v", video, 30).expect("ingest");
        let mut detector = SimulatedYolo::full(1);
        let report = run_workload(
            &mut tasm,
            "v",
            &run_queries,
            strategy,
            &mut detector,
            &truth,
            None,
        )
        .expect("workload");
        reports.insert(name, report);
    }

    // Normalize: each query's cost divided by the baseline cost of the SAME
    // query, accumulated. Queries that decode nothing on the untiled video
    // (no detections in the window) cost ~0 under every strategy; flooring
    // the denominator at 5% of the mean baseline query keeps those ratios
    // from exploding. Pre-tiling's up-front encode is charged with the first
    // query (as the paper does), in units of the mean baseline query.
    let base = &reports["not-tiled"];
    let mean_base = (base.records.iter().map(|r| r.decode_seconds).sum::<f64>()
        / base.records.len().max(1) as f64)
        .max(1e-9);
    let base_costs: Vec<f64> = base
        .records
        .iter()
        .map(|r| r.decode_seconds.max(mean_base * 0.05))
        .collect();
    let mut out = BTreeMap::new();
    for (name, report) in &reports {
        let mut cum = 0.0;
        let mut curve = Vec::with_capacity(report.records.len());
        for (i, r) in report.records.iter().enumerate() {
            let cost = r.decode_seconds + r.retile_seconds;
            if i == 0 {
                cum += report.initial_tile_seconds / mean_base;
            }
            cum += cost / base_costs[i];
            curve.push(cum);
        }
        out.insert(*name, curve);
    }
    out
}

/// Downsamples a curve to 11 checkpoints (0%, 10%, …, 100%).
fn deciles(curve: &[f64]) -> Vec<f64> {
    (0..=10)
        .map(|d| {
            let idx = (d * (curve.len() - 1)) / 10;
            curve[idx]
        })
        .collect()
}

fn main() {
    let dur_sparse = scaled_secs(20);
    let dur_dense = scaled_secs(10);
    let qlen = 30; // one "minute" of the paper ≈ one second here (30 frames)
    let n_seeds = scaled_count(3) as u64;

    let sparse_videos: Vec<SyntheticVideo> = (0..n_seeds)
        .map(|s| Dataset::VisualRoad2K.build(dur_sparse, 100 + s))
        .collect();
    let dense_videos: Vec<SyntheticVideo> = (0..n_seeds)
        .map(|s| {
            if s % 2 == 0 {
                Dataset::ElFuenteDense.build(dur_dense, 200 + s)
            } else {
                Dataset::NetflixOpenSource.build(dur_dense, 200 + s)
            }
        })
        .collect();

    type WorkloadRow = (String, Vec<(usize, Vec<Query>)>, bool);
    let workloads: Vec<WorkloadRow> = {
        let mut w = Vec::new();
        let sparse_params = |seed: u64| WorkloadParams::new(dur_sparse * 30, qlen, 1000 + seed);
        let dense_params = |seed: u64| WorkloadParams::new(dur_dense * 30, qlen, 2000 + seed);
        w.push((
            "W1".to_string(),
            (0..sparse_videos.len())
                .map(|i| (i, workload1(sparse_params(i as u64))))
                .collect(),
            true,
        ));
        w.push((
            "W2".to_string(),
            (0..sparse_videos.len())
                .map(|i| (i, workload2(sparse_params(i as u64))))
                .collect(),
            true,
        ));
        w.push((
            "W3".to_string(),
            (0..sparse_videos.len())
                .map(|i| (i, workload3(sparse_params(i as u64))))
                .collect(),
            true,
        ));
        w.push((
            "W4".to_string(),
            (0..sparse_videos.len())
                .map(|i| (i, workload4(sparse_params(i as u64))))
                .collect(),
            true,
        ));
        w.push((
            "W5".to_string(),
            (0..dense_videos.len())
                .map(|i| {
                    let ds = if i % 2 == 0 {
                        Dataset::ElFuenteDense
                    } else {
                        Dataset::NetflixOpenSource
                    };
                    (i, workload5(dense_params(i as u64), ds.primary_labels()))
                })
                .collect(),
            false,
        ));
        w.push((
            "W6".to_string(),
            (0..dense_videos.len())
                .map(|i| (i, workload6(dense_params(i as u64), "person")))
                .collect(),
            false,
        ));
        w
    };

    // Optional subset filter: TASM_WORKLOADS=W5,W6
    let filter: Option<Vec<String>> = std::env::var("TASM_WORKLOADS")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
    let mut results = Vec::new();
    for (wname, per_video, sparse) in workloads {
        if let Some(f) = &filter {
            if !f.contains(&wname) {
                continue;
            }
        }
        eprintln!("[fig11] running {wname}...");
        let mut finals: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        let mut all_curves: BTreeMap<&'static str, Vec<Vec<f64>>> = BTreeMap::new();
        for (vi, queries) in &per_video {
            let video = if sparse {
                &sparse_videos[*vi]
            } else {
                &dense_videos[*vi]
            };
            let curves = run_video(video, queries, &format!("{wname}-{vi}"));
            for (name, curve) in curves {
                finals
                    .entry(name)
                    .or_default()
                    .push(*curve.last().expect("curve"));
                all_curves.entry(name).or_default().push(deciles(&curve));
            }
        }

        // Median curve across videos per strategy.
        let mut curves: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for (name, vecs) in &all_curves {
            let mut med = Vec::new();
            for d in 0..=10 {
                let mut vals: Vec<f64> = vecs.iter().map(|v| v[d]).collect();
                vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                med.push(vals[vals.len() / 2]);
            }
            curves.insert(name.to_string(), med);
        }
        let mut table2: BTreeMap<String, (f64, f64, f64)> = BTreeMap::new();
        for (name, vals) in &finals {
            let (q1, m, q3) = tasm_bench::quartiles(vals);
            table2.insert(name.to_string(), (q1, m, q3));
        }

        println!(
            "\n## {wname}: cumulative decode + re-tiling time (normalized; baseline = #queries)\n"
        );
        println!("| strategy | 25% | 50% | 75% | 100% | Table 2 final [q1, med, q3] |");
        println!("|---|---|---|---|---|---|");
        for (name, curve) in &curves {
            let t2 = table2[name];
            println!(
                "| {name} | {:.0} | {:.0} | {:.0} | {:.0} | [{:.0}, {:.0}, {:.0}] |",
                curve[2], curve[5], curve[7], curve[10], t2.0, t2.1, t2.2
            );
        }
        results.push(WorkloadResult {
            workload: wname,
            curves,
            table2,
        });
    }

    println!("\nPaper Table 2 medians for comparison (normalized totals):");
    println!("  W1: not-tiled 100, all-objects 65, more 69, regret 91");
    println!("  W2: 100 / 67 / 50 / 53   W3: 100 / 64 / 82 / 57");
    println!("  W4: 200 / 102 / 110 / 103   W5: 200 / 221 / 230 / 200   W6: 200 / 244 / 186 / 186");
    write_result("fig11", &results);
}
