//! MVCC epoch benchmark: re-tile commit latency with and without a held
//! reader.
//!
//! The claim under test is the MVCC design point: a re-tile *publishes* a
//! new layout epoch with a pointer swap and never waits for readers, so
//! commit latency is independent of reader lifetime. The benchmark times
//! the same alternating re-tile sequence twice — once against an idle
//! video, once while a never-draining scan holds an epoch pin and reader
//! threads hammer that pinned epoch with `AS OF` queries — and asserts
//! the held-reader case stays bounded (under the pre-MVCC reader/writer
//! lock it would block until the pin dropped, i.e. forever here).
//!
//! Results land in `results/BENCH_mvcc.json`. Run with
//! `cargo run --release -p tasm-bench --bin mvcc_bench`.

use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;
use tasm_bench::{bench_dir, scaled_count, write_result};
use tasm_codec::TileLayout;
use tasm_core::{LabelPredicate, PartitionConfig, Query, StorageConfig, Tasm, TasmConfig};
use tasm_data::{SceneSpec, SyntheticVideo};
use tasm_index::MemoryIndex;
use tasm_video::FrameSource;

const WIDTH: u32 = 256;
const HEIGHT: u32 = 160;
const FRAMES: u32 = 40;
const READER_THREADS: usize = 2;
/// Hard ceiling on any single commit under a held pin. Generous for CI
/// noise, but finite — the point is that the old design had no bound at
/// all (the pin below never drops while re-tiles run).
const COMMIT_BOUND_MS: f64 = 5_000.0;

fn open() -> Tasm {
    Tasm::open(
        bench_dir("mvcc"),
        Box::new(MemoryIndex::in_memory()),
        TasmConfig {
            storage: StorageConfig {
                gop_len: 10,
                sot_frames: FRAMES,
                ..Default::default()
            },
            partition: PartitionConfig {
                min_tile_width: 32,
                min_tile_height: 32,
                ..Default::default()
            },
            workers: 1,
            cache_bytes: 64 << 20,
            ..Default::default()
        },
    )
    .expect("open store")
}

fn ingest(tasm: &Tasm, video: &SyntheticVideo) {
    tasm.ingest("v", video, 30).expect("ingest");
    for f in 0..video.len() {
        for (l, b) in video.ground_truth(f) {
            tasm.add_metadata("v", l, f, b).expect("metadata");
        }
        tasm.mark_processed("v", f).expect("mark");
    }
}

/// The i-th layout of the alternating re-tile sequence. Consecutive
/// layouts always differ, so every re-tile commits a new epoch.
fn layout(i: usize) -> TileLayout {
    if i.is_multiple_of(2) {
        TileLayout::uniform(WIDTH, HEIGHT, 2, 2).expect("layout")
    } else {
        TileLayout::untiled(WIDTH, HEIGHT)
    }
}

/// Runs `n` re-tiles starting at sequence position `offset`, returning
/// per-commit wall-clock latencies in milliseconds.
fn run_retiles(tasm: &Tasm, offset: usize, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t0 = Instant::now();
            tasm.retile("v", 0, layout(offset + i)).expect("retile");
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

#[derive(Serialize)]
struct Case {
    name: &'static str,
    retiles: usize,
    mean_ms: f64,
    p95_ms: f64,
    max_ms: f64,
}

fn case(name: &'static str, lat_ms: Vec<f64>) -> Case {
    let mut sorted = lat_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p95 = sorted[((sorted.len() as f64 * 0.95) as usize).min(sorted.len() - 1)];
    let c = Case {
        name,
        retiles: lat_ms.len(),
        mean_ms: lat_ms.iter().sum::<f64>() / lat_ms.len() as f64,
        p95_ms: p95,
        max_ms: sorted[sorted.len() - 1],
    };
    println!(
        "{:<14} {} re-tiles: mean {:.1} ms  p95 {:.1} ms  max {:.1} ms",
        c.name, c.retiles, c.mean_ms, c.p95_ms, c.max_ms
    );
    c
}

#[derive(Serialize)]
struct Report {
    frames: u32,
    retiles_per_case: usize,
    reader_threads: usize,
    /// Baseline: the same re-tile sequence against an idle video.
    unpinned: Case,
    /// The measurement: re-tiles while a pin is held open the whole time
    /// and reader threads re-query the pinned epoch concurrently.
    pinned: Case,
    /// `AS OF` queries the reader threads completed during the pinned case.
    as_of_queries_served: u64,
    /// Mean pinned commit latency over the unpinned baseline.
    pinned_over_unpinned_mean: f64,
    /// Live-epoch count while the pin was held (pinned + current) and
    /// after it drained (current only): the GC evidence.
    live_epochs_while_pinned: usize,
    live_epochs_after_drain: usize,
}

fn main() {
    let retiles = scaled_count(8);
    let video = SyntheticVideo::new(SceneSpec {
        width: WIDTH,
        height: HEIGHT,
        frames: FRAMES,
        seed: 42,
        ..SceneSpec::test_scene()
    });
    let tasm = open();
    println!("ingesting {FRAMES} frames, {retiles} re-tiles per case...");
    ingest(&tasm, &video);

    let unpinned = case("unpinned", run_retiles(&tasm, 0, retiles));

    // The held scan: a pin on the now-current epoch that never drops while
    // the re-tiles run, plus readers querying that exact epoch.
    let pin = tasm.pin_epoch("v", None).expect("pin");
    let pinned_epoch = pin.epoch();
    let as_of = Query::new(LabelPredicate::label("car"))
        .frames(0..FRAMES)
        .as_of(pinned_epoch);
    let stop = AtomicBool::new(false);
    let mut served = 0u64;
    let mut pinned_lat = Vec::new();
    let mut live_while_pinned = 0usize;
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..READER_THREADS)
            .map(|_| {
                let (tasm, as_of, stop) = (&tasm, &as_of, &stop);
                scope.spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        tasm.query("v", as_of).expect("as-of query");
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        pinned_lat = run_retiles(&tasm, retiles, retiles);
        live_while_pinned = tasm.live_epochs("v").expect("live").len();
        stop.store(true, Ordering::Relaxed);
        served = readers.into_iter().map(|h| h.join().expect("reader")).sum();
    });
    let pinned = case("pinned-reader", pinned_lat);

    // Every reader drained at its pinned epoch bit-exactly; dropping the
    // pin reclaims it.
    assert_eq!(tasm.current_epoch("v").expect("epoch"), 2 * retiles as u64);
    drop(pin);
    let live_after = tasm.live_epochs("v").expect("live").len();

    let report = Report {
        frames: FRAMES,
        retiles_per_case: retiles,
        reader_threads: READER_THREADS,
        as_of_queries_served: served,
        pinned_over_unpinned_mean: pinned.mean_ms / unpinned.mean_ms,
        unpinned,
        pinned,
        live_epochs_while_pinned: live_while_pinned,
        live_epochs_after_drain: live_after,
    };
    println!(
        "pinned/unpinned mean commit latency: {:.2}x, {} AS OF queries served, live epochs {} -> {}",
        report.pinned_over_unpinned_mean,
        report.as_of_queries_served,
        report.live_epochs_while_pinned,
        report.live_epochs_after_drain
    );

    assert!(
        report.pinned.max_ms <= COMMIT_BOUND_MS,
        "a re-tile commit under a held pin must stay bounded, got {:.1} ms",
        report.pinned.max_ms
    );
    assert!(
        report.as_of_queries_served > 0,
        "readers must make progress while re-tiles commit"
    );
    assert_eq!(
        report.live_epochs_while_pinned, 2,
        "exactly the pinned and current epochs stay live mid-churn"
    );
    assert_eq!(
        report.live_epochs_after_drain, 1,
        "draining the last pin must leave only the current epoch"
    );
    write_result("BENCH_mvcc", &report);
}
