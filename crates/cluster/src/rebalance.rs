//! Rebalancing: moving a video between shards without interrupting — or
//! corrupting — the query stream.
//!
//! The move reuses the staged-commit shape of the storage layer's retile
//! protocol, lifted to the cluster:
//!
//! 1. **Copy** — the source primary is asked (`PushVideo`) to replicate
//!    the video in full to the target; the target installs it with the
//!    atomic manifest-publish protocol and acks.
//! 2. **Verify** — the source's and target's canonical manifest JSON must
//!    be byte-identical: both nodes hold the same layout at the same
//!    epochs, which (with verbatim tile bytes) makes their answers
//!    bit-identical.
//! 3. **Flip** — the shard map pins the video to its new replica set and
//!    bumps the epoch; the save is a temp-file + rename, so routers
//!    reload either the old placement or the new one, never a torn map.
//!    This is the commit point.
//! 4. **GC** — the node leaving the replica set drops its copy
//!    (`RemoveVideo`). The shard drains in-flight scans by epoch refcount
//!    — each query holds a reader pin on the MVCC layout epoch it planned
//!    against, and the remove waits until the last pin drops — so a query
//!    routed before the flip completes bit-exactly.
//!
//! A crash before the flip leaves an extra, unreferenced copy on the
//! target (re-running the rebalance converges); a crash after the flip
//! leaves the source copy for a later GC. Neither intermediate state can
//! serve wrong bytes.

use crate::map::ShardMap;
use std::net::ToSocketAddrs;
use std::path::Path;
use std::time::Duration;
use tasm_client::Connection;

/// What a completed rebalance did.
#[derive(Debug, Clone)]
pub struct RebalanceReport {
    /// The moved video.
    pub video: String,
    /// Replica node ids before the move (first = primary).
    pub from: Vec<String>,
    /// Replica node ids after the move (first = the new primary).
    pub to: Vec<String>,
    /// The shard-map epoch the flip published.
    pub epoch: u64,
    /// Nodes whose copy was garbage-collected.
    pub removed: Vec<String>,
}

/// Moves `video` so that node `to` becomes its primary, following the
/// copy → verify → flip → GC protocol above. `timeout` bounds every
/// socket operation against the nodes involved.
pub fn rebalance(
    map_path: &Path,
    video: &str,
    to: &str,
    timeout: Duration,
) -> Result<RebalanceReport, String> {
    let mut map = ShardMap::load(map_path).map_err(|e| e.to_string())?;
    let target = map
        .node(to)
        .ok_or_else(|| format!("unknown target node '{to}'"))?
        .clone();
    let current: Vec<(String, String)> = map
        .replica_set(video)
        .into_iter()
        .map(|n| (n.id.clone(), n.addr.clone()))
        .collect();
    let source = current
        .first()
        .cloned()
        .ok_or_else(|| "empty replica set".to_string())?;
    if source.0 == to {
        return Err(format!("'{video}' is already primary on '{to}'"));
    }

    // Copy: the source owns the bytes and drives the full sync; its ack
    // covers the target's durable install.
    let mut src = connect(&source.1, timeout)?;
    if !current.iter().any(|(id, _)| id == to) {
        src.push_video(video, &target.addr)
            .map_err(|e| format!("copy to '{to}' failed: {e}"))?;
    }

    // Verify: canonical manifest bytes must match before any flip.
    let want = src
        .manifest(video)
        .map_err(|e| format!("source manifest read failed: {e}"))?;
    let mut dst = connect(&target.addr, timeout)?;
    let got = dst
        .manifest(video)
        .map_err(|e| format!("target manifest read failed: {e}"))?;
    if want != got {
        return Err(format!(
            "verify failed: source and target manifests differ ({} vs {} bytes)",
            want.len(),
            got.len()
        ));
    }

    // Flip: the new set is the target followed by the old backups; the
    // old primary leaves. The atomic save is the commit point.
    let replicas = map.replicas as usize;
    let mut new_set: Vec<String> = vec![to.to_string()];
    for (id, _) in current.iter().skip(1) {
        if new_set.len() == replicas {
            break;
        }
        if id != to {
            new_set.push(id.clone());
        }
    }
    map.pin(video, new_set.clone());
    map.save(map_path).map_err(|e| e.to_string())?;
    let epoch = map.epoch;

    // GC: every node that left the set drops its copy. The flip already
    // happened — a GC failure (e.g. the old primary died) leaves only a
    // harmless unreferenced copy, reported but not fatal.
    let mut removed = Vec::new();
    for (id, addr) in &current {
        if new_set.contains(id) {
            continue;
        }
        let gc = connect(addr, timeout).and_then(|mut conn| {
            conn.remove_video(video)
                .map_err(|e| format!("remove on '{id}' failed: {e}"))
        });
        if gc.is_ok() {
            removed.push(id.clone());
        }
    }

    Ok(RebalanceReport {
        video: video.to_string(),
        from: current.into_iter().map(|(id, _)| id).collect(),
        to: new_set,
        epoch,
        removed,
    })
}

fn connect(addr: &str, timeout: Duration) -> Result<Connection, String> {
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address '{addr}': {e}"))?
        .next()
        .ok_or_else(|| format!("address '{addr}' resolves to nothing"))?;
    let conn = Connection::connect_timeout(&sock, timeout)
        .map_err(|e| format!("node at {addr} unreachable: {e}"))?;
    conn.set_io_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    Ok(conn)
}
