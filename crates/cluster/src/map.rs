//! The shard map: deterministic placement of videos onto cluster nodes.
//!
//! Placement uses rendezvous (highest-random-weight) hashing: every
//! `(node, video)` pair gets a pseudo-random score from a fixed mixing
//! function, and a video's replica set is the `R` live nodes with the
//! highest scores. Two properties follow directly:
//!
//! * **Determinism.** Any process holding the same map epoch computes the
//!   same placement — the router, the rebalancer, and a test twin agree
//!   without coordination.
//! * **Minimal disruption.** Adding or removing a node only moves the
//!   videos whose top-`R` set that node enters or leaves — on average
//!   `K/N` of `K` videos for `N` nodes — because every other pair's
//!   scores are untouched. The property test below pins this.
//!
//! Rebalance overrides are expressed as *pins*: an explicit replica-set
//! prefix for one video that takes precedence over rendezvous order. The
//! map is serialized to `cluster.json` with a CRC-framed header line, and
//! every mutation bumps its `epoch` so routers can reload on change and
//! in-flight work can name the placement generation it used.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::Path;

/// One cluster member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Stable node identifier (used for hashing — renaming a node moves
    /// its data).
    pub id: String,
    /// `host:port` the node's `tasm serve` listens on.
    pub addr: String,
}

/// An explicit placement override for one video (rebalance target).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pin {
    /// Video name.
    pub video: String,
    /// Node ids serving the video, in priority order (first = primary).
    pub nodes: Vec<String>,
}

/// The cluster's placement state: members, replication factor, epoch, and
/// per-video pins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// Placement generation; bumped on every mutation that can move data.
    pub epoch: u64,
    /// Replica-set size (`R`): each video lives on `R` nodes, the first
    /// being its primary.
    pub replicas: u32,
    /// Cluster members.
    pub nodes: Vec<NodeInfo>,
    /// Per-video placement overrides, in no particular order.
    pub pins: Vec<Pin>,
}

/// Shard-map failures (I/O, framing, semantic validation).
#[derive(Debug)]
pub enum MapError {
    /// Reading or writing the map file failed.
    Io(std::io::Error),
    /// The file is not a framed shard map, or its CRC does not match.
    Corrupt(String),
    /// The map's contents are inconsistent (duplicate ids, zero replicas).
    Invalid(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Io(e) => write!(f, "shard map I/O: {e}"),
            MapError::Corrupt(m) => write!(f, "shard map corrupt: {m}"),
            MapError::Invalid(m) => write!(f, "shard map invalid: {m}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<std::io::Error> for MapError {
    fn from(e: std::io::Error) -> Self {
        MapError::Io(e)
    }
}

/// Magic first token of the framed map file.
const MAP_MAGIC: &str = "TASMCLUSTERMAP";
/// Format version of the framed map file.
const MAP_VERSION: u32 = 1;

impl ShardMap {
    /// A fresh epoch-1 map over `nodes` with `replicas`-way replication.
    pub fn new(nodes: Vec<NodeInfo>, replicas: u32) -> Result<ShardMap, MapError> {
        let map = ShardMap {
            epoch: 1,
            replicas,
            nodes,
            pins: Vec::new(),
        };
        map.validate()?;
        Ok(map)
    }

    /// Checks structural invariants: at least one node, distinct ids,
    /// `1 ≤ replicas ≤ nodes`.
    pub fn validate(&self) -> Result<(), MapError> {
        if self.nodes.is_empty() {
            return Err(MapError::Invalid("no nodes".to_string()));
        }
        if self.replicas == 0 {
            return Err(MapError::Invalid("replicas must be ≥ 1".to_string()));
        }
        if self.replicas as usize > self.nodes.len() {
            return Err(MapError::Invalid(format!(
                "replicas {} exceeds node count {}",
                self.replicas,
                self.nodes.len()
            )));
        }
        let mut ids = BTreeSet::new();
        for n in &self.nodes {
            if !ids.insert(n.id.as_str()) {
                return Err(MapError::Invalid(format!("duplicate node id '{}'", n.id)));
            }
        }
        Ok(())
    }

    /// The member with id `id`.
    pub fn node(&self, id: &str) -> Option<&NodeInfo> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// A video's replica set among nodes not in `down`: pinned nodes
    /// first (in pin order), then rendezvous order, truncated to
    /// [`ShardMap::replicas`]. The first entry is the node the router
    /// tries first — when a primary is in `down`, its backup moves up and
    /// serves, which *is* the failover promotion.
    pub fn placement(&self, video: &str, down: &BTreeSet<String>) -> Vec<&NodeInfo> {
        let mut out: Vec<&NodeInfo> = Vec::with_capacity(self.replicas as usize);
        let mut taken: BTreeSet<&str> = BTreeSet::new();
        if let Some(pin) = self.pins.iter().find(|p| p.video == video) {
            for id in &pin.nodes {
                if out.len() == self.replicas as usize {
                    break;
                }
                if down.contains(id) || taken.contains(id.as_str()) {
                    continue;
                }
                if let Some(n) = self.node(id) {
                    taken.insert(&n.id);
                    out.push(n);
                }
            }
        }
        for n in self.rendezvous_order(video) {
            if out.len() == self.replicas as usize {
                break;
            }
            if down.contains(&n.id) || taken.contains(n.id.as_str()) {
                continue;
            }
            taken.insert(&n.id);
            out.push(n);
        }
        out
    }

    /// A video's durable replica set (nobody marked down).
    pub fn replica_set(&self, video: &str) -> Vec<&NodeInfo> {
        self.placement(video, &BTreeSet::new())
    }

    /// All members ordered by descending rendezvous score for `video`
    /// (ties broken by id, which cannot recur for distinct ids).
    pub fn rendezvous_order(&self, video: &str) -> Vec<&NodeInfo> {
        let mut scored: Vec<(u64, &NodeInfo)> = self
            .nodes
            .iter()
            .map(|n| (rendezvous_score(&n.id, video), n))
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.id.cmp(&b.1.id)));
        scored.into_iter().map(|(_, n)| n).collect()
    }

    /// Installs (or replaces) the pin for `video` and bumps the epoch —
    /// the rebalancer's commit point once the copy is verified.
    pub fn pin(&mut self, video: &str, nodes: Vec<String>) {
        self.pins.retain(|p| p.video != video);
        self.pins.push(Pin {
            video: video.to_string(),
            nodes,
        });
        self.epoch += 1;
    }

    /// Serializes the map: a framed header line (magic, version, CRC32 of
    /// the body) followed by the JSON body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = serde_json::to_vec_pretty(self).expect("shard map serializes");
        let mut out =
            format!("{MAP_MAGIC} v{MAP_VERSION} crc32={:08x}\n", crc32(&body)).into_bytes();
        out.extend_from_slice(&body);
        out
    }

    /// Parses a framed map, verifying magic, version, CRC, and the
    /// structural invariants.
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardMap, MapError> {
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| MapError::Corrupt("missing header line".to_string()))?;
        let header = std::str::from_utf8(&bytes[..nl])
            .map_err(|_| MapError::Corrupt("header is not UTF-8".to_string()))?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some(MAP_MAGIC) {
            return Err(MapError::Corrupt("bad magic".to_string()));
        }
        match parts.next() {
            Some(v) if v == format!("v{MAP_VERSION}") => {}
            other => return Err(MapError::Corrupt(format!("unsupported version {other:?}"))),
        }
        let crc_field = parts
            .next()
            .and_then(|f| f.strip_prefix("crc32="))
            .ok_or_else(|| MapError::Corrupt("missing crc field".to_string()))?;
        let want = u32::from_str_radix(crc_field, 16)
            .map_err(|_| MapError::Corrupt("unparsable crc".to_string()))?;
        let body = &bytes[nl + 1..];
        let got = crc32(body);
        if got != want {
            return Err(MapError::Corrupt(format!(
                "crc mismatch: header {want:08x}, body {got:08x}"
            )));
        }
        let map: ShardMap = serde_json::from_slice(body)
            .map_err(|e| MapError::Corrupt(format!("body does not parse: {e}")))?;
        map.validate()?;
        Ok(map)
    }

    /// Atomically writes the map to `path` (temp file + rename, fsynced),
    /// so a reader never observes a torn map and a crash leaves either the
    /// old epoch or the new one.
    pub fn save(&self, path: &Path) -> Result<(), MapError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        let f = std::fs::File::open(&tmp)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and verifies a map from `path`.
    pub fn load(path: &Path) -> Result<ShardMap, MapError> {
        ShardMap::from_bytes(&std::fs::read(path)?)
    }
}

/// The rendezvous score of `(node, video)`: FNV-1a over both strings,
/// finalized with the splitmix64 mixer so single-bit input differences
/// diffuse over the whole score.
pub fn rendezvous_score(node: &str, video: &str) -> u64 {
    splitmix64(fnv64(node.as_bytes()) ^ fnv64(video.as_bytes()).rotate_left(32))
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// CRC-32 (IEEE, reflected polynomial `0xEDB88320`), bitwise — the map
/// file is small and read rarely, so no table is warranted.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn nodes(n: usize) -> Vec<NodeInfo> {
        (0..n)
            .map(|i| NodeInfo {
                id: format!("n{i}"),
                addr: format!("127.0.0.1:{}", 7000 + i),
            })
            .collect()
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_map_and_detects_corruption() {
        let mut map = ShardMap::new(nodes(3), 2).unwrap();
        map.pin("v7", vec!["n2".to_string(), "n0".to_string()]);
        let bytes = map.to_bytes();
        assert_eq!(ShardMap::from_bytes(&bytes).unwrap(), map);

        // Any body flip must be caught by the CRC.
        let mut torn = bytes.clone();
        let last = torn.len() - 2;
        torn[last] ^= 0x40;
        assert!(matches!(
            ShardMap::from_bytes(&torn),
            Err(MapError::Corrupt(_))
        ));
    }

    #[test]
    fn pins_override_and_bump_epoch() {
        let mut map = ShardMap::new(nodes(4), 2).unwrap();
        let before = map.epoch;
        map.pin("vid", vec!["n3".to_string(), "n1".to_string()]);
        assert_eq!(map.epoch, before + 1);
        let set: Vec<&str> = map
            .replica_set("vid")
            .iter()
            .map(|n| n.id.as_str())
            .collect();
        assert_eq!(set, ["n3", "n1"]);
    }

    #[test]
    fn down_primary_promotes_next_candidate() {
        let map = ShardMap::new(nodes(4), 2).unwrap();
        let healthy = map.replica_set("clip");
        let mut down = BTreeSet::new();
        down.insert(healthy[0].id.clone());
        let failed_over = map.placement("clip", &down);
        assert_eq!(failed_over.len(), 2);
        // The old backup is promoted to primary...
        assert_eq!(failed_over[0].id, healthy[1].id);
        // ...and the old primary serves nothing.
        assert!(failed_over.iter().all(|n| n.id != healthy[0].id));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Replica sets never collapse onto fewer than R distinct nodes
        /// while R live nodes exist.
        #[test]
        fn replica_sets_are_distinct(n in 2usize..8, r in 1u32..4, seed in 0u64..1000) {
            let r = r.min(n as u32);
            let map = ShardMap::new(nodes(n), r).unwrap();
            for v in 0..50u64 {
                let set = map.replica_set(&format!("video-{}", v.wrapping_mul(seed + 1)));
                prop_assert_eq!(set.len(), r as usize);
                let ids: BTreeSet<&str> = set.iter().map(|x| x.id.as_str()).collect();
                prop_assert_eq!(ids.len(), r as usize);
            }
        }

        /// Adding one node moves only ~K/N videos: every video whose
        /// replica set changed must have the new node in its new set, and
        /// the churn stays well under half the catalog.
        #[test]
        fn node_add_moves_only_its_share(n in 3usize..8, seed in 0u64..1000) {
            let before = ShardMap::new(nodes(n), 2).unwrap();
            let mut grown = nodes(n);
            grown.push(NodeInfo { id: "n-new".to_string(), addr: "127.0.0.1:9999".to_string() });
            let after = ShardMap::new(grown, 2).unwrap();

            const K: u64 = 120;
            let mut moved = 0usize;
            for v in 0..K {
                let name = format!("clip-{}-{seed}", v);
                let old: Vec<String> =
                    before.replica_set(&name).iter().map(|x| x.id.clone()).collect();
                let new: Vec<String> =
                    after.replica_set(&name).iter().map(|x| x.id.clone()).collect();
                if old != new {
                    moved += 1;
                    // Disruption is *only* the new node entering a set.
                    prop_assert!(new.iter().any(|id| id == "n-new"));
                }
            }
            // Expected churn ≈ R·K/(N+1); allow generous slack above the
            // mean but require it far from "everything moved".
            let expect = 2.0 * K as f64 / (n as f64 + 1.0);
            prop_assert!(
                (moved as f64) < 2.5 * expect + 8.0,
                "moved {} of {} videos (expected ≈{:.0})", moved, K, expect
            );
        }

        /// Removing a node strands only the videos it served: every other
        /// replica set is unchanged.
        #[test]
        fn node_remove_touches_only_its_videos(n in 3usize..8, seed in 0u64..1000) {
            let before = ShardMap::new(nodes(n), 2).unwrap();
            let removed = format!("n{}", seed as usize % n);
            let shrunk: Vec<NodeInfo> =
                nodes(n).into_iter().filter(|x| x.id != removed).collect();
            let after = ShardMap::new(shrunk, 2).unwrap();

            for v in 0..120u64 {
                let name = format!("cam-{}-{seed}", v);
                let old: Vec<String> =
                    before.replica_set(&name).iter().map(|x| x.id.clone()).collect();
                let new: Vec<String> =
                    after.replica_set(&name).iter().map(|x| x.id.clone()).collect();
                if !old.contains(&removed) {
                    prop_assert_eq!(old, new);
                } else {
                    prop_assert!(new.iter().all(|id| *id != removed));
                }
            }
        }
    }
}
