//! # tasm-cluster: the sharded serving layer
//!
//! Scales the single-node TASM server out to a cluster while keeping the
//! system's defining invariant: **queries return bit-identical results**
//! no matter which replica answers, before or after a failover, during
//! and after a rebalance.
//!
//! ```text
//!                         clients (tasm-proto, unchanged)
//!                                   │
//!                                   ▼
//!                        ┌─────────────────────┐   cluster.json
//!                        │   Router            │◄── (epoch-framed
//!                        │  placement + retry  │     shard map)
//!                        │  admission control  │
//!                        │  health / failover  │
//!                        └──────┬──────┬───────┘
//!                 Query ────────┘      └──────── StatsRequest fan-out
//!                        ▼                    ▼
//!              ┌──────────────┐      ┌──────────────┐
//!              │ shard n1     │      │ shard n2     │   … tasm serve
//!              │ (primary for │─────►│ (backup for  │
//!              │  video A)    │ repl │  video A)    │
//!              └──────────────┘      └──────────────┘
//!                 StageSot* + CommitVideo/CommitSot + IndexState,
//!                 each acked before the primary reports durability
//! ```
//!
//! Four cooperating pieces:
//!
//! * [`ShardMap`] — deterministic rendezvous-hash placement of videos
//!   onto nodes with `R`-way replica sets, serialized as a CRC-framed,
//!   epoch-versioned `cluster.json`.
//! * [`Replicator`] / [`apply_record`] — primary→backup shipping of
//!   manifests, verbatim tile bytes, and semantic-index state; re-tile
//!   commits replicate *before* they count as durable
//!   ([`ReplicatorHook`] plugs into the retile daemon).
//! * [`Router`] — a `tasm-proto` front-end fanning queries to the owning
//!   shard, failing over to backups, merging cluster-wide statistics,
//!   and draining the cluster in order on shutdown.
//! * [`rebalance`] — moves a video with the staged-commit shape:
//!   copy → verify (byte-equal manifests) → flip the map epoch → GC.
//!
//! Why bit-exactness survives all of this: tile bytes are replicated
//! verbatim, so replica tile files are byte-identical; decode is
//! deterministic; and every layout change (re-tile replication, video
//! install, removal) publishes a new MVCC layout epoch while in-flight
//! scans keep reading the epoch they pinned, so any scan observes exactly
//! one layout epoch end to end. The replicated epoch watermark is the
//! same [`VideoManifest::epoch`](tasm_core::VideoManifest) value queries
//! can pin with `AS OF`.

mod map;
mod rebalance;
mod replicate;
mod router;

pub use map::{crc32, rendezvous_score, MapError, NodeInfo, Pin, ShardMap};
pub use rebalance::{rebalance, RebalanceReport};
pub use replicate::{
    apply_record, layout_epoch, manifest_json, push_video, Replicator, ReplicatorHook, StagedSots,
};
pub use router::{ClusterShutdownReport, Router, RouterConfig, RouterStats, ShardShutdownReport};

use tasm_service::ServiceStats;

/// Merges one shard's [`ServiceStats`] into a cluster aggregate:
/// counters and planner/dedup accounting are summed, queue depth takes
/// the maximum, and the latency histograms merge bucket-wise (they share
/// fixed log-scale bucket boundaries, so the merge is exact).
pub fn merge_stats(into: &mut ServiceStats, s: &ServiceStats) {
    into.submitted += s.submitted;
    into.completed += s.completed;
    into.failed += s.failed;
    into.samples_decoded += s.samples_decoded;
    into.samples_reused += s.samples_reused;
    into.cache_hits += s.cache_hits;
    into.cache_misses += s.cache_misses;
    into.shared += s.shared;
    into.plan += s.plan;
    into.retile_ops += s.retile_ops;
    into.retile_errors += s.retile_errors;
    into.queue_peak = into.queue_peak.max(s.queue_peak);
    into.latency += s.latency;
}

#[cfg(test)]
mod tests {
    use super::merge_stats;
    use std::time::Duration;
    use tasm_service::ServiceStats;

    fn stats_with(latencies_micros: &[u64], submitted: u64, queue_peak: u64) -> ServiceStats {
        let mut s = ServiceStats {
            submitted,
            completed: submitted,
            queue_peak,
            ..ServiceStats::default()
        };
        for &us in latencies_micros {
            s.latency.record(Duration::from_micros(us));
        }
        s
    }

    #[test]
    fn merging_an_empty_shard_is_the_identity() {
        let mut merged = stats_with(&[700, 900, 1_200], 3, 5);
        let before_count = merged.latency.count;
        let before_p95 = merged.latency.p95();
        merge_stats(&mut merged, &ServiceStats::default());
        assert_eq!(merged.submitted, 3);
        assert_eq!(merged.queue_peak, 5);
        assert_eq!(merged.latency.count, before_count);
        assert_eq!(merged.latency.p95(), before_p95);
    }

    #[test]
    fn merge_into_empty_reproduces_the_source() {
        let src = stats_with(&[700, 900, 1_200], 3, 5);
        let mut merged = ServiceStats::default();
        merge_stats(&mut merged, &src);
        assert_eq!(merged.submitted, src.submitted);
        assert_eq!(merged.latency.count, src.latency.count);
        assert_eq!(merged.latency.buckets, src.latency.buckets);
        assert_eq!(merged.latency.total_micros, src.latency.total_micros);
    }

    #[test]
    fn queue_peak_takes_the_maximum_not_the_sum() {
        let mut merged = stats_with(&[], 0, 7);
        merge_stats(&mut merged, &stats_with(&[], 0, 3));
        assert_eq!(merged.queue_peak, 7);
        merge_stats(&mut merged, &stats_with(&[], 0, 11));
        assert_eq!(merged.queue_peak, 11);
    }

    #[test]
    fn disjoint_latency_ranges_keep_both_tails_after_merge() {
        // Shard A: 60 fast queries (~3 µs). Shard B: 40 slow (~2 s).
        let a = stats_with(&vec![3; 60], 60, 1);
        let b = stats_with(&vec![2_000_000; 40], 40, 2);
        let mut merged = ServiceStats::default();
        merge_stats(&mut merged, &a);
        merge_stats(&mut merged, &b);
        assert_eq!(merged.latency.count, 100);
        // The fixed log-scale buckets make the merge exact: the median
        // stays in the fast band and p95 lands in the slow band.
        let p50 = merged.latency.p50().as_micros() as u64;
        assert!((2..=4).contains(&p50), "p50 = {p50}µs");
        let p95 = merged.latency.p95().as_micros() as u64;
        assert!((1_048_576..=4_194_304).contains(&p95), "p95 = {p95}µs");
    }
}
