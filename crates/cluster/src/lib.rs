//! # tasm-cluster: the sharded serving layer
//!
//! Scales the single-node TASM server out to a cluster while keeping the
//! system's defining invariant: **queries return bit-identical results**
//! no matter which replica answers, before or after a failover, during
//! and after a rebalance.
//!
//! ```text
//!                         clients (tasm-proto, unchanged)
//!                                   │
//!                                   ▼
//!                        ┌─────────────────────┐   cluster.json
//!                        │   Router            │◄── (epoch-framed
//!                        │  placement + retry  │     shard map)
//!                        │  admission control  │
//!                        │  health / failover  │
//!                        └──────┬──────┬───────┘
//!                 Query ────────┘      └──────── StatsRequest fan-out
//!                        ▼                    ▼
//!              ┌──────────────┐      ┌──────────────┐
//!              │ shard n1     │      │ shard n2     │   … tasm serve
//!              │ (primary for │─────►│ (backup for  │
//!              │  video A)    │ repl │  video A)    │
//!              └──────────────┘      └──────────────┘
//!                 StageSot* + CommitVideo/CommitSot + IndexState,
//!                 each acked before the primary reports durability
//! ```
//!
//! Four cooperating pieces:
//!
//! * [`ShardMap`] — deterministic rendezvous-hash placement of videos
//!   onto nodes with `R`-way replica sets, serialized as a CRC-framed,
//!   epoch-versioned `cluster.json`.
//! * [`Replicator`] / [`apply_record`] — primary→backup shipping of
//!   manifests, verbatim tile bytes, and semantic-index state; re-tile
//!   commits replicate *before* they count as durable
//!   ([`ReplicatorHook`] plugs into the retile daemon).
//! * [`Router`] — a `tasm-proto` front-end fanning queries to the owning
//!   shard, failing over to backups, merging cluster-wide statistics,
//!   and draining the cluster in order on shutdown.
//! * [`rebalance`] — moves a video with the staged-commit shape:
//!   copy → verify (byte-equal manifests) → flip the map epoch → GC.
//!
//! Why bit-exactness survives all of this: tile bytes are replicated
//! verbatim, so replica tile files are byte-identical; decode is
//! deterministic; and every layout change (re-tile replication, video
//! install, removal) publishes a new MVCC layout epoch while in-flight
//! scans keep reading the epoch they pinned, so any scan observes exactly
//! one layout epoch end to end. The replicated epoch watermark is the
//! same [`VideoManifest::epoch`](tasm_core::VideoManifest) value queries
//! can pin with `AS OF`.

mod map;
mod rebalance;
mod replicate;
mod router;

pub use map::{crc32, rendezvous_score, MapError, NodeInfo, Pin, ShardMap};
pub use rebalance::{rebalance, RebalanceReport};
pub use replicate::{
    apply_record, layout_epoch, manifest_json, push_video, Replicator, ReplicatorHook, StagedSots,
};
pub use router::{ClusterShutdownReport, Router, RouterConfig, RouterStats, ShardShutdownReport};

use tasm_service::ServiceStats;

/// Merges one shard's [`ServiceStats`] into a cluster aggregate:
/// counters and planner/dedup accounting are summed, queue depth takes
/// the maximum, and the latency histograms merge bucket-wise (they share
/// fixed log-scale bucket boundaries, so the merge is exact).
pub fn merge_stats(into: &mut ServiceStats, s: &ServiceStats) {
    into.submitted += s.submitted;
    into.completed += s.completed;
    into.failed += s.failed;
    into.samples_decoded += s.samples_decoded;
    into.samples_reused += s.samples_reused;
    into.cache_hits += s.cache_hits;
    into.cache_misses += s.cache_misses;
    into.shared += s.shared;
    into.plan += s.plan;
    into.retile_ops += s.retile_ops;
    into.retile_errors += s.retile_errors;
    into.queue_peak = into.queue_peak.max(s.queue_peak);
    into.latency += s.latency;
}
