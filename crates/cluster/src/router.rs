//! The shard router: a `tasm-proto` front-end that fans queries out to
//! the owning shards.
//!
//! Clients speak to the router exactly as they would to a single
//! `tasm-server` — same handshake, same `Query`/`StatsRequest`/
//! `ShutdownServer` frames — and never learn the cluster exists. Per
//! query the router computes the video's replica set from the shard map
//! and tries each replica in placement order: the primary first, then —
//! on transport failure, BUSY, or a typed rejection — the backups. A
//! node that keeps failing is marked down (*sticky*: a node that missed
//! replicated commits while dead must not silently rejoin and serve
//! stale epochs; it returns via an operator map change or router
//! restart), which promotes its backups in every placement — that is the
//! failover.
//!
//! The router has its own admission control (a router-wide in-flight cap
//! answered with typed BUSY, plus a connection cap at the listener) so a
//! shard outage cannot convert into unbounded queueing at the routing
//! tier. `StatsRequest` fans out to every live shard and merges the
//! [`ServiceStats`] — counters summed, latency histograms merged —
//! so `tasm client stats` against a router reports cluster totals.
//!
//! Shutdown is an *ordered cluster drain*: stop admitting, drain the
//! router's own in-flight work, then drain each shard in turn
//! ([`Router::shutdown`] with `drain_shards`), reporting per-shard
//! outcomes in the [`ClusterShutdownReport`].

use crate::map::ShardMap;
use crate::merge_stats;
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;
use tasm_client::{ClientError, Connection};
use tasm_core::Query;
use tasm_proto::{ErrorCode, Message, ProtoError, VERSION};
use tasm_service::ServiceStats;

/// Routing, admission, and failover knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Path of the framed `cluster.json` shard map. The health thread
    /// reloads it when its epoch advances (the rebalance flip).
    pub map_path: PathBuf,
    /// Concurrent client connections accepted.
    pub max_connections: usize,
    /// Router-wide in-flight query cap; excess queries receive a typed
    /// BUSY frame.
    pub max_inflight: usize,
    /// Poll granularity of session reads and the accept loop.
    pub poll_interval: Duration,
    /// Bound on every socket operation against a shard — a hung shard
    /// surfaces as a timeout and triggers failover instead of pinning a
    /// routed query.
    pub shard_io_timeout: Duration,
    /// Period of the health thread's probe/reload cycle.
    pub health_interval: Duration,
    /// Consecutive failures before a node is marked down (promoted past).
    pub fail_threshold: u32,
    /// Routing worker threads (reactor engine): each owns its own pool of
    /// shard connections and executes routed queries so the session event
    /// loop never blocks on shard I/O.
    pub route_workers: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            map_path: PathBuf::from("cluster.json"),
            max_connections: 64,
            max_inflight: 64,
            poll_interval: Duration::from_millis(25),
            shard_io_timeout: Duration::from_secs(10),
            health_interval: Duration::from_millis(500),
            fail_threshold: 2,
            route_workers: 8,
        }
    }
}

/// Locks a mutex, recovering from poison: the router's guarded state
/// (failure counts, shutdown flags, session handles) stays consistent
/// across a panicked holder, and one dead routing job must not cascade
/// into a dead router.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A point-in-time snapshot of the router's own counters.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Queries answered from a shard.
    pub routed: u64,
    /// Additional replica attempts after a first choice failed or refused.
    pub retries: u64,
    /// Nodes marked down (each is a promotion of its backups).
    pub failovers: u64,
    /// Queries refused by the router's own admission control.
    pub busy_rejections: u64,
    /// Client sessions that completed a handshake.
    pub sessions_served: u64,
    /// The shard-map epoch currently routing.
    pub map_epoch: u64,
    /// Node ids currently marked down.
    pub down: Vec<String>,
}

/// One shard's outcome during the ordered cluster drain.
#[derive(Debug, Clone)]
pub struct ShardShutdownReport {
    /// Node id from the shard map.
    pub node: String,
    /// The node's address.
    pub addr: String,
    /// The shard's final service statistics, when it answered.
    pub stats: Option<ServiceStats>,
    /// Why the drain of this shard failed, if it did.
    pub error: Option<String>,
}

/// What the router (and, during an ordered drain, each shard) did.
#[derive(Debug, Clone, Default)]
pub struct ClusterShutdownReport {
    /// The router's own final counters.
    pub router: RouterStats,
    /// Per-shard drain outcomes, in shard-map order (empty when the
    /// router was stopped without draining the shards).
    pub shards: Vec<ShardShutdownReport>,
}

struct RouterShared {
    cfg: RouterConfig,
    map: RwLock<ShardMap>,
    /// Consecutive failure counts per node id. A node at or past
    /// `fail_threshold` is down — and stays down (see module docs).
    failures: Mutex<HashMap<String, u32>>,
    admitting: AtomicBool,
    /// Shared with the reactor's event loop, which exits once it observes
    /// the flag and drains its sessions.
    shutdown: Arc<AtomicBool>,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    active_sessions: AtomicUsize,
    inflight: AtomicUsize,
    routed: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    busy_rejections: AtomicU64,
    sessions_served: AtomicU64,
}

impl RouterShared {
    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn down_set(&self) -> BTreeSet<String> {
        lock_clean(&self.failures)
            .iter()
            .filter(|(_, &n)| n >= self.cfg.fail_threshold)
            .map(|(id, _)| id.clone())
            .collect()
    }

    fn note_success(&self, node: &str) {
        let mut failures = lock_clean(&self.failures);
        if let Some(n) = failures.get_mut(node) {
            // Sticky once down; only pre-threshold blips are forgiven.
            if *n < self.cfg.fail_threshold {
                *n = 0;
            }
        }
    }

    fn note_failure(&self, node: &str) {
        let mut failures = lock_clean(&self.failures);
        let n = failures.entry(node.to_string()).or_insert(0);
        if *n < self.cfg.fail_threshold {
            *n += 1;
            if *n >= self.cfg.fail_threshold {
                self.failovers.fetch_add(1, Ordering::Relaxed);
                if tasm_obs::enabled() {
                    tasm_obs::counter(
                        "tasm_router_failovers_total",
                        "Shards marked down after reaching the failure threshold.",
                    )
                    .inc();
                }
                tasm_obs::log::warn("router.failover", &[("shard", node.to_string())]);
            }
        }
    }

    fn stats(&self) -> RouterStats {
        RouterStats {
            routed: self.routed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            sessions_served: self.sessions_served.load(Ordering::Relaxed),
            map_epoch: self.map.read().expect("map lock").epoch,
            down: self.down_set().into_iter().collect(),
        }
    }
}

/// A running shard router: a listener, its serving threads (one reactor +
/// a routing worker pool, or accept + per-connection sessions where
/// readiness polling is unavailable), and the health/map-reload thread.
pub struct Router {
    shared: Arc<RouterShared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    jobs: Option<Arc<JobQueue>>,
    waker: Option<tasm_reactor::Waker>,
}

impl Router {
    /// Loads the shard map from `cfg.map_path` and starts routing on
    /// `addr` (`host:0` binds an ephemeral port).
    pub fn bind(cfg: RouterConfig, addr: impl ToSocketAddrs) -> io::Result<Router> {
        let map = ShardMap::load(&cfg.map_path)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(RouterShared {
            cfg,
            map: RwLock::new(map),
            failures: Mutex::new(HashMap::new()),
            admitting: AtomicBool::new(true),
            shutdown: Arc::clone(&shutdown),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            active_sessions: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            routed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            sessions_served: AtomicU64::new(0),
        });
        let sessions = Arc::new(Mutex::new(Vec::new()));
        let mut router = Router {
            shared: Arc::clone(&shared),
            local_addr,
            accept: None,
            health: None,
            sessions: Arc::clone(&sessions),
            reactor: None,
            workers: Vec::new(),
            jobs: None,
            waker: None,
        };
        if tasm_reactor::supported() {
            let loop_cfg = tasm_reactor::LoopConfig {
                max_connections: shared.cfg.max_connections,
                poll_interval: shared.cfg.poll_interval,
                ..tasm_reactor::LoopConfig::default()
            };
            let ctl = tasm_reactor::Ctl::new(listener, loop_cfg, shutdown)?;
            let waker = ctl.waker();
            let completions = Arc::new(Mutex::new(Vec::new()));
            let jobs = Arc::new(JobQueue::new());
            for i in 0..shared.cfg.route_workers.max(1) {
                let shared = Arc::clone(&shared);
                let jobs = Arc::clone(&jobs);
                let completions = Arc::clone(&completions);
                let waker = waker.clone();
                router.workers.push(
                    std::thread::Builder::new()
                        .name(format!("tasm-route-worker-{i}"))
                        .spawn(move || route_worker(&shared, &jobs, &completions, &waker))?,
                );
            }
            let logic = RouterLogic {
                shared: Arc::clone(&shared),
                completions,
                jobs: Arc::clone(&jobs),
            };
            router.reactor = Some(
                std::thread::Builder::new()
                    .name("tasm-route-reactor".to_string())
                    .spawn(move || tasm_reactor::run(ctl, logic))?,
            );
            router.jobs = Some(jobs);
            router.waker = Some(waker);
        } else {
            listener.set_nonblocking(true)?;
            let accept = {
                let shared = Arc::clone(&shared);
                let sessions = Arc::clone(&sessions);
                std::thread::Builder::new()
                    .name("tasm-route-accept".to_string())
                    .spawn(move || accept_loop(&shared, &listener, &sessions))?
            };
            router.accept = Some(accept);
        }
        let health = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tasm-route-health".to_string())
                .spawn(move || health_loop(&shared))?
        };
        router.health = Some(health);
        Ok(router)
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the router's counters.
    pub fn stats(&self) -> RouterStats {
        self.shared.stats()
    }

    /// Blocks until a client sends the administrative `ShutdownServer`
    /// frame (the `tasm route` command's idle state).
    pub fn wait_shutdown_requested(&self) {
        let mut requested = lock_clean(&self.shared.shutdown_requested);
        while !*requested {
            requested = match self.shared.shutdown_cv.wait(requested) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// The ordered cluster drain: stop admitting, drain the router's
    /// in-flight queries (sessions are serial, so joining them is the
    /// drain), then — when `drain_shards` — drain every shard in
    /// shard-map order, collecting each one's final statistics before
    /// asking it to shut down.
    pub fn shutdown(mut self, drain_shards: bool) -> ClusterShutdownReport {
        self.shared.admitting.store(false, Ordering::SeqCst);
        self.stop_threads();
        let mut report = ClusterShutdownReport {
            router: self.shared.stats(),
            shards: Vec::new(),
        };
        if drain_shards {
            let nodes: Vec<(String, String)> = {
                let map = self.shared.map.read().expect("map lock");
                map.nodes
                    .iter()
                    .map(|n| (n.id.clone(), n.addr.clone()))
                    .collect()
            };
            for (id, addr) in nodes {
                report
                    .shards
                    .push(drain_shard(&id, &addr, self.shared.cfg.shard_io_timeout));
            }
        }
        report
    }

    /// Signals shutdown and joins every thread (idempotent). The reactor
    /// joins before the job queue closes so in-flight routed queries still
    /// deliver their responses during the session drain.
    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for s in lock_clean(&self.sessions).drain(..) {
            let _ = s.join();
        }
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
        if let Some(jobs) = self.jobs.take() {
            jobs.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(t) = self.health.take() {
            let _ = t.join();
        }
        self.waker = None;
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Asks one shard for its final statistics and a graceful shutdown.
fn drain_shard(id: &str, addr: &str, timeout: Duration) -> ShardShutdownReport {
    let mut report = ShardShutdownReport {
        node: id.to_string(),
        addr: addr.to_string(),
        stats: None,
        error: None,
    };
    let sock = match resolve(addr) {
        Ok(s) => s,
        Err(e) => {
            report.error = Some(e);
            return report;
        }
    };
    match Connection::connect_timeout(&sock, timeout) {
        Ok(mut conn) => {
            let _ = conn.set_io_timeout(Some(timeout));
            match conn.stats() {
                Ok(stats) => report.stats = Some(stats),
                Err(e) => report.error = Some(format!("stats failed: {e}")),
            }
            if let Err(e) = conn.shutdown_server() {
                report.error = Some(format!("shutdown refused: {e}"));
            }
        }
        Err(e) => report.error = Some(format!("unreachable: {e}")),
    }
    report
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("bad address '{addr}': {e}"))?
        .next()
        .ok_or_else(|| format!("address '{addr}' resolves to nothing"))
}

fn accept_loop(
    shared: &Arc<RouterShared>,
    listener: &TcpListener,
    sessions: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.is_shutting_down() {
            return;
        }
        let (stream, _peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_interval.min(Duration::from_millis(5)));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        let active = shared.active_sessions.fetch_add(1, Ordering::AcqRel);
        if active >= shared.cfg.max_connections {
            shared.active_sessions.fetch_sub(1, Ordering::AcqRel);
            // Best-effort courtesy frame; the stream drops either way.
            let mut s = stream;
            let _ = s.set_nonblocking(false);
            let _ = s.set_write_timeout(Some(Duration::from_millis(200)));
            let _ = Message::Error {
                id: None,
                code: ErrorCode::TooManyConnections,
                message: "router is at its connection limit".to_string(),
            }
            .write_to(&mut s);
            continue;
        }
        let session_shared = Arc::clone(shared);
        let handle = match std::thread::Builder::new()
            .name("tasm-route-session".to_string())
            .spawn(move || {
                session(&session_shared, stream);
                session_shared
                    .active_sessions
                    .fetch_sub(1, Ordering::AcqRel);
            }) {
            Ok(handle) => handle,
            Err(_) => {
                shared.active_sessions.fetch_sub(1, Ordering::AcqRel);
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let mut sessions = sessions.lock().expect("sessions lock");
        sessions.retain(|s: &JoinHandle<()>| !s.is_finished());
        sessions.push(handle);
    }
}

/// Probes shards and reloads the map. Probing only watches nodes not yet
/// down: detection is proactive (a dead primary is noticed before the
/// next query hits it), while recovery of a down node is deliberately an
/// operator action (map epoch change or router restart).
fn health_loop(shared: &Arc<RouterShared>) {
    loop {
        let mut waited = Duration::ZERO;
        while waited < shared.cfg.health_interval {
            if shared.is_shutting_down() {
                return;
            }
            let step = shared.cfg.poll_interval.min(Duration::from_millis(50));
            std::thread::sleep(step);
            waited += step;
        }
        // Reload the map when its epoch advanced (the rebalance flip).
        if let Ok(new_map) = ShardMap::load(&shared.cfg.map_path) {
            let stale = {
                let map = shared.map.read().expect("map lock");
                new_map.epoch > map.epoch
            };
            if stale {
                *shared.map.write().expect("map lock") = new_map;
            }
        }
        let nodes: Vec<(String, String)> = {
            let map = shared.map.read().expect("map lock");
            map.nodes
                .iter()
                .map(|n| (n.id.clone(), n.addr.clone()))
                .collect()
        };
        let down = shared.down_set();
        let probe_timeout = shared.cfg.shard_io_timeout.min(Duration::from_secs(1));
        for (id, addr) in nodes {
            if down.contains(&id) || shared.is_shutting_down() {
                continue;
            }
            let alive = resolve(&addr)
                .ok()
                .and_then(|sock| Connection::connect_timeout(&sock, probe_timeout).ok())
                .map(|conn| {
                    let _ = conn.goodbye();
                })
                .is_some();
            if alive {
                shared.note_success(&id);
            } else {
                shared.note_failure(&id);
            }
        }
    }
}

/// Poll timeouts a connection may sit silent before its handshake.
const HANDSHAKE_DEADLINE_POLLS: u32 = 400;
/// Wall-clock bound on receiving one request frame once it starts.
const MAX_REQUEST_FRAME_TIME: Duration = Duration::from_secs(30);
/// Socket write timeout for response frames.
const MAX_RESPONSE_WRITE_STALL: Duration = Duration::from_secs(10);

/// One client session: handshake, then serial request dispatch. The
/// session owns its pool of shard connections, created lazily and dropped
/// on transport failure.
fn session(shared: &Arc<RouterShared>, mut stream: TcpStream) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    stream.set_nodelay(true).ok();
    if stream
        .set_read_timeout(Some(shared.cfg.poll_interval))
        .is_err()
        || stream
            .set_write_timeout(Some(MAX_RESPONSE_WRITE_STALL))
            .is_err()
    {
        return;
    }
    if !handshake(shared, &mut stream) {
        return;
    }
    shared.sessions_served.fetch_add(1, Ordering::Relaxed);

    let mut shards: HashMap<String, Connection> = HashMap::new();
    loop {
        if shared.is_shutting_down() {
            return;
        }
        let msg = match Message::read_from_bounded(&mut stream, MAX_REQUEST_FRAME_TIME) {
            Ok(msg) => msg,
            Err(e) if e.is_timeout() => continue,
            Err(ProtoError::Io(_)) | Err(ProtoError::Stalled) => return,
            Err(_) => {
                let _ = Message::Error {
                    id: None,
                    code: ErrorCode::Malformed,
                    message: "undecodable frame".to_string(),
                }
                .write_to(&mut stream);
                return;
            }
        };
        match msg {
            Message::Query {
                id,
                video,
                query,
                trace_id,
            } => {
                if !shared.admitting.load(Ordering::SeqCst) {
                    let _ = Message::Error {
                        id: Some(id),
                        code: ErrorCode::ShuttingDown,
                        message: "router is draining".to_string(),
                    }
                    .write_to(&mut stream);
                    continue;
                }
                if shared.inflight.fetch_add(1, Ordering::AcqRel) >= shared.cfg.max_inflight {
                    shared.inflight.fetch_sub(1, Ordering::AcqRel);
                    shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    let _ = Message::Error {
                        id: Some(id),
                        code: ErrorCode::Busy,
                        message: "router in-flight cap reached".to_string(),
                    }
                    .write_to(&mut stream);
                    continue;
                }
                let frames = route_query_frames(shared, &mut shards, id, &video, &query, trace_id);
                shared.inflight.fetch_sub(1, Ordering::AcqRel);
                for frame in frames {
                    if std::io::Write::write_all(&mut stream, &frame).is_err() {
                        return;
                    }
                }
            }
            Message::StatsRequest => {
                let merged = cluster_stats(shared, &mut shards);
                if (Message::StatsReply {
                    stats: Box::new(merged),
                })
                .write_to(&mut stream)
                .is_err()
                {
                    return;
                }
            }
            Message::Goodbye => return,
            Message::ShutdownServer => {
                *lock_clean(&shared.shutdown_requested) = true;
                shared.shutdown_cv.notify_all();
                let _ = Message::Goodbye.write_to(&mut stream);
                return;
            }
            _ => {
                let _ = Message::Error {
                    id: None,
                    code: ErrorCode::Malformed,
                    message: "unexpected frame".to_string(),
                }
                .write_to(&mut stream);
                return;
            }
        }
    }
}

fn handshake(shared: &Arc<RouterShared>, stream: &mut TcpStream) -> bool {
    let mut silent_polls = 0u32;
    let hello = loop {
        match Message::read_from_bounded(stream, MAX_REQUEST_FRAME_TIME) {
            Ok(msg) => break msg,
            Err(e) if e.is_timeout() => {
                if shared.is_shutting_down() {
                    return false;
                }
                silent_polls += 1;
                if silent_polls >= HANDSHAKE_DEADLINE_POLLS {
                    return false;
                }
            }
            Err(_) => return false,
        }
    };
    match hello {
        Message::ClientHello { version } if version == VERSION => Message::ServerHello {
            version: VERSION,
            // The router handles one query per session at a time.
            max_inflight: 1,
        }
        .write_to(stream)
        .is_ok(),
        Message::ClientHello { version } => {
            let _ = Message::Error {
                id: None,
                code: ErrorCode::VersionMismatch,
                message: format!("router speaks version {VERSION}, client sent {version}"),
            }
            .write_to(stream);
            false
        }
        _ => {
            let _ = Message::Error {
                id: None,
                code: ErrorCode::Malformed,
                message: "expected client hello".to_string(),
            }
            .write_to(stream);
            false
        }
    }
}

/// Fetches (or creates) the session's connection to `node`.
fn shard_conn<'a>(
    shared: &RouterShared,
    shards: &'a mut HashMap<String, Connection>,
    node: &str,
    addr: &str,
) -> Result<&'a mut Connection, String> {
    if !shards.contains_key(node) {
        let sock = resolve(addr)?;
        let conn = Connection::connect_timeout(&sock, shared.cfg.shard_io_timeout)
            .map_err(|e| format!("shard {node} unreachable: {e}"))?;
        conn.set_io_timeout(Some(shared.cfg.shard_io_timeout))
            .map_err(|e| format!("shard {node}: {e}"))?;
        shards.insert(node.to_string(), conn);
    }
    Ok(shards.get_mut(node).expect("just inserted"))
}

/// Routes one query: replica set in placement order, relaying the winning
/// shard's full response — or a typed error after the last replica — as
/// encoded frames. The shard's execution trace (instance tag, per-phase
/// breakdown) is relayed unchanged, so the client sees which shard served
/// it. Shard failures are handled by failover inside; writing the frames
/// to the client is the caller's (engine-specific) job.
fn route_query_frames(
    shared: &RouterShared,
    shards: &mut HashMap<String, Connection>,
    id: u64,
    video: &str,
    query: &Query,
    trace_id: Option<u64>,
) -> Vec<Vec<u8>> {
    let placement: Vec<(String, String)> = {
        let map = shared.map.read().expect("map lock");
        let down = shared.down_set();
        map.placement(video, &down)
            .into_iter()
            .map(|n| (n.id.clone(), n.addr.clone()))
            .collect()
    };
    if placement.is_empty() {
        return vec![Message::Error {
            id: Some(id),
            code: ErrorCode::Internal,
            message: format!("no live replica for '{video}'"),
        }
        .encode()];
    }
    let mut last = (ErrorCode::Internal, "all replicas failed".to_string());
    for (attempt, (node, addr)) in placement.iter().enumerate() {
        if attempt > 0 {
            shared.retries.fetch_add(1, Ordering::Relaxed);
        }
        let conn = match shard_conn(shared, shards, node, addr) {
            Ok(conn) => conn,
            Err(e) => {
                shared.note_failure(node);
                last = (ErrorCode::Internal, e);
                continue;
            }
        };
        match conn.query_traced(video, query, trace_id) {
            Ok(outcome) => {
                shared.note_success(node);
                shared.routed.fetch_add(1, Ordering::Relaxed);
                if tasm_obs::enabled() {
                    tasm_obs::counter(
                        "tasm_router_queries_total",
                        "Queries successfully routed to a shard.",
                    )
                    .inc();
                }
                let mut frames = Vec::with_capacity(outcome.regions.len() + 2);
                frames.push(
                    Message::ResultHeader {
                        id,
                        matched: outcome.matched,
                        regions: outcome.regions.len() as u32,
                        plan: outcome.plan,
                        epoch: outcome.epoch,
                    }
                    .encode(),
                );
                for region in outcome.regions {
                    frames.push(Message::Region { id, region }.encode());
                }
                frames.push(
                    Message::ResultDone {
                        id,
                        summary: outcome.summary,
                        // Relayed verbatim: the trace's instance field keeps
                        // naming the shard that executed, not the router.
                        trace: outcome.trace,
                    }
                    .encode(),
                );
                return frames;
            }
            Err(ClientError::Rejected { code, message }) => {
                // The shard is alive and on a frame boundary: its
                // connection stays pooled, but a backup may still be able
                // to answer (BUSY under load, UnknownVideo on a stale
                // placement).
                last = (code, message);
            }
            Err(e) => {
                // Transport/protocol failure mid-stream: the connection
                // cannot be resynchronized. Drop it and count the node.
                shards.remove(node);
                shared.note_failure(node);
                last = (ErrorCode::Internal, format!("shard {node} failed: {e}"));
            }
        }
    }
    vec![Message::Error {
        id: Some(id),
        code: last.0,
        message: last.1,
    }
    .encode()]
}

/// Fans `StatsRequest` out to every live shard and merges the snapshots.
fn cluster_stats(shared: &RouterShared, shards: &mut HashMap<String, Connection>) -> ServiceStats {
    let nodes: Vec<(String, String)> = {
        let map = shared.map.read().expect("map lock");
        map.nodes
            .iter()
            .map(|n| (n.id.clone(), n.addr.clone()))
            .collect()
    };
    let down = shared.down_set();
    let mut merged = ServiceStats::default();
    for (node, addr) in nodes {
        if down.contains(&node) {
            continue;
        }
        let Ok(conn) = shard_conn(shared, shards, &node, &addr) else {
            shared.note_failure(&node);
            continue;
        };
        match conn.stats() {
            Ok(stats) => {
                shared.note_success(&node);
                merge_stats(&mut merged, &stats);
            }
            Err(_) => {
                shards.remove(&node);
                shared.note_failure(&node);
            }
        }
    }
    merged
}

/// A queue of routing jobs feeding the worker pool. Hand-rolled (mutex +
/// condvar) so several workers can block on `pop` concurrently — sharing
/// one `mpsc::Receiver` would serialize pickup behind its lock.
struct JobQueue {
    state: Mutex<(std::collections::VecDeque<RouteJob>, bool)>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new((std::collections::VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a job; false once the queue is closed (shutdown).
    fn push(&self, job: RouteJob) -> bool {
        let mut state = lock_clean(&self.state);
        if state.1 {
            return false;
        }
        state.0.push_back(job);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Blocks for the next job; `None` once closed and empty.
    fn pop(&self) -> Option<RouteJob> {
        let mut state = lock_clean(&self.state);
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = match self.ready.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn close(&self) {
        lock_clean(&self.state).1 = true;
        self.ready.notify_all();
    }
}

/// One unit of work for the routing pool — operations that do blocking
/// shard I/O and therefore must not run on the reactor thread.
enum RouteJob {
    Query {
        token: u64,
        id: u64,
        video: String,
        query: Query,
        trace_id: Option<u64>,
    },
    Stats {
        token: u64,
    },
}

/// A finished routing job: the full response, encoded, ready to stream.
struct RouteDone {
    token: u64,
    frames: Vec<Vec<u8>>,
}

/// Streams a completed route's frames through the reactor's paced encode
/// pump (bounded unwritten bytes against a slow-reading client).
struct Frames(std::collections::VecDeque<Vec<u8>>);

impl tasm_reactor::ResponseSource for Frames {
    fn next_frame(&mut self, _flushed: bool) -> tasm_reactor::NextFrame {
        match self.0.pop_front() {
            Some(frame) => tasm_reactor::NextFrame::Frame(frame),
            None => tasm_reactor::NextFrame::Done,
        }
    }
}

/// Executes routing jobs against this worker's private pool of shard
/// connections, pushing completed responses back to the reactor.
fn route_worker(
    shared: &Arc<RouterShared>,
    jobs: &Arc<JobQueue>,
    completions: &Arc<Mutex<Vec<RouteDone>>>,
    waker: &tasm_reactor::Waker,
) {
    let mut shards: HashMap<String, Connection> = HashMap::new();
    while let Some(job) = jobs.pop() {
        let done = match job {
            RouteJob::Query {
                token,
                id,
                video,
                query,
                trace_id,
            } => {
                let frames =
                    route_query_frames(shared, &mut shards, id, &video, &query, trace_id);
                // The router-wide in-flight slot frees when the route
                // finishes, session alive or not.
                shared.inflight.fetch_sub(1, Ordering::AcqRel);
                RouteDone { token, frames }
            }
            RouteJob::Stats { token } => {
                let merged = cluster_stats(shared, &mut shards);
                RouteDone {
                    token,
                    frames: vec![Message::StatsReply {
                        stats: Box::new(merged),
                    }
                    .encode()],
                }
            }
        };
        lock_clean(completions).push(done);
        waker.wake();
    }
}

/// The router's reactor [`Logic`](tasm_reactor::Logic): same protocol as
/// the blocking sessions, with shard I/O handed to the worker pool. A
/// session pauses while its job is in flight — the router serves one
/// request per session at a time (it advertises `max_inflight: 1`), so
/// pausing preserves exactly the blocking engine's ordering.
struct RouterLogic {
    shared: Arc<RouterShared>,
    completions: Arc<Mutex<Vec<RouteDone>>>,
    jobs: Arc<JobQueue>,
}

impl RouterLogic {
    fn send_error(
        ctl: &mut tasm_reactor::Ctl,
        token: u64,
        id: Option<u64>,
        code: ErrorCode,
        message: String,
    ) {
        ctl.send_frame(token, Message::Error { id, code, message }.encode());
    }

    /// Hands a job to the pool, pausing the session until its response
    /// comes back through the completion queue.
    fn submit(&mut self, ctl: &mut tasm_reactor::Ctl, token: u64, job: RouteJob) {
        ctl.set_paused(token, true);
        ctl.inflight_inc(token);
        if !self.jobs.push(job) {
            ctl.inflight_dec(token);
            ctl.set_paused(token, false);
            Self::send_error(
                ctl,
                token,
                None,
                ErrorCode::ShuttingDown,
                "router is draining".to_string(),
            );
        }
    }
}

impl tasm_reactor::Logic for RouterLogic {
    fn on_accept(&mut self, _ctl: &mut tasm_reactor::Ctl, _token: u64) {
        self.shared.active_sessions.fetch_add(1, Ordering::AcqRel);
    }

    fn on_refused(&mut self) {}

    fn refusal_frame(&mut self) -> Vec<u8> {
        Message::Error {
            id: None,
            code: ErrorCode::TooManyConnections,
            message: "router is at its connection limit".to_string(),
        }
        .encode()
    }

    fn on_frame(&mut self, ctl: &mut tasm_reactor::Ctl, token: u64, payload: Vec<u8>) {
        let msg = match Message::decode_payload(&payload) {
            Ok(msg) => msg,
            Err(_) => {
                let text = if ctl.handshaken(token) {
                    "undecodable frame"
                } else {
                    "expected client hello"
                };
                Self::send_error(ctl, token, None, ErrorCode::Malformed, text.to_string());
                ctl.begin_drain(token);
                return;
            }
        };
        if !ctl.handshaken(token) {
            match msg {
                Message::ClientHello { version } if version == VERSION => {
                    ctl.mark_handshaken(token);
                    self.shared.sessions_served.fetch_add(1, Ordering::Relaxed);
                    ctl.send_frame(
                        token,
                        Message::ServerHello {
                            version: VERSION,
                            // The router handles one query per session at
                            // a time.
                            max_inflight: 1,
                        }
                        .encode(),
                    );
                }
                Message::ClientHello { version } => {
                    Self::send_error(
                        ctl,
                        token,
                        None,
                        ErrorCode::VersionMismatch,
                        format!("router speaks version {VERSION}, client sent {version}"),
                    );
                    ctl.begin_drain(token);
                }
                _ => {
                    Self::send_error(
                        ctl,
                        token,
                        None,
                        ErrorCode::Malformed,
                        "expected client hello".to_string(),
                    );
                    ctl.begin_drain(token);
                }
            }
            return;
        }
        match msg {
            Message::Query {
                id,
                video,
                query,
                trace_id,
            } => {
                if !self.shared.admitting.load(Ordering::SeqCst) {
                    Self::send_error(
                        ctl,
                        token,
                        Some(id),
                        ErrorCode::ShuttingDown,
                        "router is draining".to_string(),
                    );
                    return;
                }
                if self.shared.inflight.fetch_add(1, Ordering::AcqRel)
                    >= self.shared.cfg.max_inflight
                {
                    self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
                    self.shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    Self::send_error(
                        ctl,
                        token,
                        Some(id),
                        ErrorCode::Busy,
                        "router in-flight cap reached".to_string(),
                    );
                    return;
                }
                // The worker decrements the router-wide count; the
                // submit below tracks the per-session slot.
                self.submit(
                    ctl,
                    token,
                    RouteJob::Query {
                        token,
                        id,
                        video,
                        query,
                        trace_id,
                    },
                );
            }
            Message::StatsRequest => self.submit(ctl, token, RouteJob::Stats { token }),
            Message::Goodbye => ctl.begin_drain(token),
            Message::ShutdownServer => {
                *lock_clean(&self.shared.shutdown_requested) = true;
                self.shared.shutdown_cv.notify_all();
                ctl.send_frame(token, Message::Goodbye.encode());
                ctl.begin_drain(token);
            }
            _ => {
                Self::send_error(
                    ctl,
                    token,
                    None,
                    ErrorCode::Malformed,
                    "unexpected frame".to_string(),
                );
                ctl.begin_drain(token);
            }
        }
    }

    fn on_wake(&mut self, ctl: &mut tasm_reactor::Ctl) {
        let batch: Vec<RouteDone> = lock_clean(&self.completions).drain(..).collect();
        for done in batch {
            if !ctl.is_open(done.token) {
                continue;
            }
            ctl.inflight_dec(done.token);
            ctl.set_paused(done.token, false);
            ctl.send_response(done.token, Box::new(Frames(done.frames.into())));
        }
    }

    fn on_close(&mut self, _token: u64, _handshaken: bool) {
        self.shared.active_sessions.fetch_sub(1, Ordering::AcqRel);
    }
}
