//! Primary→backup replication: shipping manifests, tile bytes, and
//! semantic-index state so a backup answers bit-identically at the same
//! layout epoch.
//!
//! The unit of replication is the [`ReplicationRecord`]. A full video sync
//! is `StageSot*` (raw tile-file bytes, chunked under the wire's frame
//! cap) closed by one `CommitVideo`, plus one `IndexState`; a re-tile
//! ships the changed SOT as `StageSot* CommitSot`. Tile bytes travel
//! *verbatim* — the backup's tile files are byte-identical to the
//! primary's, so a failed-over replica decodes the same pixels the primary
//! would have, which is exactly the cluster's bit-exactness claim.
//!
//! Records are acknowledged: [`Replicator`] waits for the receiver's
//! `ReplicateAck` after every record, and the retile daemon's
//! [`ReplicatorHook`] only lets a re-tile count as durable once every
//! backup acked its commit record (`ServiceStats::retile_errors` counts
//! the ones that didn't).
//!
//! Commit records are idempotent by layout epoch: a backup that already
//! holds a SOT at `retile_count ≥ epoch` skips the record, so replays
//! (primary retry after a dropped ack) converge instead of regressing.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tasm_client::{ClientError, Connection};
use tasm_core::{Tasm, VideoManifest};
use tasm_proto::{ReplicatedDetection, ReplicationRecord};
use tasm_service::RetileHook;

/// Soft cap on the tile bytes packed into one `StageSot` chunk, leaving
/// ample headroom under `tasm_proto::MAX_FRAME_LEN` for framing.
const STAGE_CHUNK_BYTES: usize = 8 << 20;

/// A receiving session's staging area: tile bytes that have arrived in
/// `StageSot` records but whose commit record hasn't landed yet.
/// Consecutive records for the same `(video, SOT)` append in order, so a
/// chunked SOT reassembles exactly as sent.
#[derive(Default)]
pub struct StagedSots {
    staged: HashMap<(String, u32), Vec<Vec<u8>>>,
}

impl StagedSots {
    /// An empty staging area.
    pub fn new() -> StagedSots {
        StagedSots::default()
    }

    /// Appends a chunk of tile bytes for `(video, sot_idx)`.
    pub fn stage(&mut self, video: &str, sot_idx: u32, tiles: Vec<Vec<u8>>) {
        self.staged
            .entry((video.to_string(), sot_idx))
            .or_default()
            .extend(tiles);
    }

    /// Removes and returns the staged tiles of `(video, sot_idx)`.
    pub fn take(&mut self, video: &str, sot_idx: u32) -> Option<Vec<Vec<u8>>> {
        self.staged.remove(&(video.to_string(), sot_idx))
    }

    /// Discards any leftover staged chunks of `video` (commit applied, or
    /// the session ended mid-sync).
    pub fn drop_video(&mut self, video: &str) {
        self.staged.retain(|(v, _), _| v != video);
    }
}

/// Applies one replication record on the receiving node. `staged` is the
/// session's staging area for tile bytes that have arrived but whose
/// commit record hasn't. Returns a human-readable error when the record
/// cannot be applied (the session turns it into a typed error frame; the
/// primary counts the failed ack).
pub fn apply_record(
    tasm: &Tasm,
    staged: &mut StagedSots,
    record: ReplicationRecord,
) -> Result<(), String> {
    match record {
        ReplicationRecord::StageSot {
            video,
            sot_idx,
            tiles,
        } => {
            staged.stage(&video, sot_idx, tiles);
            Ok(())
        }
        ReplicationRecord::CommitVideo {
            epoch: _,
            video,
            manifest,
        } => {
            let manifest: VideoManifest = parse_manifest(&manifest)?;
            if manifest.name != video {
                return Err(format!(
                    "commit names video '{video}' but manifest says '{}'",
                    manifest.name
                ));
            }
            let mut sots = Vec::with_capacity(manifest.sots.len());
            for i in 0..manifest.sots.len() {
                sots.push(
                    staged
                        .take(&video, i as u32)
                        .ok_or_else(|| format!("commit for '{video}' is missing staged SOT {i}"))?,
                );
            }
            staged.drop_video(&video);
            tasm.apply_replicated_video(manifest, &sots)
                .map(|_| ())
                .map_err(|e| format!("install failed: {e}"))
        }
        ReplicationRecord::CommitSot {
            epoch: _,
            video,
            sot_idx,
            manifest,
        } => {
            let manifest: VideoManifest = parse_manifest(&manifest)?;
            let tiles = staged
                .take(&video, sot_idx)
                .ok_or_else(|| format!("commit for '{video}' SOT {sot_idx} has no staged tiles"))?;
            tasm.apply_replicated_sot(manifest, sot_idx as usize, &tiles)
                .map(|_applied| ())
                .map_err(|e| format!("SOT install failed: {e}"))
        }
        ReplicationRecord::IndexState {
            video,
            detections,
            processed,
        } => apply_index_state(tasm, &video, &detections, &processed),
    }
}

fn parse_manifest(bytes: &[u8]) -> Result<VideoManifest, String> {
    serde_json::from_slice(bytes).map_err(|e| format!("manifest does not parse: {e}"))
}

/// Installs replicated index state. Idempotent at sync granularity: a
/// video that already has detector-processed frames is assumed indexed
/// (re-syncing would double every detection) and the record is a no-op.
fn apply_index_state(
    tasm: &Tasm,
    video: &str,
    detections: &[ReplicatedDetection],
    processed: &[u32],
) -> Result<(), String> {
    let frames = tasm
        .manifest(video)
        .map_err(|e| format!("unknown video: {e}"))?
        .frame_count;
    let already = tasm
        .processed_count(video, 0..frames)
        .map_err(|e| format!("index read failed: {e}"))?;
    if already > 0 {
        return Ok(());
    }
    for d in detections {
        tasm.add_metadata(video, &d.label, d.frame, d.rect)
            .map_err(|e| format!("add_metadata failed: {e}"))?;
    }
    for &f in processed {
        tasm.mark_processed(video, f)
            .map_err(|e| format!("mark_processed failed: {e}"))?;
    }
    Ok(())
}

/// Reads a video's canonical manifest JSON — the bytes replica
/// verification compares across nodes. Serialization goes through the
/// same `serde_json::to_vec_pretty` the store writes with, so two nodes
/// holding equal manifests produce equal bytes.
pub fn manifest_json(tasm: &Tasm, video: &str) -> Result<Vec<u8>, String> {
    let manifest = tasm.manifest(video).map_err(|e| e.to_string())?;
    serde_json::to_vec_pretty(&manifest).map_err(|e| e.to_string())
}

/// Collects a video's full semantic-index state for replication.
fn index_state(tasm: &Tasm, video: &str) -> Result<ReplicationRecord, String> {
    let frames = tasm.manifest(video).map_err(|e| e.to_string())?.frame_count;
    let id = tasm.video_id(video).map_err(|e| e.to_string())?;
    let (detections, processed) = tasm.with_index(|ix| {
        let dets = ix
            .query_all(id, 0..frames)
            .map_err(|e| format!("index query failed: {e:?}"))?;
        let detections = dets
            .into_iter()
            .map(|d| ReplicatedDetection {
                label: d.label,
                frame: d.frame,
                rect: d.bbox,
            })
            .collect::<Vec<_>>();
        let mut processed = Vec::new();
        for f in 0..frames {
            let n = ix
                .processed_count(id, f..f + 1)
                .map_err(|e| format!("index read failed: {e:?}"))?;
            if n > 0 {
                processed.push(f);
            }
        }
        Ok::<_, String>((detections, processed))
    })?;
    Ok(ReplicationRecord::IndexState {
        video: video.to_string(),
        detections,
        processed,
    })
}

/// Splits one SOT's tile bytes into `StageSot` records respecting the
/// chunk cap (each record carries whole tiles; a single oversized tile
/// still travels alone and is bounded by the store's own tile sizing).
fn stage_chunks(video: &str, sot_idx: u32, tiles: &[Vec<u8>]) -> Vec<ReplicationRecord> {
    let mut out = Vec::new();
    let mut chunk: Vec<Vec<u8>> = Vec::new();
    let mut bytes = 0usize;
    for t in tiles {
        if !chunk.is_empty() && bytes + t.len() > STAGE_CHUNK_BYTES {
            out.push(ReplicationRecord::StageSot {
                video: video.to_string(),
                sot_idx,
                tiles: std::mem::take(&mut chunk),
            });
            bytes = 0;
        }
        bytes += t.len();
        chunk.push(t.clone());
    }
    if !chunk.is_empty() || tiles.is_empty() {
        out.push(ReplicationRecord::StageSot {
            video: video.to_string(),
            sot_idx,
            tiles: chunk,
        });
    }
    out
}

/// The layout epoch a manifest is at: the sum of per-SOT retile counts.
pub fn layout_epoch(manifest: &VideoManifest) -> u64 {
    manifest.sots.iter().map(|s| s.retile_count as u64).sum()
}

/// The sending half of replication: one connection to a backup plus the
/// per-SOT layout epochs it is known to hold, so a re-tile ships only the
/// SOTs that actually changed.
pub struct Replicator {
    conn: Connection,
    addr: String,
    /// Per-video `retile_count` vector the backup last acked.
    acked: std::collections::HashMap<String, Vec<u32>>,
}

impl Replicator {
    /// Connects to the backup at `addr`.
    pub fn connect(addr: &str) -> Result<Replicator, String> {
        let conn =
            Connection::connect(addr).map_err(|e| format!("backup {addr} unreachable: {e}"))?;
        Ok(Replicator {
            conn,
            addr: addr.to_string(),
            acked: std::collections::HashMap::new(),
        })
    }

    /// The backup's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn send(&mut self, record: ReplicationRecord) -> Result<(), String> {
        self.conn
            .replicate(record)
            .map_err(|e| format!("backup {} refused record: {e}", self.addr))?;
        if tasm_obs::enabled() {
            tasm_obs::counter(
                "tasm_replication_acks_total",
                "Replication records durably acknowledged by backups.",
            )
            .inc();
        }
        Ok(())
    }

    /// Ships a full copy of `video`: every SOT's tile bytes, the commit
    /// record, and the semantic-index state. The snapshot pins one MVCC
    /// layout epoch for its whole read, so it is internally consistent at
    /// a single layout epoch even while the retile daemon runs.
    pub fn sync_full(&mut self, tasm: &Tasm, video: &str) -> Result<(), String> {
        let (manifest, sots) = tasm
            .replication_snapshot(video)
            .map_err(|e| format!("snapshot failed: {e}"))?;
        for (i, tiles) in sots.iter().enumerate() {
            for rec in stage_chunks(video, i as u32, tiles) {
                self.send(rec)?;
            }
        }
        let epochs: Vec<u32> = manifest.sots.iter().map(|s| s.retile_count).collect();
        let epoch = layout_epoch(&manifest);
        let manifest_bytes = serde_json::to_vec_pretty(&manifest).map_err(|e| e.to_string())?;
        self.send(ReplicationRecord::CommitVideo {
            epoch,
            video: video.to_string(),
            manifest: manifest_bytes,
        })?;
        self.send(index_state(tasm, video)?)?;
        self.acked.insert(video.to_string(), epochs);
        Ok(())
    }

    /// Ships the SOTs of `video` whose layout epoch advanced since the
    /// backup's last ack (the retile-commit delta). Falls back to a full
    /// sync when the backup has never seen the video.
    pub fn sync_delta(&mut self, tasm: &Tasm, video: &str) -> Result<(), String> {
        if !self.acked.contains_key(video) {
            return self.sync_full(tasm, video);
        }
        let (manifest, sots) = tasm
            .replication_snapshot(video)
            .map_err(|e| format!("snapshot failed: {e}"))?;
        let manifest_bytes = serde_json::to_vec_pretty(&manifest).map_err(|e| e.to_string())?;
        let known = self.acked.get(video).cloned().unwrap_or_default();
        let mut epochs = known.clone();
        epochs.resize(manifest.sots.len(), 0);
        for (i, sot) in manifest.sots.iter().enumerate() {
            let have = known.get(i).copied().unwrap_or(0);
            if sot.retile_count <= have && known.len() == manifest.sots.len() {
                continue;
            }
            for rec in stage_chunks(video, i as u32, &sots[i]) {
                self.send(rec)?;
            }
            self.send(ReplicationRecord::CommitSot {
                epoch: sot.retile_count as u64,
                video: video.to_string(),
                sot_idx: i as u32,
                manifest: manifest_bytes.clone(),
            })?;
            epochs[i] = sot.retile_count;
        }
        self.acked.insert(video.to_string(), epochs);
        Ok(())
    }

    /// Closes the replication session cleanly.
    pub fn finish(self) -> Result<(), ClientError> {
        self.conn.goodbye()
    }
}

/// The retile daemon's replication hook: after every committed background
/// re-tile, ship the delta to every backup and ack only when all of them
/// took it — the cluster's "replicated before reported durable" point.
pub struct ReplicatorHook {
    tasm: Arc<Tasm>,
    backups: Mutex<Vec<Replicator>>,
}

impl ReplicatorHook {
    /// A hook replicating `tasm`'s re-tiles to `backups`.
    pub fn new(tasm: Arc<Tasm>, backups: Vec<Replicator>) -> ReplicatorHook {
        ReplicatorHook {
            tasm,
            backups: Mutex::new(backups),
        }
    }

    /// Connects to every backup address and ships a full sync of every
    /// registered video — the `tasm serve --backup` startup step that
    /// brings a fresh backup to the primary's current epoch.
    pub fn bootstrap(tasm: Arc<Tasm>, addrs: &[String]) -> Result<ReplicatorHook, String> {
        let mut backups = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut r = Replicator::connect(addr)?;
            for video in tasm.video_names() {
                r.sync_full(&tasm, &video)?;
            }
            backups.push(r);
        }
        Ok(ReplicatorHook::new(tasm, backups))
    }
}

impl RetileHook for ReplicatorHook {
    fn retiled(&self, video: &str) -> Result<(), String> {
        let mut backups = self.backups.lock().expect("backups lock");
        for b in backups.iter_mut() {
            b.sync_delta(&self.tasm, video)?;
        }
        Ok(())
    }
}

/// Replicates `video` in full from this node to the node at `target` —
/// the server-side implementation of the `PushVideo` administrative frame
/// (the rebalance copy step, driven by the node that owns the bytes).
pub fn push_video(tasm: &Tasm, video: &str, target: &str) -> Result<(), String> {
    let mut r = Replicator::connect(target)?;
    r.sync_full(tasm, video)?;
    r.finish().map_err(|e| format!("close failed: {e}"))?;
    Ok(())
}
