//! # tasm-proto: the TASM wire protocol
//!
//! A versioned, length-prefixed binary protocol carrying the full query
//! surface — [`Query`](tasm_core::Query) submission including ROI, stride,
//! limit, and aggregate modes; streamed result frames; service statistics;
//! and typed errors — between `tasm-server` and `tasm-client` over plain
//! TCP (`std::net` only, no external dependencies).
//!
//! ## Frame layout
//!
//! ```text
//! ┌──────────────┬──────────┬──────────────────────────────┐
//! │ u32 LE       │ u8       │ body (message-specific)      │
//! │ payload len  │ tag      │                              │
//! └──────────────┴──────────┴──────────────────────────────┘
//! ```
//!
//! All integers are little-endian; strings and byte blobs carry a `u32`
//! length prefix. Payloads are capped at [`MAX_FRAME_LEN`] so a corrupt
//! length can never demand an unbounded allocation.
//!
//! ## Session flow
//!
//! ```text
//! client                                server
//!   │ ClientHello{magic, version}         │
//!   │ ───────────────────────────────────►│  version check
//!   │ ◄─────────────────────────────────  │  ServerHello{version, max_inflight}
//!   │ Query{id, video, query}             │
//!   │ ───────────────────────────────────►│  admission control:
//!   │                                     │   queue full  → Error{id, Busy}
//!   │                                     │   cap reached → Error{id, TooManyInflight}
//!   │ ◄─────────────────────────────────  │  ResultHeader{id, matched, n, plan}
//!   │ ◄─────────────────────────────────  │  Region{id, …}   × n
//!   │ ◄─────────────────────────────────  │  ResultDone{id, summary, trace}
//!   │ StatsRequest / Goodbye / Shutdown   │
//! ```
//!
//! Every response frame echoes the request id, so a session may keep
//! several queries in flight (up to the server-advertised cap) and match
//! interleaved responses.
//!
//! ## Replication and cluster administration
//!
//! Tags `0x0c`–`0x11` carry the cluster layer's primary→backup replication
//! stream and rebalance administration:
//!
//! ```text
//! primary                               backup
//!   │ Replicate{seq, StageSot{…}}         │  tile bytes → staging
//!   │ ───────────────────────────────────►│
//!   │ ◄─────────────────────────────────  │  ReplicateAck{seq}
//!   │ Replicate{seq, CommitVideo/CommitSot}│ staged-commit publish
//!   │ ───────────────────────────────────►│
//!   │ ◄─────────────────────────────────  │  ReplicateAck{seq}   (durable)
//! ```
//!
//! `ManifestRequest`/`ManifestReply` fetch a node's manifest for replica
//! verification; `PushVideo` asks a node to replicate a video to a target
//! (the rebalance copy step); `RemoveVideo` garbage-collects a moved video
//! after the shard-map epoch flips. See [`ReplicationRecord`].
//!
//! ## Robustness contract
//!
//! Decoding untrusted bytes never panics: truncated frames, oversized
//! length prefixes, unknown tags, bad UTF-8, empty predicate clauses, and
//! plane/dimension mismatches all come back as a typed [`ProtoError`].
//! `tests/wire_protocol.rs` property-tests round-trips and truncation/
//! corruption behavior for every message type.

mod message;
pub mod nio;
mod wire;

pub use message::{
    encode_region, ErrorCode, Message, ReplicatedDetection, ReplicationRecord, ResultSummary,
    MAGIC, VERSION,
};
pub use tasm_obs::QueryTrace;
pub use wire::{
    frame, read_frame, read_frame_deadline, write_frame, ProtoError, Reader, Writer, MAX_FRAME_LEN,
};
