//! The protocol message set and its byte-level codec.

use crate::wire::{read_frame, write_frame, ProtoError, Reader, Writer};
use std::io::{Read, Write};
use tasm_core::{LabelPredicate, PlanStats, Query, QueryMode, RegionPixels, SharedScanStats};
use tasm_obs::QueryTrace;
use tasm_service::{LatencyHistogram, ServiceStats, LATENCY_BUCKETS};
use tasm_video::{Frame, Plane, Rect};

/// Protocol magic opening every client hello.
pub const MAGIC: [u8; 4] = *b"TASM";

/// Protocol version this build speaks. A server refuses hellos carrying any
/// other version with [`ErrorCode::VersionMismatch`].
pub const VERSION: u16 = 1;

/// Caps on predicate shape, far above anything the query surface produces;
/// they bound what a corrupt clause count can make the decoder build.
const MAX_CLAUSES: usize = 64;
const MAX_CLAUSE_LABELS: usize = 256;

/// Caps on replication payload shape: tile-count per staged SOT chunk and
/// index items per record. Both are far above anything the system produces
/// (layouts top out at dozens of tiles; index records ship one video's
/// detections); they bound what a corrupt count can make the decoder build.
const MAX_REPLICA_TILES: usize = 4096;
const MAX_INDEX_ITEMS: usize = 1 << 22;

mod tag {
    pub const CLIENT_HELLO: u8 = 0x01;
    pub const SERVER_HELLO: u8 = 0x02;
    pub const QUERY: u8 = 0x03;
    pub const RESULT_HEADER: u8 = 0x04;
    pub const REGION: u8 = 0x05;
    pub const RESULT_DONE: u8 = 0x06;
    pub const STATS_REQUEST: u8 = 0x07;
    pub const STATS_REPLY: u8 = 0x08;
    pub const ERROR: u8 = 0x09;
    pub const GOODBYE: u8 = 0x0a;
    pub const SHUTDOWN_SERVER: u8 = 0x0b;
    pub const REPLICATE: u8 = 0x0c;
    pub const REPLICATE_ACK: u8 = 0x0d;
    pub const MANIFEST_REQUEST: u8 = 0x0e;
    pub const MANIFEST_REPLY: u8 = 0x0f;
    pub const PUSH_VIDEO: u8 = 0x10;
    pub const REMOVE_VIDEO: u8 = 0x11;
}

/// One detection row of a replicated semantic-index state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicatedDetection {
    /// Object label.
    pub label: String,
    /// Frame the detection belongs to.
    pub frame: u32,
    /// Bounding box.
    pub rect: Rect,
}

/// One epoch-stamped primary→backup replication record, carried by
/// [`Message::Replicate`]. A full video sync is a sequence of `StageSot`
/// chunks (tile-file bytes, chunked to respect [`crate::MAX_FRAME_LEN`])
/// closed by one `CommitVideo`; a re-tile ships the changed SOT's tiles and
/// a `CommitSot`. Tile bytes travel verbatim, so the backup's files are
/// byte-identical to the primary's and a failed-over replica answers
/// bit-identically at the same layout epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationRecord {
    /// Tile-file bytes for one SOT, staged on the backup until a commit
    /// record lands. Consecutive `StageSot` frames for the same
    /// `(video, sot_idx)` append tiles in order.
    StageSot {
        /// Video name.
        video: String,
        /// Index of the SOT within the manifest.
        sot_idx: u32,
        /// Raw tile-file bytes, in tile order (possibly a chunk).
        tiles: Vec<Vec<u8>>,
    },
    /// Publish a whole staged video under `manifest` (JSON bytes, shipped
    /// verbatim from the primary).
    CommitVideo {
        /// The video's layout epoch (sum of per-SOT retile counts).
        epoch: u64,
        /// Video name.
        video: String,
        /// The primary's manifest, JSON-encoded.
        manifest: Vec<u8>,
    },
    /// Publish one staged SOT of an existing video at its new layout epoch.
    CommitSot {
        /// The SOT's post-commit `retile_count`.
        epoch: u64,
        /// Video name.
        video: String,
        /// Index of the re-tiled SOT within the manifest.
        sot_idx: u32,
        /// The primary's post-commit manifest, JSON-encoded.
        manifest: Vec<u8>,
    },
    /// The video's semantic-index state: every detection plus the set of
    /// detector-processed frames.
    IndexState {
        /// Video name.
        video: String,
        /// All detections of the video.
        detections: Vec<ReplicatedDetection>,
        /// Frames marked detector-processed.
        processed: Vec<u32>,
    },
}

/// Typed rejection codes carried by [`Message::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The service's submission queue is full — retry later. Returned
    /// instead of blocking the socket (admission control).
    Busy,
    /// The session already has its configured maximum of queries in
    /// flight.
    TooManyInflight,
    /// The server is at its connection limit; the connection is closed
    /// after this frame.
    TooManyConnections,
    /// The server is shutting down and accepts no new queries.
    ShuttingDown,
    /// The client hello's protocol version is not supported.
    VersionMismatch,
    /// The peer sent a frame this side could not decode; the connection is
    /// closed after this frame (a corrupt length-prefixed stream cannot be
    /// resynchronized).
    Malformed,
    /// The named video is not registered on the server.
    UnknownVideo,
    /// The query failed inside the storage manager.
    Internal,
    /// The query's `AS OF` epoch is not live on the server — it was never
    /// published, or its last reader drained and it has been reclaimed.
    EpochNotLive,
}

impl ErrorCode {
    fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Busy => 0,
            ErrorCode::TooManyInflight => 1,
            ErrorCode::TooManyConnections => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::VersionMismatch => 4,
            ErrorCode::Malformed => 5,
            ErrorCode::UnknownVideo => 6,
            ErrorCode::Internal => 7,
            ErrorCode::EpochNotLive => 8,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtoError> {
        Ok(match v {
            0 => ErrorCode::Busy,
            1 => ErrorCode::TooManyInflight,
            2 => ErrorCode::TooManyConnections,
            3 => ErrorCode::ShuttingDown,
            4 => ErrorCode::VersionMismatch,
            5 => ErrorCode::Malformed,
            6 => ErrorCode::UnknownVideo,
            7 => ErrorCode::Internal,
            8 => ErrorCode::EpochNotLive,
            other => return Err(ProtoError::UnknownErrorCode(other)),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Busy => "busy",
            ErrorCode::TooManyInflight => "too many queries in flight",
            ErrorCode::TooManyConnections => "too many connections",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::VersionMismatch => "protocol version mismatch",
            ErrorCode::Malformed => "malformed frame",
            ErrorCode::UnknownVideo => "unknown video",
            ErrorCode::Internal => "internal error",
            ErrorCode::EpochNotLive => "epoch not live",
        };
        f.write_str(s)
    }
}

/// Decode-side accounting attached to a completed remote query
/// ([`Message::ResultDone`]): what the server actually did for it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultSummary {
    /// Samples decoded for this query (cache reuse excluded).
    pub samples_decoded: u64,
    /// Samples served from the decoded-GOP cache.
    pub samples_reused: u64,
    /// Decoded-GOP cache hits.
    pub cache_hits: u64,
    /// Decoded-GOP cache misses.
    pub cache_misses: u64,
    /// Shared-scan dedup: GOP decodes owned vs. joined.
    pub shared: SharedScanStats,
    /// Server-side semantic-index lookup time, microseconds.
    pub lookup_micros: u64,
    /// Server-side decode execution wall clock, microseconds.
    pub exec_micros: u64,
}

/// One protocol message. Each message travels in one length-prefixed frame
/// (see the crate docs for the frame layout); `Query` results stream back as a
/// [`Message::ResultHeader`], zero or more [`Message::Region`] frames, and
/// a closing [`Message::ResultDone`], all carrying the request id so a
/// session can interleave responses of concurrent in-flight queries.
#[derive(Debug, Clone)]
pub enum Message {
    /// Client → server, first frame on a connection: magic plus version.
    ClientHello {
        /// Protocol version the client speaks.
        version: u16,
    },
    /// Server → client handshake acceptance.
    ServerHello {
        /// Protocol version the server speaks.
        version: u16,
        /// Per-session in-flight query cap the server will enforce.
        max_inflight: u32,
    },
    /// Client → server: execute `query` against `video`.
    Query {
        /// Client-chosen request id echoed on every response frame.
        id: u64,
        /// Video name, as registered on the server.
        video: String,
        /// The full spatiotemporal query (predicate ∧ ROI/stride/limit ∧
        /// aggregate mode).
        query: Query,
        /// Client-supplied distributed trace id. `None` lets the server
        /// assign one at admission; either way the id comes back on the
        /// [`Message::ResultDone`] trace.
        trace_id: Option<u64>,
    },
    /// Server → client: the query matched; `regions` region frames follow.
    ResultHeader {
        /// Echoed request id.
        id: u64,
        /// Regions matching the query's predicates (aggregate modes report
        /// this without materializing pixels).
        matched: u64,
        /// Number of [`Message::Region`] frames that follow.
        regions: u32,
        /// Planner accounting for this query.
        plan: PlanStats,
        /// The layout epoch the server executed the query against. Echoes
        /// the pinned epoch for `AS OF` queries; otherwise reports the
        /// epoch current at plan time.
        epoch: u64,
    },
    /// Server → client: one matched region with its pixels.
    ///
    /// Protocol limit: a region's encoded planes must fit one frame
    /// ([`crate::MAX_FRAME_LEN`]), which holds for any region up to an
    /// 8K video frame (~33 Mpixels ≈ 50 MiB of 4:2:0 planes) — beyond
    /// every source this storage manager serves. Larger regions would
    /// need a chunked region stream in a future protocol version.
    Region {
        /// Echoed request id.
        id: u64,
        /// The region (frame number, rectangle, decoded pixels).
        region: RegionPixels,
    },
    /// Server → client: the query's response stream is complete.
    ResultDone {
        /// Echoed request id.
        id: u64,
        /// What serving the query cost.
        summary: ResultSummary,
        /// Per-phase execution trace of the query on the node that served
        /// it, tagged with the serving instance and executed epoch. The
        /// router relays it unchanged, so a routed query's trace names the
        /// shard that ran it.
        trace: Option<QueryTrace>,
    },
    /// Client → server: report aggregate service statistics.
    StatsRequest,
    /// Server → client: the service statistics snapshot, including the
    /// latency histogram. Boxed: the histogram makes `ServiceStats` by far
    /// the largest body, and it would otherwise size every `Message`.
    StatsReply {
        /// Aggregate service counters.
        stats: Box<ServiceStats>,
    },
    /// Either direction: a typed failure. `id` names the request it
    /// belongs to, or `None` for connection-level errors.
    Error {
        /// Request the error belongs to, if any.
        id: Option<u64>,
        /// The typed rejection.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Client → server: clean close of the session.
    Goodbye,
    /// Client → server (administrative): ask the whole server to shut down
    /// gracefully — drain in-flight queries, stop the retile daemon, exit.
    ShutdownServer,
    /// Primary → backup: one replication record. The backup replies with
    /// [`Message::ReplicateAck`] echoing `seq` once the record is durably
    /// applied (or staged), or [`Message::Error`] carrying `seq` as its id.
    Replicate {
        /// Sender-chosen sequence number echoed on the ack.
        seq: u64,
        /// The record.
        record: ReplicationRecord,
    },
    /// Backup → primary: the record with this `seq` is durable.
    ReplicateAck {
        /// Echoed sequence number.
        seq: u64,
    },
    /// Client → server (administrative): fetch a video's manifest, for
    /// replica verification.
    ManifestRequest {
        /// Video name.
        video: String,
    },
    /// Server → client: the manifest, JSON-encoded exactly as stored.
    ManifestReply {
        /// Echoed video name.
        video: String,
        /// Manifest JSON bytes.
        manifest: Vec<u8>,
    },
    /// Client → server (administrative): replicate `video` in full to the
    /// node at `target` (the rebalance copy step, driven by the node that
    /// owns the bytes). Acked with [`Message::ReplicateAck`].
    PushVideo {
        /// Sender-chosen sequence number echoed on the ack.
        seq: u64,
        /// Video name.
        video: String,
        /// `host:port` of the receiving node.
        target: String,
    },
    /// Client → server (administrative): drop `video` from this node after
    /// draining in-flight queries (the rebalance GC step). Acked with
    /// [`Message::ReplicateAck`].
    RemoveVideo {
        /// Sender-chosen sequence number echoed on the ack.
        seq: u64,
        /// Video name.
        video: String,
    },
}

impl Message {
    /// Encodes the full frame: length prefix plus tagged payload.
    pub fn encode(&self) -> Vec<u8> {
        crate::wire::frame(&self.encode_payload())
    }

    /// Encodes the payload (tag plus body) without the length prefix.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Message::ClientHello { version } => {
                w.u8(tag::CLIENT_HELLO);
                for b in MAGIC {
                    w.u8(b);
                }
                w.u16(*version);
            }
            Message::ServerHello {
                version,
                max_inflight,
            } => {
                w.u8(tag::SERVER_HELLO);
                w.u16(*version);
                w.u32(*max_inflight);
            }
            Message::Query {
                id,
                video,
                query,
                trace_id,
            } => {
                w.u8(tag::QUERY);
                w.u64(*id);
                w.str(video);
                encode_query(&mut w, query);
                match trace_id {
                    Some(trace_id) => {
                        w.u8(1);
                        w.u64(*trace_id);
                    }
                    None => w.u8(0),
                }
            }
            Message::ResultHeader {
                id,
                matched,
                regions,
                plan,
                epoch,
            } => {
                w.u8(tag::RESULT_HEADER);
                w.u64(*id);
                w.u64(*matched);
                w.u32(*regions);
                encode_plan(&mut w, plan);
                w.u64(*epoch);
            }
            Message::Region { id, region } => encode_region_payload(&mut w, *id, region),
            Message::ResultDone { id, summary, trace } => {
                w.u8(tag::RESULT_DONE);
                w.u64(*id);
                w.u64(summary.samples_decoded);
                w.u64(summary.samples_reused);
                w.u64(summary.cache_hits);
                w.u64(summary.cache_misses);
                w.u64(summary.shared.owned);
                w.u64(summary.shared.joined);
                w.u64(summary.lookup_micros);
                w.u64(summary.exec_micros);
                match trace {
                    Some(trace) => {
                        w.u8(1);
                        encode_trace(&mut w, trace);
                    }
                    None => w.u8(0),
                }
            }
            Message::StatsRequest => w.u8(tag::STATS_REQUEST),
            Message::StatsReply { stats } => {
                w.u8(tag::STATS_REPLY);
                encode_stats(&mut w, stats);
            }
            Message::Error { id, code, message } => {
                w.u8(tag::ERROR);
                match id {
                    Some(id) => {
                        w.u8(1);
                        w.u64(*id);
                    }
                    None => w.u8(0),
                }
                w.u8(code.as_u8());
                w.str(message);
            }
            Message::Goodbye => w.u8(tag::GOODBYE),
            Message::ShutdownServer => w.u8(tag::SHUTDOWN_SERVER),
            Message::Replicate { seq, record } => {
                w.u8(tag::REPLICATE);
                w.u64(*seq);
                encode_record(&mut w, record);
            }
            Message::ReplicateAck { seq } => {
                w.u8(tag::REPLICATE_ACK);
                w.u64(*seq);
            }
            Message::ManifestRequest { video } => {
                w.u8(tag::MANIFEST_REQUEST);
                w.str(video);
            }
            Message::ManifestReply { video, manifest } => {
                w.u8(tag::MANIFEST_REPLY);
                w.str(video);
                w.bytes(manifest);
            }
            Message::PushVideo { seq, video, target } => {
                w.u8(tag::PUSH_VIDEO);
                w.u64(*seq);
                w.str(video);
                w.str(target);
            }
            Message::RemoveVideo { seq, video } => {
                w.u8(tag::REMOVE_VIDEO);
                w.u64(*seq);
                w.str(video);
            }
        }
        w.into_bytes()
    }

    /// Decodes one payload (tag plus body, no length prefix). The payload
    /// must be consumed exactly; malformed input of any shape returns a
    /// typed [`ProtoError`], never panics.
    pub fn decode_payload(payload: &[u8]) -> Result<Message, ProtoError> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            tag::CLIENT_HELLO => {
                let magic = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
                if magic != MAGIC {
                    return Err(ProtoError::BadMagic(magic));
                }
                Message::ClientHello { version: r.u16()? }
            }
            tag::SERVER_HELLO => Message::ServerHello {
                version: r.u16()?,
                max_inflight: r.u32()?,
            },
            tag::QUERY => Message::Query {
                id: r.u64()?,
                video: r.str()?,
                query: decode_query(&mut r)?,
                trace_id: match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    _ => return Err(ProtoError::Malformed("trace id presence flag")),
                },
            },
            tag::RESULT_HEADER => Message::ResultHeader {
                id: r.u64()?,
                matched: r.u64()?,
                regions: r.u32()?,
                plan: decode_plan(&mut r)?,
                epoch: r.u64()?,
            },
            tag::REGION => {
                let id = r.u64()?;
                let frame = r.u32()?;
                let rect = decode_rect(&mut r)?;
                let (width, height) = (r.u32()?, r.u32()?);
                let y = r.bytes()?;
                let u = r.bytes()?;
                let v = r.bytes()?;
                let pixels = Frame::from_planes(width, height, y, u, v)
                    .ok_or(ProtoError::Malformed("region plane dimensions"))?;
                Message::Region {
                    id,
                    region: RegionPixels {
                        frame,
                        rect,
                        pixels,
                    },
                }
            }
            tag::RESULT_DONE => Message::ResultDone {
                id: r.u64()?,
                summary: ResultSummary {
                    samples_decoded: r.u64()?,
                    samples_reused: r.u64()?,
                    cache_hits: r.u64()?,
                    cache_misses: r.u64()?,
                    shared: SharedScanStats {
                        owned: r.u64()?,
                        joined: r.u64()?,
                    },
                    lookup_micros: r.u64()?,
                    exec_micros: r.u64()?,
                },
                trace: match r.u8()? {
                    0 => None,
                    1 => Some(decode_trace(&mut r)?),
                    _ => return Err(ProtoError::Malformed("trace presence flag")),
                },
            },
            tag::STATS_REQUEST => Message::StatsRequest,
            tag::STATS_REPLY => Message::StatsReply {
                stats: Box::new(decode_stats(&mut r)?),
            },
            tag::ERROR => {
                let id = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    _ => return Err(ProtoError::Malformed("error id presence flag")),
                };
                Message::Error {
                    id,
                    code: ErrorCode::from_u8(r.u8()?)?,
                    message: r.str()?,
                }
            }
            tag::GOODBYE => Message::Goodbye,
            tag::SHUTDOWN_SERVER => Message::ShutdownServer,
            tag::REPLICATE => Message::Replicate {
                seq: r.u64()?,
                record: decode_record(&mut r)?,
            },
            tag::REPLICATE_ACK => Message::ReplicateAck { seq: r.u64()? },
            tag::MANIFEST_REQUEST => Message::ManifestRequest { video: r.str()? },
            tag::MANIFEST_REPLY => Message::ManifestReply {
                video: r.str()?,
                manifest: r.bytes()?,
            },
            tag::PUSH_VIDEO => Message::PushVideo {
                seq: r.u64()?,
                video: r.str()?,
                target: r.str()?,
            },
            tag::REMOVE_VIDEO => Message::RemoveVideo {
                seq: r.u64()?,
                video: r.str()?,
            },
            other => return Err(ProtoError::UnknownMessage(other)),
        };
        r.finish()?;
        Ok(msg)
    }

    /// Writes this message as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write_frame(w, &self.encode_payload())
    }

    /// Reads and decodes one frame (see [`read_frame`] for the timeout
    /// contract).
    pub fn read_from(r: &mut impl Read) -> Result<Message, ProtoError> {
        let payload = read_frame(r)?;
        Message::decode_payload(&payload)
    }

    /// [`Message::read_from`] with a wall-clock bound on receiving the
    /// frame once it has started arriving (see
    /// [`crate::read_frame_deadline`]). Used by server sessions so no
    /// peer can pin a connection slot mid-frame indefinitely.
    pub fn read_from_bounded(
        r: &mut impl Read,
        max_frame_time: std::time::Duration,
    ) -> Result<Message, ProtoError> {
        let payload = crate::wire::read_frame_deadline(r, Some(max_frame_time))?;
        Message::decode_payload(&payload)
    }
}

fn encode_region_payload(w: &mut Writer, id: u64, region: &RegionPixels) {
    w.u8(tag::REGION);
    w.u64(id);
    w.u32(region.frame);
    encode_rect(w, &region.rect);
    w.u32(region.pixels.width());
    w.u32(region.pixels.height());
    for plane in Plane::ALL {
        w.bytes(region.pixels.plane(plane));
    }
}

/// Encodes a [`Message::Region`] frame (length prefix included) from a
/// borrowed region, sparing the server a pixel-plane clone per streamed
/// region: the planes are written once, directly into the final frame
/// buffer (the length prefix is reserved up front and patched, so no
/// second copy either).
pub fn encode_region(id: u64, region: &RegionPixels) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(0); // length placeholder
    encode_region_payload(&mut w, id, region);
    let mut out = w.into_bytes();
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
    out
}

fn encode_record(w: &mut Writer, rec: &ReplicationRecord) {
    match rec {
        ReplicationRecord::StageSot {
            video,
            sot_idx,
            tiles,
        } => {
            w.u8(0);
            w.str(video);
            w.u32(*sot_idx);
            w.u32(tiles.len() as u32);
            for t in tiles {
                w.bytes(t);
            }
        }
        ReplicationRecord::CommitVideo {
            epoch,
            video,
            manifest,
        } => {
            w.u8(1);
            w.u64(*epoch);
            w.str(video);
            w.bytes(manifest);
        }
        ReplicationRecord::CommitSot {
            epoch,
            video,
            sot_idx,
            manifest,
        } => {
            w.u8(2);
            w.u64(*epoch);
            w.str(video);
            w.u32(*sot_idx);
            w.bytes(manifest);
        }
        ReplicationRecord::IndexState {
            video,
            detections,
            processed,
        } => {
            w.u8(3);
            w.str(video);
            w.u32(detections.len() as u32);
            for d in detections {
                w.str(&d.label);
                w.u32(d.frame);
                encode_rect(w, &d.rect);
            }
            w.u32(processed.len() as u32);
            for &f in processed {
                w.u32(f);
            }
        }
    }
}

fn decode_record(r: &mut Reader<'_>) -> Result<ReplicationRecord, ProtoError> {
    Ok(match r.u8()? {
        0 => {
            let video = r.str()?;
            let sot_idx = r.u32()?;
            let n = r.u32()? as usize;
            if n > MAX_REPLICA_TILES {
                return Err(ProtoError::Malformed("staged tile count"));
            }
            let mut tiles = Vec::new();
            for _ in 0..n {
                tiles.push(r.bytes()?);
            }
            ReplicationRecord::StageSot {
                video,
                sot_idx,
                tiles,
            }
        }
        1 => ReplicationRecord::CommitVideo {
            epoch: r.u64()?,
            video: r.str()?,
            manifest: r.bytes()?,
        },
        2 => ReplicationRecord::CommitSot {
            epoch: r.u64()?,
            video: r.str()?,
            sot_idx: r.u32()?,
            manifest: r.bytes()?,
        },
        3 => {
            let video = r.str()?;
            let n = r.u32()? as usize;
            if n > MAX_INDEX_ITEMS {
                return Err(ProtoError::Malformed("replicated detection count"));
            }
            let mut detections = Vec::new();
            for _ in 0..n {
                detections.push(ReplicatedDetection {
                    label: r.str()?,
                    frame: r.u32()?,
                    rect: decode_rect(r)?,
                });
            }
            let n = r.u32()? as usize;
            if n > MAX_INDEX_ITEMS {
                return Err(ProtoError::Malformed("processed frame count"));
            }
            let mut processed = Vec::new();
            for _ in 0..n {
                processed.push(r.u32()?);
            }
            ReplicationRecord::IndexState {
                video,
                detections,
                processed,
            }
        }
        _ => return Err(ProtoError::Malformed("replication record kind")),
    })
}

fn encode_rect(w: &mut Writer, r: &Rect) {
    w.u32(r.x);
    w.u32(r.y);
    w.u32(r.w);
    w.u32(r.h);
}

fn decode_rect(r: &mut Reader<'_>) -> Result<Rect, ProtoError> {
    Ok(Rect::new(r.u32()?, r.u32()?, r.u32()?, r.u32()?))
}

fn encode_query(w: &mut Writer, q: &Query) {
    let clauses = q.predicate().clauses();
    w.u16(clauses.len() as u16);
    for clause in clauses {
        w.u16(clause.len() as u16);
        for label in clause {
            w.str(label);
        }
    }
    let frames = q.frame_range();
    w.u32(frames.start);
    w.u32(frames.end);
    match q.roi_rect() {
        Some(roi) => {
            w.u8(1);
            encode_rect(w, &roi);
        }
        None => w.u8(0),
    }
    w.u32(q.stride_len());
    match q.limit_count() {
        Some(limit) => {
            w.u8(1);
            w.u32(limit);
        }
        None => w.u8(0),
    }
    w.u8(match q.query_mode() {
        QueryMode::Pixels => 0,
        QueryMode::Count => 1,
        QueryMode::Exists => 2,
    });
    match q.as_of_epoch() {
        Some(epoch) => {
            w.u8(1);
            w.u64(epoch);
        }
        None => w.u8(0),
    }
}

fn decode_query(r: &mut Reader<'_>) -> Result<Query, ProtoError> {
    let n_clauses = r.u16()? as usize;
    if n_clauses == 0 || n_clauses > MAX_CLAUSES {
        return Err(ProtoError::Malformed("predicate clause count"));
    }
    let mut predicate: Option<LabelPredicate> = None;
    for _ in 0..n_clauses {
        let n_labels = r.u16()? as usize;
        if n_labels == 0 || n_labels > MAX_CLAUSE_LABELS {
            return Err(ProtoError::Malformed("clause label count"));
        }
        let labels: Vec<String> = (0..n_labels).map(|_| r.str()).collect::<Result<_, _>>()?;
        let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
        predicate = Some(match predicate {
            None => LabelPredicate::any_of(&refs),
            Some(p) => p.and(&refs),
        });
    }
    let predicate = predicate.expect("n_clauses >= 1");
    let (start, end) = (r.u32()?, r.u32()?);
    let mut query = Query::new(predicate).frames(start..end);
    match r.u8()? {
        0 => {}
        1 => query = query.roi(decode_rect(r)?),
        _ => return Err(ProtoError::Malformed("roi presence flag")),
    }
    let stride = r.u32()?;
    if stride == 0 {
        return Err(ProtoError::Malformed("zero stride"));
    }
    query = query.stride(stride);
    match r.u8()? {
        0 => {}
        1 => query = query.limit(r.u32()?),
        _ => return Err(ProtoError::Malformed("limit presence flag")),
    }
    query = query.mode(match r.u8()? {
        0 => QueryMode::Pixels,
        1 => QueryMode::Count,
        2 => QueryMode::Exists,
        other => return Err(ProtoError::UnknownQueryMode(other)),
    });
    match r.u8()? {
        0 => {}
        1 => query = query.as_of(r.u64()?),
        _ => return Err(ProtoError::Malformed("as-of presence flag")),
    }
    Ok(query)
}

fn encode_trace(w: &mut Writer, t: &QueryTrace) {
    w.u64(t.trace_id);
    w.str(&t.instance);
    w.u64(t.epoch);
    w.u64(t.queue_micros);
    w.u64(t.plan_micros);
    w.u64(t.decode_micros);
    w.u64(t.stream_micros);
    w.u64(t.total_micros);
}

fn decode_trace(r: &mut Reader<'_>) -> Result<QueryTrace, ProtoError> {
    Ok(QueryTrace {
        trace_id: r.u64()?,
        instance: r.str()?,
        epoch: r.u64()?,
        queue_micros: r.u64()?,
        plan_micros: r.u64()?,
        decode_micros: r.u64()?,
        stream_micros: r.u64()?,
        total_micros: r.u64()?,
    })
}

fn encode_plan(w: &mut Writer, p: &PlanStats) {
    w.u64(p.tiles_planned);
    w.u64(p.tiles_pruned);
    w.u64(p.gops_planned);
    w.u64(p.gops_skipped);
    w.u64(p.frames_sampled);
}

fn decode_plan(r: &mut Reader<'_>) -> Result<PlanStats, ProtoError> {
    Ok(PlanStats {
        tiles_planned: r.u64()?,
        tiles_pruned: r.u64()?,
        gops_planned: r.u64()?,
        gops_skipped: r.u64()?,
        frames_sampled: r.u64()?,
    })
}

fn encode_stats(w: &mut Writer, s: &ServiceStats) {
    w.u64(s.submitted);
    w.u64(s.completed);
    w.u64(s.failed);
    w.u64(s.samples_decoded);
    w.u64(s.samples_reused);
    w.u64(s.cache_hits);
    w.u64(s.cache_misses);
    w.u64(s.shared.owned);
    w.u64(s.shared.joined);
    encode_plan(w, &s.plan);
    w.u64(s.retile_ops);
    w.u64(s.retile_errors);
    w.u64(s.queue_peak);
    w.u64(s.latency.count);
    w.u64(s.latency.total_micros);
    w.u16(LATENCY_BUCKETS as u16);
    for &b in &s.latency.buckets {
        w.u64(b);
    }
}

fn decode_stats(r: &mut Reader<'_>) -> Result<ServiceStats, ProtoError> {
    let mut s = ServiceStats {
        submitted: r.u64()?,
        completed: r.u64()?,
        failed: r.u64()?,
        samples_decoded: r.u64()?,
        samples_reused: r.u64()?,
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        shared: SharedScanStats {
            owned: r.u64()?,
            joined: r.u64()?,
        },
        plan: decode_plan(r)?,
        ..Default::default()
    };
    s.retile_ops = r.u64()?;
    s.retile_errors = r.u64()?;
    s.queue_peak = r.u64()?;
    let mut latency = LatencyHistogram {
        count: r.u64()?,
        total_micros: r.u64()?,
        ..Default::default()
    };
    if r.u16()? as usize != LATENCY_BUCKETS {
        return Err(ProtoError::Malformed("latency bucket count"));
    }
    for b in latency.buckets.iter_mut() {
        *b = r.u64()?;
    }
    s.latency = latency;
    Ok(s)
}
