//! Byte-level primitives: the frame envelope, the decode cursor, and the
//! typed error set.
//!
//! Every message travels in one *frame*: a little-endian `u32` payload
//! length followed by the payload (a one-byte message tag plus the message
//! body). Decoding never panics — every malformed input, from a truncated
//! buffer to an oversized length prefix, surfaces as a [`ProtoError`].

use std::io::{self, Read, Write};

/// Largest payload a peer will accept. Caps the allocation a corrupt (or
/// hostile) length prefix can demand; a full-HD region frame is ~3 MiB, so
/// 64 MiB leaves generous headroom.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Errors surfaced while encoding to or decoding from the wire.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed (includes read timeouts, surfaced
    /// as [`io::ErrorKind::WouldBlock`] / [`io::ErrorKind::TimedOut`]).
    Io(io::Error),
    /// The buffer ended before the field being decoded.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// The payload's message tag is not part of this protocol version.
    UnknownMessage(u8),
    /// An error frame carried an unknown error code.
    UnknownErrorCode(u8),
    /// A query frame carried an unknown aggregate-mode tag.
    UnknownQueryMode(u8),
    /// The client hello did not start with the protocol magic.
    BadMagic([u8; 4]),
    /// A structurally invalid field (bad UTF-8, empty predicate clause,
    /// plane lengths disagreeing with the region dimensions, …).
    Malformed(&'static str),
    /// Decoding finished with bytes left over — the peer and this side
    /// disagree about the message layout.
    TrailingBytes(usize),
    /// The peer stopped sending mid-frame (too many consecutive
    /// zero-progress poll timeouts, or past the [`read_frame_deadline`]
    /// wall clock). Unlike a between-frames timeout this is not
    /// retryable: the stream position is inside a torn frame.
    Stalled,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "wire i/o error: {e}"),
            ProtoError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            ProtoError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            ProtoError::UnknownMessage(tag) => write!(f, "unknown message tag {tag:#04x}"),
            ProtoError::UnknownErrorCode(code) => write!(f, "unknown error code {code}"),
            ProtoError::UnknownQueryMode(mode) => write!(f, "unknown query mode {mode}"),
            ProtoError::BadMagic(m) => write!(f, "bad protocol magic {m:02x?}"),
            ProtoError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            ProtoError::Stalled => write!(f, "peer stalled mid-frame"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl ProtoError {
    /// True for the read-timeout shape of [`ProtoError::Io`]: no frame had
    /// started arriving when the socket's read timeout fired. The caller
    /// may safely retry the read (used by server sessions to poll their
    /// shutdown flag between frames).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ProtoError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// A little-endian encoder appending to a byte buffer.
///
/// Infallible: encoding works on in-memory data that is valid by
/// construction; only the transport write can fail, and that happens in
/// [`write_frame`].
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with a `u32` length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u32` length prefix.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// A bounds-checked little-endian decode cursor over a payload slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a `u32`-length-prefixed byte string. The length is validated
    /// against the remaining payload before anything is copied, so a
    /// corrupt prefix cannot demand an outsized allocation.
    pub fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        std::str::from_utf8(raw)
            .map(|s| s.to_string())
            .map_err(|_| ProtoError::Malformed("invalid UTF-8 in string"))
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.remaining()))
        }
    }
}

/// Consecutive zero-progress timeout reads tolerated once a frame has
/// started arriving. A live peer delivers the rest of a frame promptly;
/// this bounds how long a crashed or partitioned peer mid-frame can pin a
/// session thread (and therefore a graceful server shutdown): with the
/// server's default 25 ms poll interval, 200 stalled polls ≈ 5 s.
const MAX_STALLED_READS: u32 = 200;

/// Assembles one frame: length prefix plus `payload`. The single place
/// the envelope is laid out — [`write_frame`] and every encoder build on
/// it.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one frame — length prefix plus `payload` — to the transport.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame(payload))?;
    w.flush()
}

/// Reads one frame payload from the transport.
///
/// Timeout semantics (for sockets with a read timeout set): if the timeout
/// fires before *any* byte of the frame arrived, the timeout `Io` error is
/// returned and the stream is positioned to retry cleanly — sessions use
/// this to poll their shutdown flag between frames. Once a frame has
/// started arriving, short reads are retried until the frame completes, so
/// a timeout can never tear a frame in half.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    read_frame_deadline(r, None)
}

/// [`read_frame`] with a wall-clock bound on the whole frame once its
/// first byte has arrived: a peer trickling bytes (one per poll, fast
/// enough to defeat the zero-progress stall counter) surfaces as
/// [`ProtoError::Stalled`] when the deadline expires. Servers use this so
/// no connection can pin a session slot — or a graceful shutdown — beyond
/// the bound; clients on slow links should prefer the unbounded
/// [`read_frame`].
pub fn read_frame_deadline(
    r: &mut impl Read,
    max_frame_time: Option<std::time::Duration>,
) -> Result<Vec<u8>, ProtoError> {
    let deadline = max_frame_time.map(|d| std::time::Instant::now() + d);
    let mut len_buf = [0u8; 4];
    read_exact_retrying(r, &mut len_buf, false, deadline)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_retrying(r, &mut payload, true, deadline)?;
    Ok(payload)
}

/// `read_exact` that retries timeout errors once committed to a frame
/// (`started`, or after the first byte lands), so poll-style read timeouts
/// only ever surface on frame boundaries. Mid-frame retries are bounded
/// two ways: [`MAX_STALLED_READS`] zero-progress polls (a peer that dies
/// mid-frame) and the optional wall-clock `deadline` (a peer that keeps
/// trickling single bytes); either surfaces as [`ProtoError::Stalled`].
fn read_exact_retrying(
    r: &mut impl Read,
    buf: &mut [u8],
    started: bool,
    deadline: Option<std::time::Instant>,
) -> Result<(), ProtoError> {
    let mut filled = 0usize;
    let mut stalled = 0u32;
    while filled < buf.len() {
        if let Some(deadline) = deadline {
            if (started || filled > 0) && std::time::Instant::now() >= deadline {
                return Err(ProtoError::Stalled);
            }
        }
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ProtoError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => {
                filled += n;
                stalled = 0;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if !started && filled == 0 {
                    return Err(ProtoError::Io(e));
                }
                // Mid-frame: the peer has committed to this frame, keep
                // reading — but not forever.
                stalled += 1;
                if stalled >= MAX_STALLED_READS {
                    return Err(ProtoError::Stalled);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(1000);
        w.u32(123_456);
        w.u64(u64::MAX);
        w.str("tile");
        w.bytes(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 1000);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.str().unwrap(), "tile");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(
            r.u32(),
            Err(ProtoError::Truncated {
                needed: 4,
                available: 2
            })
        ));
    }

    #[test]
    fn corrupt_length_prefix_cannot_demand_a_huge_allocation() {
        // A string length prefix pointing far past the payload fails the
        // bounds check before any allocation happens.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bytes(), Err(ProtoError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = Reader::new(&[0]);
        assert!(matches!(r.finish(), Err(ProtoError::TrailingBytes(1))));
    }

    #[test]
    fn oversized_frame_is_rejected_before_reading_its_body() {
        let mut stream = std::io::Cursor::new((MAX_FRAME_LEN + 1).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut stream),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn eof_mid_frame_is_io_not_panic() {
        // Length says 10 bytes, stream has 3.
        let mut bytes = 10u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut stream = std::io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut stream), Err(ProtoError::Io(_))));
    }
}
