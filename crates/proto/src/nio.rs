//! Nonblocking framing: incremental frame assembly and resumable frame
//! writes for readiness-driven (reactor) transports.
//!
//! The blocking helpers in [`wire`](crate::wire) own the socket for the
//! duration of a frame; a reactor cannot afford that — a peer that
//! delivers half a length prefix must cost nothing but buffered bytes.
//! [`FrameReader`] accumulates one frame across any number of partial
//! reads and hands back complete payloads; [`FrameQueue`] holds encoded
//! frames and writes them through any sink that may accept fewer bytes
//! than offered (or none at all, `WouldBlock`), resumable at any byte
//! offset. Both are pure byte-level state machines: no sockets, no
//! threads, fully deterministic — which is what makes the partial-write
//! property tests possible.

use crate::wire::{ProtoError, MAX_FRAME_LEN};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::time::Instant;

/// What one [`FrameReader::fill_from`] pass produced.
#[derive(Debug)]
pub enum ReadProgress {
    /// A complete frame payload (length prefix stripped).
    Frame(Vec<u8>),
    /// The reader needs more bytes; the source is drained for now.
    NeedMore,
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
}

/// Incremental frame assembler: feeds on a nonblocking byte source and
/// yields one length-prefixed frame at a time, never blocking mid-frame.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// The four length-prefix bytes, filled left to right.
    len_buf: [u8; 4],
    len_filled: usize,
    /// Payload buffer, allocated once the prefix is complete.
    payload: Vec<u8>,
    payload_filled: usize,
    /// When the first byte of the in-progress frame arrived; `None` at a
    /// frame boundary. The reactor's timer sweep uses this to bound how
    /// long a byte-trickling peer can pin a session.
    started: Option<Instant>,
}

impl FrameReader {
    /// A reader at a frame boundary.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// True while a frame is partially assembled (a stall here is a
    /// protocol violation after the deadline, not an idle session).
    pub fn mid_frame(&self) -> bool {
        self.started.is_some()
    }

    /// When the in-progress frame started arriving.
    pub fn frame_started(&self) -> Option<Instant> {
        self.started
    }

    /// Reads as many bytes as the source will give without blocking and
    /// returns at most one complete frame. Call again after
    /// [`ReadProgress::Frame`] — more pipelined frames may already be
    /// buffered in the kernel. `WouldBlock`/`Interrupted` map to
    /// [`ReadProgress::NeedMore`]; EOF at a frame boundary maps to
    /// [`ReadProgress::Closed`], EOF mid-frame to
    /// [`ProtoError::Stalled`].
    pub fn fill_from(&mut self, src: &mut impl Read) -> Result<ReadProgress, ProtoError> {
        loop {
            if self.len_filled < 4 {
                match src.read(&mut self.len_buf[self.len_filled..4]) {
                    Ok(0) => {
                        return if self.len_filled == 0 {
                            Ok(ReadProgress::Closed)
                        } else {
                            Err(ProtoError::Stalled)
                        };
                    }
                    Ok(n) => {
                        if self.started.is_none() {
                            self.started = Some(Instant::now());
                        }
                        self.len_filled += n;
                        if self.len_filled < 4 {
                            continue;
                        }
                        let len = u32::from_le_bytes(self.len_buf);
                        if len > MAX_FRAME_LEN {
                            return Err(ProtoError::Oversized(len));
                        }
                        self.payload = vec![0u8; len as usize];
                        self.payload_filled = 0;
                    }
                    Err(e) if retryable(&e) => return Ok(ReadProgress::NeedMore),
                    Err(e) => return Err(ProtoError::Io(e)),
                }
            }
            if self.payload_filled < self.payload.len() {
                match src.read(&mut self.payload[self.payload_filled..]) {
                    Ok(0) => return Err(ProtoError::Stalled),
                    Ok(n) => self.payload_filled += n,
                    Err(e) if retryable(&e) => return Ok(ReadProgress::NeedMore),
                    Err(e) => return Err(ProtoError::Io(e)),
                }
            }
            if self.payload_filled == self.payload.len() {
                self.len_filled = 0;
                self.started = None;
                let payload = std::mem::take(&mut self.payload);
                self.payload_filled = 0;
                return Ok(ReadProgress::Frame(payload));
            }
        }
    }
}

fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted | io::ErrorKind::TimedOut
    )
}

/// What one [`FrameQueue::write_to`] pass achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteProgress {
    /// Every queued byte reached the sink.
    Flushed,
    /// The sink stopped accepting bytes mid-queue. `progressed` says
    /// whether *any* bytes moved this pass — the reactor's write-stall
    /// timer only resets when it did.
    Blocked { progressed: bool },
}

/// Outbound frame queue resumable at any byte offset.
///
/// Frames are pushed whole (already length-prefixed, e.g. from
/// [`Message::encode`](crate::Message::encode) or
/// [`encode_region`](crate::encode_region)) and written through a sink
/// that may take any number of bytes per call. The queue tracks a byte
/// offset into its front frame, so a write interrupted after any prefix —
/// even inside the 4-byte length — resumes exactly where it stopped. The
/// byte stream is therefore identical to a single contiguous write of
/// every pushed frame in order.
#[derive(Debug, Default)]
pub struct FrameQueue {
    frames: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written.
    offset: usize,
    /// Total unwritten bytes across all queued frames.
    queued: usize,
}

impl FrameQueue {
    /// An empty queue.
    pub fn new() -> FrameQueue {
        FrameQueue::default()
    }

    /// Queues one encoded frame (length prefix included).
    pub fn push(&mut self, frame: Vec<u8>) {
        self.queued += frame.len();
        self.frames.push_back(frame);
    }

    /// True when no bytes remain to write.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Unwritten bytes across all queued frames.
    pub fn queued_bytes(&self) -> usize {
        self.queued
    }

    /// Writes queued bytes until the sink blocks or the queue empties.
    /// `WouldBlock`/`Interrupted` pause the queue (resume on the next
    /// call); any other error is fatal to the connection. A sink that
    /// accepts zero bytes without erroring is treated as blocked.
    pub fn write_to(&mut self, sink: &mut impl Write) -> io::Result<WriteProgress> {
        let mut progressed = false;
        while let Some(front) = self.frames.front() {
            match sink.write(&front[self.offset..]) {
                Ok(0) => return Ok(WriteProgress::Blocked { progressed }),
                Ok(n) => {
                    progressed = true;
                    self.offset += n;
                    self.queued -= n;
                    if self.offset == front.len() {
                        self.frames.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if retryable(&e) => {
                    return Ok(WriteProgress::Blocked { progressed });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(WriteProgress::Flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that accepts a scripted number of bytes per call, with
    /// `WouldBlock` between slices.
    struct Dribble {
        taken: Vec<u8>,
        script: VecDeque<usize>,
        block_next: bool,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.block_next = true;
            let n = self.script.pop_front().unwrap_or(1).clamp(1, buf.len());
            self.taken.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn queue_resumes_at_any_offset() {
        let mut q = FrameQueue::new();
        let frames = [crate::wire::frame(b"hello"), crate::wire::frame(b"world!")];
        let mut expect = Vec::new();
        for f in &frames {
            expect.extend_from_slice(f);
            q.push(f.clone());
        }
        let mut sink = Dribble {
            taken: Vec::new(),
            script: (1..=4).cycle().take(64).collect(),
            block_next: false,
        };
        loop {
            match q.write_to(&mut sink).expect("no fatal errors") {
                WriteProgress::Flushed => break,
                WriteProgress::Blocked { .. } => continue,
            }
        }
        assert_eq!(sink.taken, expect);
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
    }

    /// A source that yields at most `per_call` bytes, then `WouldBlock`.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        per_call: usize,
        starved: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.starved || self.pos >= self.data.len() {
                self.starved = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "empty"));
            }
            self.starved = true;
            let n = self.per_call.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn reader_assembles_across_partial_reads() {
        let mut data = crate::wire::frame(b"abcdef");
        data.extend_from_slice(&crate::wire::frame(b"xy"));
        let mut src = Trickle {
            data,
            pos: 0,
            per_call: 3,
            starved: false,
        };
        let mut r = FrameReader::new();
        let mut frames = Vec::new();
        for _ in 0..64 {
            match r.fill_from(&mut src).expect("clean") {
                ReadProgress::Frame(p) => frames.push(p),
                ReadProgress::NeedMore => continue,
                ReadProgress::Closed => break,
            }
        }
        assert_eq!(frames, vec![b"abcdef".to_vec(), b"xy".to_vec()]);
        assert!(!r.mid_frame());
    }
}
