//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the subcommand plus `--key value` options and
/// bare `--flag` booleans.
#[derive(Debug, Default)]
pub struct Args {
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Argument errors with the offending flag.
#[derive(Debug)]
pub enum ArgError {
    /// A `--flag` had no value.
    MissingValue(String),
    /// A required flag was absent.
    Required(&'static str),
    /// A value failed to parse.
    Invalid(&'static str, String),
    /// A token did not look like `--flag`.
    Unexpected(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::Required(flag) => write!(f, "missing required flag --{flag}"),
            ArgError::Invalid(flag, v) => write!(f, "invalid value '{v}' for --{flag}"),
            ArgError::Unexpected(tok) => write!(f, "unexpected argument '{tok}'"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `--key value` pairs.
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        Self::parse_with_flags(argv, &[])
    }

    /// Parses `--key value` pairs, treating any flag named in `bools` as a
    /// valueless boolean (present or absent).
    pub fn parse_with_flags(argv: &[String], bools: &[&str]) -> Result<Args, ArgError> {
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError::Unexpected(tok.clone()));
            };
            if bools.contains(&key) {
                flags.push(key.to_string());
                i += 1;
                continue;
            }
            let Some(value) = argv.get(i + 1) else {
                return Err(ArgError::MissingValue(key.to_string()));
            };
            options.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Args { options, flags })
    }

    /// Whether a boolean `--flag` was present.
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A required string option.
    pub fn required(&self, key: &'static str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(|s| s.as_str())
            .ok_or(ArgError::Required(key))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// An optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        key: &'static str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::Invalid(key, v.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let a = Args::parse(&argv("--store /tmp/s --name v --seconds 4")).unwrap();
        assert_eq!(a.required("store").unwrap(), "/tmp/s");
        assert_eq!(a.get("name"), Some("v"));
        assert_eq!(a.get_or("seconds", 0u32).unwrap(), 4);
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            Args::parse(&argv("store /tmp")),
            Err(ArgError::Unexpected(_))
        ));
        assert!(matches!(
            Args::parse(&argv("--store")),
            Err(ArgError::MissingValue(_))
        ));
        let a = Args::parse(&argv("--seconds four")).unwrap();
        assert!(matches!(
            a.get_or("seconds", 0u32),
            Err(ArgError::Invalid("seconds", _))
        ));
        let a = Args::parse(&[]).unwrap();
        assert!(matches!(
            a.required("store"),
            Err(ArgError::Required("store"))
        ));
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = Args::parse_with_flags(&argv("--storage --store /tmp/s"), &["storage"]).unwrap();
        assert!(a.has("storage"));
        assert!(!a.has("verbose"));
        assert_eq!(a.required("store").unwrap(), "/tmp/s");
        // Without the allow-list the same token needs a value.
        assert!(matches!(
            Args::parse(&argv("--storage")),
            Err(ArgError::MissingValue(_))
        ));
    }
}
