//! Subcommand implementations over a persistent store directory.
//!
//! The store layout is `<store>/index/` (persistent semantic index) plus
//! `<store>/videos/` (tile files + manifests). Scene specs are persisted at
//! ingest so later `detect` calls can regenerate ground truth
//! deterministically.

use crate::args::Args;
use std::error::Error;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tasm_core::{LabelPredicate, Query, QueryMode, Tasm, TasmConfig};
use tasm_data::{workloads, Dataset, SyntheticVideo, WorkloadParams};
use tasm_detect::sampled::SampledDetector;
use tasm_detect::yolo::SimulatedYolo;
use tasm_detect::Detector;
use tasm_index::PersistentIndex;
use tasm_service::{QueryRequest, QueryService, RetilePolicy, ServiceConfig};
use tasm_video::{FrameSource, Rect};

type CmdResult = Result<(), Box<dyn Error>>;

const USAGE: &str = "\
tasm — tile-based storage manager for video analytics

USAGE:
  tasm ingest  --store DIR --name NAME --dataset PRESET --seconds N [--seed N]
  tasm detect  --store DIR --name NAME [--detector yolov3|yolov3-tiny] [--stride K]
  tasm scan    --store DIR --name NAME --label LABEL [--start F] [--end F] [--repeat N]
  tasm query   --store DIR --name NAME --label LABEL [--start F] [--end F]
               [--roi x,y,w,h] [--stride N] [--limit K]
               [--mode pixels|count|exists] [--repeat N]
  tasm retile  --store DIR --name NAME --labels L1,L2
  tasm observe --store DIR --name NAME --label LABEL [--start F] [--end F]
  tasm workload --store DIR --name NAME [--workload 1|2|3|4] [--queries N]
                [--concurrency N] [--queue-depth N] [--retile off|regret|more]
                [--query-frames N] [--seed N]
  tasm info    --store DIR [--name NAME]
  tasm presets

EXECUTION (any command):
  --workers N    decode worker threads (0 = one per core, default)
  --cache-mb N   decoded-GOP cache budget in MiB (0 disables; default 256)

QUERY: the spatiotemporal planner. --roi keeps only boxes intersecting the
  region of interest, --stride N samples every Nth frame of the window,
  --limit K stops after the first K matching frames, and --mode count|exists
  answers from the semantic index without decoding any tile. Pruned tiles
  and GOPs are never decoded; the command reports what the planner cut.
  Results are bit-identical to `tasm scan` filtered after the fact.

WORKLOAD: replays one of the paper's §5.3 workload generators through the
  concurrent QueryService: --concurrency query workers (0 = one per core)
  over a --queue-depth bounded queue, optionally with the background
  re-tiling daemon (--retile regret|more). Reports aggregate throughput,
  decoded-GOP cache reuse, and the shared-scan dedup rate.

PRESETS: visual-road-2k, visual-road-4k, netflix-public, netflix-open-source,
         xiph, mot16, el-fuente-sparse, el-fuente-dense";

/// Routes a command line to its implementation.
pub fn dispatch(argv: &[String]) -> CmdResult {
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "ingest" => ingest(&args),
        "detect" => detect(&args),
        "scan" => scan(&args),
        "query" => query(&args),
        "retile" => retile(&args),
        "observe" => observe(&args),
        "workload" => workload(&args),
        "info" => info(&args),
        "presets" => {
            for d in Dataset::ALL {
                println!("{}", d.name());
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}").into()),
    }
}

fn open_tasm(store: &str, args: &Args) -> Result<Tasm, Box<dyn Error>> {
    let root = PathBuf::from(store);
    let index = PersistentIndex::open(&root.join("index"))?;
    let cfg = TasmConfig {
        workers: args.get_or("workers", 0usize)?,
        cache_bytes: args.get_or("cache-mb", 256u64)? << 20,
        ..TasmConfig::default()
    };
    Ok(Tasm::open(root.join("videos"), Box::new(index), cfg)?)
}

fn spec_path(store: &str, name: &str) -> PathBuf {
    Path::new(store)
        .join("videos")
        .join(name)
        .join("scene.json")
}

/// Loads the scene spec persisted at ingest and rebuilds the video, then
/// registers it with a fresh `Tasm` (manifest comes from disk state; the
/// facade re-ingests only if the files are missing).
fn load_video(store: &str, name: &str) -> Result<SyntheticVideo, Box<dyn Error>> {
    let raw = std::fs::read(spec_path(store, name))
        .map_err(|_| format!("video '{name}' not found in store (run `tasm ingest` first)"))?;
    let spec = serde_json::from_slice(&raw)?;
    Ok(SyntheticVideo::new(spec))
}

/// Attaches an existing stored video (no re-encode) and rebuilds its scene
/// for ground truth.
fn register(tasm: &Tasm, store: &str, name: &str) -> Result<SyntheticVideo, Box<dyn Error>> {
    let video = load_video(store, name)?;
    tasm.attach(name)?;
    Ok(video)
}

fn ingest(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let dataset_name = args.required("dataset")?;
    let seconds: u32 = args.get_or("seconds", 4)?;
    let seed: u64 = args.get_or("seed", 1)?;

    let dataset = Dataset::ALL
        .into_iter()
        .find(|d| d.name() == dataset_name)
        .ok_or_else(|| format!("unknown dataset '{dataset_name}' (see `tasm presets`)"))?;
    let video = dataset.build(seconds, seed);

    let tasm = open_tasm(store, args)?;
    tasm.ingest(name, &video, 30)?;
    std::fs::write(
        spec_path(store, name),
        serde_json::to_vec_pretty(video.spec())?,
    )?;
    let bytes = tasm.video_size_bytes(name)?;
    println!(
        "ingested '{name}': {} frames at {}x{}, {} SOTs, {:.1} KiB on disk",
        video.len(),
        video.width(),
        video.height(),
        tasm.manifest(name)?.sots.len(),
        bytes as f64 / 1024.0
    );
    Ok(())
}

fn detect(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let which = args.get("detector").unwrap_or("yolov3");
    let stride: u32 = args.get_or("stride", 1)?;

    let mut tasm = open_tasm(store, args)?;
    let video = register(&tasm, store, name)?;
    let inner: Box<dyn Detector> = match which {
        "yolov3" => Box::new(SimulatedYolo::full(1)),
        "yolov3-tiny" => Box::new(SimulatedYolo::tiny(1)),
        other => return Err(format!("unknown detector '{other}'").into()),
    };
    let mut detector = SampledDetector::new(inner, stride);
    let mut detections = 0u64;
    for f in 0..video.len() {
        let truth = video.ground_truth(f);
        for d in detector.detect(f, None, &truth) {
            tasm.add_metadata(name, &d.label, f, d.bbox)?;
            detections += 1;
        }
        tasm.mark_processed(name, f)?;
    }
    tasm.index_mut().flush()?;
    println!(
        "detected {} boxes over {} frames ({} frames run through {which}, stride {stride}); simulated cost {:.2}s",
        detections,
        video.len(),
        detector.frames_processed(),
        detector.total_cost_seconds()
    );
    Ok(())
}

fn scan(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let label = args.required("label")?;
    let tasm = open_tasm(store, args)?;
    let video = register(&tasm, store, name)?;
    let start: u32 = args.get_or("start", 0)?;
    let end: u32 = args.get_or("end", video.len())?;

    let repeat: u32 = args.get_or("repeat", 1)?;
    for run in 0..repeat.max(1) {
        let result = tasm.scan(name, &LabelPredicate::label(label), start..end)?;
        println!(
            "scan '{label}' over frames {start}..{end}: {} regions, {} samples decoded, {} tile-chunks, {} cache hits ({} samples reused), {:.2} ms",
            result.regions.len(),
            result.stats.samples_decoded,
            result.stats.tile_chunks_decoded,
            result.cache.hits,
            result.cache.samples_reused,
            result.seconds() * 1e3
        );
        if repeat > 1 && run == 0 {
            println!(
                "  (repeating {} more times against the warm decoded-GOP cache)",
                repeat - 1
            );
        }
    }
    Ok(())
}

/// Parses `--roi x,y,w,h` into a rectangle.
fn parse_roi(spec: &str) -> Result<Rect, Box<dyn Error>> {
    let parts: Vec<u32> = spec
        .split(',')
        .map(|t| t.trim().parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("invalid --roi '{spec}' (expected x,y,w,h)"))?;
    let [x, y, w, h] = parts[..] else {
        return Err(format!(
            "invalid --roi '{spec}' (expected 4 values, got {})",
            parts.len()
        )
        .into());
    };
    if w == 0 || h == 0 {
        return Err(format!("--roi '{spec}' is empty").into());
    }
    Ok(Rect::new(x, y, w, h))
}

/// Runs a spatiotemporal query through the planner and reports both the
/// answer and what the planner pruned.
fn query(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let label = args.required("label")?;
    let tasm = open_tasm(store, args)?;
    let video = register(&tasm, store, name)?;
    let start: u32 = args.get_or("start", 0)?;
    let end: u32 = args.get_or("end", video.len())?;
    let stride: u32 = args.get_or("stride", 1)?;
    let mode = match args.get("mode").unwrap_or("pixels") {
        "pixels" => QueryMode::Pixels,
        "count" => QueryMode::Count,
        "exists" => QueryMode::Exists,
        other => return Err(format!("unknown query mode '{other}'").into()),
    };

    let mut q = Query::new(LabelPredicate::label(label))
        .frames(start..end)
        .stride(stride)
        .mode(mode);
    if let Some(spec) = args.get("roi") {
        q = q.roi(parse_roi(spec)?);
    }
    if let Some(limit) = args.get("limit") {
        let limit: u32 = limit
            .parse()
            .map_err(|_| format!("invalid value '{limit}' for --limit"))?;
        q = q.limit(limit);
    }

    let repeat: u32 = args.get_or("repeat", 1)?;
    for run in 0..repeat.max(1) {
        let result = tasm.query(name, &q)?;
        match mode {
            QueryMode::Exists => println!(
                "exists '{label}' over frames {start}..{end}: {} ({} matches known from the index; no tiles decoded)",
                result.matched > 0,
                result.matched
            ),
            QueryMode::Count => println!(
                "count '{label}' over frames {start}..{end}: {} matches on {} frames (no tiles decoded)",
                result.matched, result.plan.frames_sampled
            ),
            QueryMode::Pixels => println!(
                "query '{label}' over frames {start}..{end}: {} regions on {} frames, {} samples decoded, {} cache hits, {:.2} ms",
                result.regions.len(),
                result.plan.frames_sampled,
                result.stats.samples_decoded,
                result.cache.hits,
                result.seconds() * 1e3
            ),
        }
        println!(
            "  plan: {} tiles decoded / {} pruned, {} GOPs decoded / {} skipped",
            result.plan.tiles_planned,
            result.plan.tiles_pruned,
            result.plan.gops_planned,
            result.plan.gops_skipped
        );
        if repeat > 1 && run == 0 {
            println!(
                "  (repeating {} more times against the warm decoded-GOP cache)",
                repeat - 1
            );
        }
    }
    Ok(())
}

fn retile(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let labels: Vec<String> = args
        .required("labels")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if labels.is_empty() {
        return Err("--labels needs at least one label".into());
    }
    let tasm = open_tasm(store, args)?;
    register(&tasm, store, name)?;
    let stats = tasm.kqko_retile_all(name, &labels)?;
    let manifest = tasm.manifest(name)?;
    let tiled = manifest
        .sots
        .iter()
        .filter(|s| !s.layout.is_untiled())
        .count();
    println!(
        "retiled around [{}]: {}/{} SOTs tiled, transcode {:.2}s, new size {:.1} KiB",
        labels.join(", "),
        tiled,
        manifest.sots.len(),
        stats.seconds(),
        tasm.video_size_bytes(name)? as f64 / 1024.0
    );
    Ok(())
}

fn observe(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let label = args.required("label")?;
    let tasm = open_tasm(store, args)?;
    let video = register(&tasm, store, name)?;
    let start: u32 = args.get_or("start", 0)?;
    let end: u32 = args.get_or("end", video.len())?;

    let stats = tasm.observe_regret(name, label, start..end)?;
    if stats.encode.bytes_produced > 0 {
        println!(
            "regret threshold crossed: re-tiled ({:.2}s transcode)",
            stats.seconds()
        );
    } else {
        println!("regret recorded; no re-tile yet");
    }
    Ok(())
}

/// Replays a §5.3 workload generator through the concurrent
/// [`QueryService`], reporting aggregate throughput and shared-scan reuse.
fn workload(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let which: u32 = args.get_or("workload", 1)?;
    let concurrency: usize = args.get_or("concurrency", 0)?;
    let queue_depth: usize = args.get_or("queue-depth", 64)?;
    if queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    let seed: u64 = args.get_or("seed", 1)?;
    let retile = match args.get("retile").unwrap_or("off") {
        "off" => RetilePolicy::Off,
        "regret" => RetilePolicy::Regret,
        "more" => RetilePolicy::More,
        other => return Err(format!("unknown retile policy '{other}'").into()),
    };

    let tasm = Arc::new(open_tasm(store, args)?);
    let video = register(&tasm, store, name)?;
    let query_frames: u32 = args.get_or("query-frames", 30.min(video.len()))?;

    // Populate the semantic index up front so the timed run measures query
    // execution, not first-touch detection.
    let frame_count = video.len();
    if tasm.processed_count(name, 0..frame_count)? < frame_count {
        let mut detector = SimulatedYolo::full(1);
        for f in 0..frame_count {
            let truth = video.ground_truth(f);
            for d in detector.detect(f, None, &truth) {
                tasm.add_metadata(name, &d.label, f, d.bbox)?;
            }
            tasm.mark_processed(name, f)?;
        }
        println!("(populated index: {frame_count} frames detected up front)");
    }

    let params = WorkloadParams::new(frame_count, query_frames.clamp(1, frame_count), seed);
    let mut queries = match which {
        1 => workloads::workload1(params),
        2 => workloads::workload2(params),
        3 => workloads::workload3(params),
        4 => workloads::workload4(params),
        other => return Err(format!("unknown workload '{other}' (1-4 supported)").into()),
    };
    if let Some(cap) = args.get("queries") {
        let cap: usize = cap
            .parse()
            .map_err(|_| format!("invalid value '{cap}' for --queries"))?;
        queries.truncate(cap);
    }

    let service = QueryService::start(
        Arc::clone(&tasm),
        ServiceConfig {
            workers: concurrency,
            queue_depth,
            retile,
            ..ServiceConfig::default()
        },
    );
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = queries
        .iter()
        .map(|q| {
            service.submit(QueryRequest::scan(
                name,
                LabelPredicate::label(&q.label),
                q.frames.clone(),
            ))
        })
        .collect::<Result<_, _>>()?;
    let mut regions = 0usize;
    for h in handles {
        regions += h.wait()?.result.regions.len();
    }
    let elapsed = t0.elapsed();
    service.drain_retile_backlog();
    let stats = service.shutdown();
    tasm.with_index(|ix| ix.flush())?;

    let shared = stats.shared;
    println!(
        "workload {which}: {} queries in {:.2}s — {:.1} queries/s (concurrency {}, queue depth {queue_depth})",
        queries.len(),
        elapsed.as_secs_f64(),
        queries.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        if concurrency == 0 { "auto".to_string() } else { concurrency.to_string() },
    );
    println!(
        "  {} regions returned, {} samples decoded, {} reused ({:.0}% cache hit rate)",
        regions,
        stats.samples_decoded,
        stats.samples_reused,
        stats.cache_hit_rate() * 100.0,
    );
    println!(
        "  shared-scan dedup: {} owned / {} joined GOP decodes ({:.0}% join rate); {} retile ops",
        shared.owned,
        shared.joined,
        shared.join_rate() * 100.0,
        stats.retile_ops,
    );
    Ok(())
}

fn info(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let videos_dir = Path::new(store).join("videos");
    let entries = std::fs::read_dir(&videos_dir)
        .map_err(|_| format!("no store at '{store}' (run `tasm ingest` first)"))?;
    let mut tasm = open_tasm(store, args)?;
    for entry in entries {
        let entry = entry?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().to_string();
        if let Some(filter) = args.get("name") {
            if filter != name {
                continue;
            }
        }
        if register(&tasm, store, &name).is_err() {
            continue;
        }
        let m = tasm.manifest(&name)?;
        let tiled = m.sots.iter().filter(|s| !s.layout.is_untiled()).count();
        let id = tasm.video_id(&name)?;
        let labels = tasm.index_mut().labels(id)?;
        println!(
            "{name}: {}x{} {} frames, {} SOTs ({} tiled), {:.1} KiB, labels: [{}]",
            m.width,
            m.height,
            m.frame_count,
            m.sots.len(),
            tiled,
            tasm.video_size_bytes(&name)? as f64 / 1024.0,
            labels.join(", ")
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &str) -> CmdResult {
        let argv: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        dispatch(&argv)
    }

    fn store(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("tasm-cli-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir.display().to_string()
    }

    #[test]
    fn full_cli_session() {
        let s = store("session");
        run(&format!(
            "ingest --store {s} --name cam --dataset visual-road-2k --seconds 1 --seed 3"
        ))
        .expect("ingest");
        run(&format!("detect --store {s} --name cam --stride 2")).expect("detect");
        run(&format!("scan --store {s} --name cam --label car")).expect("scan");
        run(&format!(
            "scan --store {s} --name cam --label car --repeat 2 --workers 2 --cache-mb 64"
        ))
        .expect("scan with execution flags");
        run(&format!(
            "scan --store {s} --name cam --label car --cache-mb 0 --workers 1"
        ))
        .expect("scan serial uncached");
        run(&format!(
            "query --store {s} --name cam --label car --roi 0,0,160,176 --stride 2 --limit 4"
        ))
        .expect("roi query");
        run(&format!(
            "query --store {s} --name cam --label car --mode count"
        ))
        .expect("count query");
        run(&format!(
            "query --store {s} --name cam --label car --mode exists --repeat 2"
        ))
        .expect("exists query");
        run(&format!("retile --store {s} --name cam --labels car")).expect("retile");
        run(&format!(
            "observe --store {s} --name cam --label car --end 30"
        ))
        .expect("observe");
        run(&format!("info --store {s}")).expect("info");
    }

    #[test]
    fn workload_runs_through_query_service() {
        let s = store("workload");
        run(&format!(
            "ingest --store {s} --name cam --dataset visual-road-2k --seconds 1 --seed 3"
        ))
        .expect("ingest");
        // Concurrent, small queue, regret daemon on; index populates lazily
        // inside the command.
        run(&format!(
            "workload --store {s} --name cam --workload 3 --queries 12 \
             --concurrency 4 --queue-depth 4 --retile regret --query-frames 10"
        ))
        .expect("workload with service flags");
        // Serial path through the same service machinery.
        run(&format!(
            "workload --store {s} --name cam --queries 4 --concurrency 1"
        ))
        .expect("serial workload");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let s = store("errors");
        assert!(run("bogus --store /tmp").is_err());
        assert!(run(&format!("scan --store {s} --name missing --label car")).is_err());
        assert!(run(&format!(
            "ingest --store {s} --name v --dataset not-a-dataset --seconds 1"
        ))
        .is_err());
        assert!(run(&format!("retile --store {s} --name v --labels ,")).is_err());
        assert!(run(&format!(
            "workload --store {s} --name missing --concurrency 2"
        ))
        .is_err());
        assert!(run(&format!(
            "ingest --store {s} --name w --dataset xiph --seconds 1"
        ))
        .is_ok());
        assert!(run(&format!("workload --store {s} --name w --workload 9")).is_err());
        assert!(run(&format!("workload --store {s} --name w --retile sideways")).is_err());
        // Malformed query flags are reported, not panicked.
        assert!(run(&format!(
            "query --store {s} --name w --label car --roi 1,2,3"
        ))
        .is_err());
        assert!(run(&format!(
            "query --store {s} --name w --label car --roi a,b,c,d"
        ))
        .is_err());
        assert!(run(&format!(
            "query --store {s} --name w --label car --roi 0,0,0,4"
        ))
        .is_err());
        assert!(run(&format!(
            "query --store {s} --name w --label car --mode sideways"
        ))
        .is_err());
        assert!(run(&format!("query --store {s} --name w --label car --limit x")).is_err());
    }

    #[test]
    fn help_and_presets_work() {
        run("help").expect("help");
        run("presets").expect("presets");
        run("").err(); // empty command prints usage via dispatch of [""], which errs
    }
}
